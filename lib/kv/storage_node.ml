type cell = { mutable data : string; mutable token : int }

type t = {
  engine : Tell_sim.Engine.t;
  id : int;
  group : Tell_sim.Engine.Group.t;
  cpu : Tell_sim.Resource.t;
  cells : (Op.key, cell) Hashtbl.t;
  mutable bytes_stored : int;
  capacity_bytes : int;
  base_service_ns : int;
  per_byte_service_ns : float;
  mutable alive : bool;
  mutable serving : bool;
      (* A restarted node is alive (heartbeats answer) but owns no
         partitions until the management node re-adds it to a chain;
         stale client directories must not read its empty store as
         authoritative. *)
  mutable evaluator : (program:string -> key:Op.key -> data:string -> string option) option;
  fences : (string, int) Hashtbl.t;
      (* sender endpoint -> minimum accepted epoch.  Installed by the
         management node when it declares the sender dead: writes tagged
         with an older epoch bounce ([Fenced_reply]), so a zombie healing
         from a partition cannot complete work recovery already rolled
         back.  Deliberately NOT cleared by [restart]: the fence is
         management metadata a rejoining node re-syncs before serving,
         not DRAM state. *)
  mutable fenced_rejects : int;
  replays : (int * int, Op.result) Hashtbl.t;
      (* (client uid, op id) -> first result of a conditional mutation:
         exactly-once semantics over an at-least-once network.  A client
         whose reply was lost re-sends the op under the same id and gets
         the cached verdict instead of conflicting with its own write.
         Bounded FIFO ([replay_cap]); retries arrive within the client's
         few-millisecond retry budget, far inside the cache's lifetime. *)
  replay_order : (int * int) Queue.t;
}

let create engine ~id ~cores ~capacity_bytes ~base_service_ns ~per_byte_service_ns =
  let label = Printf.sprintf "sn%d" id in
  {
    engine;
    id;
    group = Tell_sim.Engine.make_group engine label;
    cpu = Tell_sim.Resource.create engine ~servers:cores label;
    cells = Hashtbl.create 4096;
    bytes_stored = 0;
    capacity_bytes;
    base_service_ns;
    per_byte_service_ns;
    alive = true;
    serving = true;
    evaluator = None;
    fences = Hashtbl.create 8;
    fenced_rejects = 0;
    replays = Hashtbl.create 256;
    replay_order = Queue.create ();
  }

let id t = t.id
let alive t = t.alive
let serving t = t.alive && t.serving
let set_serving t flag = t.serving <- flag
let group t = t.group

let crash t =
  t.alive <- false;
  Tell_sim.Engine.Group.kill t.group

(* DRAM volatility: a restarted node comes back empty and re-joins as a
   candidate backup; the directory no longer routes to it until the
   management node picks it for a future repair. *)
let restart t =
  Hashtbl.reset t.cells;
  Hashtbl.reset t.replays;
  Queue.clear t.replay_order;
  t.bytes_stored <- 0;
  t.alive <- true;
  t.serving <- false;
  Tell_sim.Engine.Group.revive t.group

let bytes_stored t = t.bytes_stored
let capacity_bytes t = t.capacity_bytes
let cpu t = t.cpu

let cell_bytes key data = String.length key + String.length data + 48

let charge t bytes =
  let demand =
    t.base_service_ns + int_of_float (t.per_byte_service_ns *. float_of_int bytes)
  in
  Tell_sim.Resource.use t.cpu ~demand

let account_put t key ~old_data ~new_data =
  let delta =
    match old_data with
    | None -> cell_bytes key new_data
    | Some old_data -> String.length new_data - String.length old_data
  in
  t.bytes_stored <- t.bytes_stored + delta

let check_capacity t key ~old_data ~new_data =
  let delta =
    match old_data with
    | None -> cell_bytes key new_data
    | Some old_data -> String.length new_data - String.length old_data
  in
  if delta > 0 && t.bytes_stored + delta > t.capacity_bytes then
    raise (Op.Capacity_exceeded t.id)

let store t key data =
  match Hashtbl.find_opt t.cells key with
  | Some cell ->
      check_capacity t key ~old_data:(Some cell.data) ~new_data:data;
      account_put t key ~old_data:(Some cell.data) ~new_data:data;
      cell.data <- data;
      cell.token <- cell.token + 1;
      cell.token
  | None ->
      check_capacity t key ~old_data:None ~new_data:data;
      account_put t key ~old_data:None ~new_data:data;
      Hashtbl.replace t.cells key { data; token = 1 };
      1

let drop t key =
  match Hashtbl.find_opt t.cells key with
  | None -> ()
  | Some cell ->
      t.bytes_stored <- t.bytes_stored - cell_bytes key cell.data;
      Hashtbl.remove t.cells key

let decode_int s = if String.length s = 8 then Some (Int64.to_int (String.get_int64_le s 0)) else None

let encode_int v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int v);
  Bytes.unsafe_to_string b

let execute t (op : Op.t) : Op.result =
  match op with
  | Get key -> (
      match Hashtbl.find_opt t.cells key with
      | Some cell -> Value (Some (cell.data, cell.token))
      | None -> Value None)
  | Put (key, data) ->
      let _ = store t key data in
      Done
  | Put_if (key, expected, data) -> (
      match (Hashtbl.find_opt t.cells key, expected) with
      | None, None -> Token (store t key data)
      | None, Some _ -> Conflict
      | Some _, None -> Conflict
      | Some cell, Some token ->
          if cell.token = token then Token (store t key data) else Conflict)
  | Remove (key, expected) -> (
      match (Hashtbl.find_opt t.cells key, expected) with
      | None, _ -> Done
      | Some _, None ->
          drop t key;
          Done
      | Some cell, Some token ->
          if cell.token = token then begin
            drop t key;
            Done
          end
          else Conflict)
  | Increment (key, by) -> (
      match Hashtbl.find_opt t.cells key with
      | Some cell -> (
          match decode_int cell.data with
          | Some v ->
              let v = v + by in
              cell.data <- encode_int v;
              cell.token <- cell.token + 1;
              Count v
          | None -> invalid_arg "Storage_node: Increment on non-integer cell")
      | None ->
          let _ = store t key (encode_int by) in
          Count by)
  | Scan prefix ->
      let matches = ref [] in
      let plen = String.length prefix in
      Hashtbl.iter
        (fun key cell ->
          if String.length key >= plen && String.sub key 0 plen = prefix then
            matches := (key, cell.data, cell.token) :: !matches)
        t.cells;
      Keys (List.sort (fun (a, _, _) (b, _, _) -> String.compare a b) !matches)
  | Scan_eval (prefix, program) -> (
      match t.evaluator with
      | None -> invalid_arg "Storage_node: no push-down evaluator registered"
      | Some evaluate ->
          let matches = ref [] in
          let plen = String.length prefix in
          Hashtbl.iter
            (fun key cell ->
              if String.length key >= plen && String.sub key 0 plen = prefix then
                match evaluate ~program ~key ~data:cell.data with
                | Some projected -> matches := (key, projected, cell.token) :: !matches
                | None -> ())
            t.cells;
          Keys (List.sort (fun (a, _, _) (b, _, _) -> String.compare a b) !matches))

(* Zombie fencing (declared-dead epochs): a write carrying an epoch token
   older than the sender's fence is refused.  Reads pass — a stale
   snapshot read is valid SI; only mutations can corrupt state. *)
let fence t ~sender ~epoch =
  match Hashtbl.find_opt t.fences sender with
  | Some e when e >= epoch -> ()
  | Some _ | None -> Hashtbl.replace t.fences sender epoch

let write_fenced t ~sender op =
  Op.is_write op
  &&
  match sender with
  | None -> false
  | Some (name, epoch) -> (
      match Hashtbl.find_opt t.fences name with
      | Some min_epoch -> epoch < min_epoch
      | None -> false)

let fenced_rejects t = t.fenced_rejects

let replay_cap = 8192

let find_replay t ~client ~op_id = Hashtbl.find_opt t.replays (client, op_id)

let record_replay t ~client ~op_id result =
  let key = (client, op_id) in
  if not (Hashtbl.mem t.replays key) then begin
    Hashtbl.replace t.replays key result;
    Queue.push key t.replay_order;
    if Queue.length t.replay_order > replay_cap then
      Hashtbl.remove t.replays (Queue.pop t.replay_order)
  end

let apply t ?sender op =
  let bytes =
    match op with
    | Op.Scan _ ->
        (* A scan walks the whole partition: charge per cell visited. *)
        Hashtbl.length t.cells * 4
    | Op.Scan_eval _ ->
        (* Push-down pays scan plus per-cell evaluation. *)
        Hashtbl.length t.cells * 10
    | op -> Op.request_bytes op
  in
  charge t bytes;
  if write_fenced t ~sender op then begin
    t.fenced_rejects <- t.fenced_rejects + 1;
    Op.Fenced_reply
  end
  else execute t op

(* Replicas install the master's outcome verbatim: only effective writes
   are shipped, so conditions have already been decided.  The fence is
   checked here too: a zombie resuming its replication traffic after a
   heal must not resurrect rolled-back versions on the backups. *)
let apply_replica t ?sender (op : Op.t) (outcome : Op.result) =
  charge t (Op.request_bytes op);
  if write_fenced t ~sender op then t.fenced_rejects <- t.fenced_rejects + 1
  else
    match (op, outcome) with
  | Put_if (key, _, data), Token token ->
      (* Preserve the master's token so LL/SC tokens survive a fail-over. *)
      let _ = store t key data in
      (match Hashtbl.find_opt t.cells key with Some cell -> cell.token <- token | None -> ())
  | Put (key, data), _ ->
      let _ = store t key data in
      ()
  | Remove (key, _), _ -> drop t key
  | Increment (key, _), Count v ->
      let _ = store t key (encode_int v) in
      ()
  | (Put_if _ | Increment _), _ -> ()
  | (Get _ | Scan _ | Scan_eval _), _ -> ()

let snapshot t = Hashtbl.fold (fun key cell acc -> (key, cell.data, cell.token) :: acc) t.cells []

(* Never step backwards: a concurrent write forwarded during re-replication
   must not be clobbered by the (older) bulk snapshot. *)
let load t entries =
  List.iter
    (fun (key, data, token) ->
      match Hashtbl.find_opt t.cells key with
      | Some old when old.token >= token -> ()
      | Some old ->
          t.bytes_stored <- t.bytes_stored - cell_bytes key old.data;
          t.bytes_stored <- t.bytes_stored + cell_bytes key data;
          Hashtbl.replace t.cells key { data; token }
      | None ->
          t.bytes_stored <- t.bytes_stored + cell_bytes key data;
          Hashtbl.replace t.cells key { data; token })
    entries

let wipe t =
  Hashtbl.reset t.cells;
  t.bytes_stored <- 0

let encode_counter = encode_int

let set_evaluator t evaluate = t.evaluator <- Some evaluate

let find t key =
  Option.map (fun cell -> (cell.data, cell.token)) (Hashtbl.find_opt t.cells key)
