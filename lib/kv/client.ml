module Sim = Tell_sim

type pending = {
  op : Op.t;
  op_id : int;  (** dedup id for conditional mutations; 0 = not deduped *)
  reply : Op.result Sim.Ivar.t;
}

type lane = { mutable in_flight : bool; queued : pending Queue.t }

type t = {
  cluster : Cluster.t;
  group : Sim.Engine.Group.t;
  endpoint : string;  (** link identity: the owning component's group label *)
  epoch : int;  (** cluster epoch at creation; stamped on every write *)
  rng : Sim.Rng.t;  (** retry-backoff jitter (split off the cluster rng) *)
  lanes : lane array;  (** indexed by storage-node id *)
  uid : int;  (** process-unique client id, keys the nodes' replay caches *)
  mutable next_op_id : int;
  mutable cached_masters : int array;
  mutable requests_sent : int;
  mutable ops_sent : int;
}

let max_retries = 8

(* Client uids key the storage nodes' replay caches together with per-op
   ids; they only need process-wide uniqueness.  (The endpoint label
   cannot serve: several clients may share one — e.g. "mgmt".) *)
let next_client_uid = ref 0

let create cluster ~group =
  let n = Array.length (Cluster.nodes cluster) in
  {
    cluster;
    group;
    endpoint = Sim.Engine.Group.label group;
    epoch = Cluster.current_epoch cluster;
    rng = Sim.Rng.split (Cluster.rng cluster);
    lanes = Array.init n (fun _ -> { in_flight = false; queued = Queue.create () });
    uid =
      (incr next_client_uid;
       !next_client_uid);
    next_op_id = 0;
    cached_masters = Directory.masters_snapshot (Cluster.directory cluster);
    requests_sent = 0;
    ops_sent = 0;
  }

let cluster t = t.cluster
let group t = t.group
let endpoint t = t.endpoint
let epoch t = t.epoch
let sender t = (t.endpoint, t.epoch)
let requests_sent t = t.requests_sent
let ops_sent t = t.ops_sent

let engine t = Cluster.engine t.cluster

let master_for t key =
  let dir = Cluster.directory t.cluster in
  let p = Directory.partition_of_key dir key in
  if p < Array.length t.cached_masters then t.cached_masters.(p)
  else Directory.master dir p

(* Refresh the cached directory from the management node: one network
   round trip plus a little management CPU. *)
let refresh_directory t =
  let net = Cluster.net t.cluster in
  Sim.Net.transfer net ~bytes:64;
  Sim.Resource.use (Cluster.mgmt_cpu t.cluster) ~demand:2_000;
  let snapshot = Directory.masters_snapshot (Cluster.directory t.cluster) in
  Sim.Net.transfer net ~bytes:(16 + (4 * Array.length snapshot));
  t.cached_masters <- snapshot

(* Synchronously replicate the effective writes of a batch to the backups
   of each partition involved (ROWA, §4.4.2).  Backups are contacted in
   parallel; the master's reply to the client waits for every ack. *)
let replicate t ~sn_id writes =
  match writes with
  | [] -> ()
  | _ :: _ ->
      let dir = Cluster.directory t.cluster in
      let net = Cluster.net t.cluster in
      let by_backup = Hashtbl.create 4 in
      List.iter
        (fun (op, outcome) ->
          let p = Directory.partition_of_key dir (Op.key_of op) in
          if Directory.master dir p = sn_id then
            List.iter
              (fun b ->
                let prev = Option.value ~default:[] (Hashtbl.find_opt by_backup b) in
                Hashtbl.replace by_backup b ((op, outcome) :: prev))
              (Directory.backups dir p))
        writes;
      (* Chain replication cost: the backups of one batch are written by
         the calling fiber one after the other — each write pays the raw
         round trip plus the backup's log-management latency.  This is the
         synchronous-replication latency that dominates write-heavy
         response times (§6.3.1). *)
      let latency_per_write = (Cluster.config t.cluster).replication_latency_ns in
      let config = Cluster.config t.cluster in
      Hashtbl.iter
        (fun backup_id batch ->
          let bytes = List.fold_left (fun a (op, _) -> a + Op.request_bytes op) 32 batch in
          (* The chain write is acked: a drop on a flaky master->backup
             link is re-sent until it lands — a silently skipped replica
             write would leave a stale backup that data-loss surfaces
             from after a later fail-over.  A severed link exhausts the
             budget and surfaces as [Unavailable] to the whole batch. *)
          let src = Cluster.sn_endpoint sn_id and dst = Cluster.sn_endpoint backup_id in
          let rec ship attempts =
            match Sim.Net.send net ~src ~dst ~bytes with
            | `Delivered -> ()
            | `Dropped when attempts > 0 ->
                Sim.Engine.sleep (engine t) config.client_timeout_ns;
                ship (attempts - 1)
            | `Dropped -> raise (Op.Unavailable dst)
          in
          ship max_retries;
          let node = Cluster.node t.cluster backup_id in
          if Storage_node.alive node then begin
            List.iter
              (fun (op, outcome) ->
                Storage_node.apply_replica node ~sender:(sender t) op outcome)
              (List.rev batch);
            Sim.Engine.sleep (engine t) (List.length batch * latency_per_write)
          end;
          Sim.Net.transfer net ~bytes:32)
        by_backup

let rec dispatch t ~sn_id lane =
  let max_batch = (Cluster.config t.cluster).client_max_batch in
  let batch = ref [] in
  let n = ref 0 in
  while !n < max_batch && not (Queue.is_empty lane.queued) do
    batch := Queue.pop lane.queued :: !batch;
    incr n
  done;
  match List.rev !batch with
  | [] -> lane.in_flight <- false
  | batch ->
      lane.in_flight <- true;
      Sim.Engine.spawn (engine t) ~group:t.group (fun () -> run_batch t ~sn_id lane batch)

and run_batch t ~sn_id lane batch =
  let net = Cluster.net t.cluster in
  let node = Cluster.node t.cluster sn_id in
  t.requests_sent <- t.requests_sent + 1;
  t.ops_sent <- t.ops_sent + List.length batch;
  let finish () =
    (* Keep the lane draining even if this fiber dies mid-request. *)
    dispatch t ~sn_id lane
  in
  (try
     let request_bytes =
       List.fold_left (fun acc p -> acc + Op.request_bytes p.op) 32 batch
     in
     let dst = Cluster.sn_endpoint sn_id in
     let timeout () =
       Sim.Engine.sleep (engine t) (Cluster.config t.cluster).client_timeout_ns;
       let err = Op.Unavailable dst in
       List.iter (fun p -> Sim.Ivar.fill_exn p.reply err) batch
     in
     match Sim.Net.send net ~src:t.endpoint ~dst ~bytes:request_bytes with
     | `Dropped ->
         (* Lost on the wire (cut or flaky link): indistinguishable from a
            dead node — the client learns through its timeout. *)
         timeout ()
     | `Delivered ->
     if not (Storage_node.serving node) then
       (* The request vanishes into a dead node — or reaches a restarted
          one that owns no partitions yet and must not answer for them:
          clients only learn through a timeout. *)
       timeout ()
     else begin
       let outcomes =
         List.map
           (fun p ->
             if Storage_node.alive node then
               match
                 if p.op_id = 0 then None
                 else Storage_node.find_replay node ~client:t.uid ~op_id:p.op_id
               with
               | Some cached ->
                   (* A retry of a conditional op whose reply was lost:
                      replay the original verdict instead of letting the
                      op conflict with its own first attempt (which also
                      replicated already). *)
                   (p, `Replayed cached)
               | None ->
                   let r = Storage_node.apply node ~sender:(sender t) p.op in
                   if p.op_id <> 0 then
                     Storage_node.record_replay node ~client:t.uid ~op_id:p.op_id r;
                   (p, `Outcome r)
             else (p, `Died))
           batch
       in
       let effective_writes =
         List.filter_map
           (fun (p, o) ->
             match o with
             | `Outcome outcome when Op.is_write p.op -> (
                 match outcome with
                 | Op.Conflict | Op.Fenced_reply -> None
                 | outcome -> Some (p.op, outcome))
             | `Outcome _ | `Replayed _ | `Died -> None)
           outcomes
       in
       (* Master-side coordination of synchronous replication occupies the
          master's CPU in addition to the backups' round trips. *)
       (match effective_writes with
       | [] -> ()
       | writes ->
           let dir = Cluster.directory t.cluster in
           let n_backups =
             List.fold_left
               (fun acc (op, _) ->
                 acc
                 + List.length
                     (Directory.backups dir (Directory.partition_of_key dir (Op.key_of op))))
               0 writes
           in
           if n_backups > 0 then
             Tell_sim.Resource.use (Storage_node.cpu node)
               ~demand:(n_backups * (Cluster.config t.cluster).replication_coord_ns));
       replicate t ~sn_id effective_writes;
       let reply_bytes =
         List.fold_left
           (fun acc (_, o) ->
             match o with
             | `Outcome r | `Replayed r -> acc + Op.result_bytes r
             | `Died -> acc)
           32 outcomes
       in
       match Sim.Net.send net ~src:dst ~dst:t.endpoint ~bytes:reply_bytes with
       | `Dropped ->
           (* The operations executed but the reply was lost: to the
              client this is a timeout.  Conditional writes that landed
              replay their original verdict on the retry (the node's
              replay cache keyed by op id) — without it the re-send would
              conflict with its own first attempt. *)
           Sim.Engine.sleep (engine t) (Cluster.config t.cluster).client_timeout_ns;
           let err = Op.Unavailable dst in
           List.iter (fun (p, _) -> Sim.Ivar.fill_exn p.reply err) outcomes
       | `Delivered ->
           List.iter
             (fun (p, o) ->
               match o with
               | `Outcome Op.Fenced_reply | `Replayed Op.Fenced_reply ->
                   Sim.Ivar.fill_exn p.reply (Op.Fenced dst)
               | `Outcome r | `Replayed r -> Sim.Ivar.fill p.reply r
               | `Died -> Sim.Ivar.fill_exn p.reply (Op.Unavailable dst))
             outcomes
     end
   with e -> List.iter (fun p -> (try Sim.Ivar.fill_exn p.reply e with _ -> ())) batch);
  finish ()

let fresh_op_id t =
  t.next_op_id <- t.next_op_id + 1;
  t.next_op_id

let enqueue t ?(op_id = 0) op =
  let sn_id = master_for t (Op.key_of op) in
  let lane = t.lanes.(sn_id) in
  let reply = Sim.Ivar.create (engine t) in
  Queue.push { op; op_id; reply } lane.queued;
  (sn_id, lane, reply)

let kick t sn_id lane = if not lane.in_flight then dispatch t ~sn_id lane

let submit t ?op_id op =
  let sn_id, lane, reply = enqueue t ?op_id op in
  kick t sn_id lane;
  reply

(* Enqueue a whole list before kicking lanes, so that operations of a
   multi-record call travel together per storage node. *)
let submit_many t ops =
  let touched = Hashtbl.create 8 in
  let replies =
    List.map
      (fun (op_id, op) ->
        let sn_id, lane, reply = enqueue t ~op_id op in
        Hashtbl.replace touched sn_id lane;
        reply)
      ops
  in
  Hashtbl.iter (fun sn_id lane -> kick t sn_id lane) touched;
  replies

(* Back off exponentially: a fail-over re-points a dead node's
   partitions one at a time while streaming their data between survivors,
   so a chain can keep routing to the dead master for several
   milliseconds (longer still on a degraded interconnect).  Flat pauses
   would exhaust the whole retry budget before the directory settles.
   Jittered (uniform in [base/2, 3*base/2)): when a partition heals, every
   client that timed out against it retries at once, and lockstep retry
   waves would re-congest the link that just recovered. *)
let backoff_ns t ~attempts =
  let base = 20_000 * (1 lsl (max_retries - attempts)) in
  (base / 2) + Sim.Rng.int t.rng base

let rec with_retry t ~attempts f =
  try f ()
  with Op.Unavailable _ when attempts > 0 ->
    Sim.Engine.sleep (engine t) (backoff_ns t ~attempts);
    refresh_directory t;
    with_retry t ~attempts:(attempts - 1) f

let expect_value = function
  | Op.Value v -> v
  | _ -> invalid_arg "Client: protocol mismatch (expected Value)"

let get t key = with_retry t ~attempts:max_retries (fun () -> expect_value (Sim.Ivar.read (submit t (Op.Get key))))

let put t key data =
  with_retry t ~attempts:max_retries (fun () ->
      match Sim.Ivar.read (submit t (Op.Put (key, data))) with
      | Op.Done -> ()
      | _ -> invalid_arg "Client.put: protocol mismatch")

(* Conditional mutations travel under a stable per-op id across every
   retry: the storage node replays the first verdict if the op already
   executed and only the reply was lost (exactly-once over an
   at-least-once network).  Plain reads and idempotent writes go out with
   id 0 — re-executing them is harmless. *)
let put_if t key expected data =
  let op_id = fresh_op_id t in
  with_retry t ~attempts:max_retries (fun () ->
      match Sim.Ivar.read (submit t ~op_id (Op.Put_if (key, expected, data))) with
      | Op.Token token -> `Ok token
      | Op.Conflict -> `Conflict
      | _ -> invalid_arg "Client.put_if: protocol mismatch")

let remove_if t key expected =
  let op_id = fresh_op_id t in
  with_retry t ~attempts:max_retries (fun () ->
      match Sim.Ivar.read (submit t ~op_id (Op.Remove (key, expected))) with
      | Op.Done -> `Ok
      | Op.Conflict -> `Conflict
      | _ -> invalid_arg "Client.remove_if: protocol mismatch")

let increment t key by =
  let op_id = fresh_op_id t in
  with_retry t ~attempts:max_retries (fun () ->
      match Sim.Ivar.read (submit t ~op_id (Op.Increment (key, by))) with
      | Op.Count v -> v
      | _ -> invalid_arg "Client.increment: protocol mismatch")

let multi_get t keys =
  with_retry t ~attempts:max_retries (fun () ->
      let replies = submit_many t (List.map (fun k -> (0, Op.Get k)) keys) in
      List.map (fun r -> expect_value (Sim.Ivar.read r)) replies)

(* Unlike [multi_get], a failed write batch is not retried wholesale:
   only the operations whose replies came back [Unavailable] are
   re-submitted (the others already returned a verdict).  Conditional
   writes keep their op id across re-sends, so one that landed before the
   reply was lost replays its original verdict instead of conflicting
   with its own first attempt. *)
let multi_write t ops =
  let results = Array.make (List.length ops) Op.Done in
  let rec go attempts pending =
    let replies = submit_many t (List.map (fun (_, op_id, op) -> (op_id, op)) pending) in
    let failed =
      List.fold_left2
        (fun acc (i, op_id, op) reply ->
          match Sim.Ivar.read reply with
          | result ->
              results.(i) <- result;
              acc
          | exception Op.Unavailable _ when attempts > 0 -> (i, op_id, op) :: acc)
        [] pending replies
    in
    match List.rev failed with
    | [] -> ()
    | failed ->
        Sim.Engine.sleep (engine t) (backoff_ns t ~attempts);
        refresh_directory t;
        go (attempts - 1) failed
  in
  go max_retries
    (List.mapi
       (fun i op -> (i, (if Op.needs_dedup op then fresh_op_id t else 0), op))
       ops);
  Array.to_list results

let scan_with t ~op_of =
  with_retry t ~attempts:max_retries (fun () ->
      let nodes = Cluster.nodes t.cluster in
      let replies = ref [] in
      Array.iteri
        (fun sn_id node ->
          (* Backups hold copies of master data, so scanning every live
             node (and deduplicating below) observes all cells.  A
             restarted, not-yet-serving node is skipped: it holds nothing
             and would only time the scan out. *)
          if Storage_node.serving node then begin
            let lane = t.lanes.(sn_id) in
            let reply = Sim.Ivar.create (engine t) in
            Queue.push { op = op_of (); op_id = 0; reply } lane.queued;
            kick t sn_id lane;
            replies := reply :: !replies
          end)
        nodes;
      let replies = List.rev !replies in
      let all =
        List.concat_map
          (fun r ->
            match Sim.Ivar.read r with
            | Op.Keys entries -> entries
            | _ -> invalid_arg "Client.scan: protocol mismatch")
          replies
      in
      (* Partitions overlap after fail-over re-replication: deduplicate by
         key, keeping the newest token. *)
      let best = Hashtbl.create 64 in
      List.iter
        (fun (k, v, tok) ->
          match Hashtbl.find_opt best k with
          | Some (_, t0) when t0 >= tok -> ()
          | _ -> Hashtbl.replace best k (v, tok))
        all;
      let deduped = Hashtbl.fold (fun k (v, tok) acc -> (k, v, tok) :: acc) best [] in
      List.sort (fun (a, _, _) (b, _, _) -> String.compare a b) deduped)

let scan_all t ~prefix = scan_with t ~op_of:(fun () -> Op.Scan prefix)

let scan_eval_all t ~prefix ~program =
  scan_with t ~op_of:(fun () -> Op.Scan_eval (prefix, program))
