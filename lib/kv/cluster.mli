(** The distributed storage system: storage nodes + directory + management
    node, wired to a simulation engine.

    The management node runs an eventually-perfect failure detector
    (timeout-based heartbeats, modelled as periodic liveness polls).  When
    a storage node dies, the detector promotes the surviving head of each
    affected replica chain to master, appends a fresh backup, and bulk-
    copies the partition to it, restoring the replication factor — the
    behaviour of §4.4.2. *)

type config = {
  n_storage_nodes : int;
  replication_factor : int;
  partitions_per_node : int;
  sn_cores : int;
  sn_capacity_bytes : int;
  net_profile : Tell_sim.Net.profile;
  base_service_ns : int;  (** per-operation server-side service demand *)
  per_byte_service_ns : float;
  replication_coord_ns : int;
      (** master-side CPU per replicated write (backup coordination) *)
  replication_latency_ns : int;
      (** backup-side latency per replicated write beyond the raw network
          round trip (log-segment management, ack path) — the dominant
          cost of synchronous replication under write-heavy load (§6.3.1) *)
  client_max_batch : int;
      (** operations combined into one request per storage-node lane
          (§5.1 "aggressive batching"); 1 disables batching *)
  client_timeout_ns : int;  (** how long a client waits before declaring a node dead *)
  detector_period_ns : int;  (** failure-detector polling period *)
  seed : int;
}

val default_config : config

type t

val create : Tell_sim.Engine.t -> config -> t
val engine : t -> Tell_sim.Engine.t
val config : t -> config
val directory : t -> Directory.t
val node : t -> int -> Storage_node.t
val nodes : t -> Storage_node.t array
val net : t -> Tell_sim.Net.t
val rng : t -> Tell_sim.Rng.t

val mgmt_cpu : t -> Tell_sim.Resource.t
val mgmt_group : t -> Tell_sim.Engine.Group.t

val start_failure_detector : t -> unit
(** Spawn the management fiber.  Without it, crashes are never repaired
    (useful for tests that want to observe raw unavailability). *)

val crash_node : t -> int -> unit

val restart_node : t -> int -> unit
(** Revive a crashed node, empty (DRAM volatility), ready to serve as a
    backup target for future repairs.  Clears its handled-crash mark so
    the failure detector reacts to a later crash of the same node. *)

val inject_latency_spike :
  t -> from_ns:int -> until_ns:int -> ?factor:float -> ?extra_ns:int -> unit -> unit
(** Degrade the cluster interconnect for a virtual-time window — see
    {!Tell_sim.Net.inject_fault}.  Fault-scenario hook for [tell_check]. *)

(** {1 Epoch fencing}

    The management node owns a cluster epoch.  Clients stamp their writes
    with the epoch they joined under; declaring a member dead bumps the
    epoch and installs a fence for that member on every storage node, so
    a {e zombie} — a falsely-suspected member healing from a partition —
    finds its in-flight writes refused ({!Op.Fenced}) instead of silently
    completing work recovery already rolled back. *)

val current_epoch : t -> int
(** The epoch a client joining now would be stamped with (starts at 1). *)

val fence_senders : t -> senders:string list -> int
(** Bump the cluster epoch and install it as the minimum accepted write
    epoch for each named sender endpoint on every storage node; returns
    the new epoch.  Callers must invoke this {e before} rolling the
    senders' transactions back, and from inside a fiber (it models one
    management message per node). *)

val sn_endpoint : int -> string
(** The link-endpoint name of storage node [i] ("sn<i>") — the naming
    scheme shared by clients, {!fence_senders} and the harness's
    partition scenarios. *)

val mgmt_endpoint : string

val min_live_replication : t -> int
(** The minimum, over all partitions, of the number of {e live} replicas
    — the cluster's current worst-case redundancy.  Equals the
    replication factor when every chain is healthy. *)

val live_nodes : t -> int
val total_bytes_stored : t -> int

val set_pushdown_evaluator :
  t -> (program:string -> key:Op.key -> data:string -> string option) -> unit
(** Install the §5.2 push-down evaluator on every storage node. *)

val poke : t -> key:Op.key -> data:string -> unit
(** Install a cell on its master and all backups {e without} consuming
    virtual time or resources — the bulk-load path for benchmark
    populations.  Must not be used while the simulation is processing
    requests for the same keys. *)

val poke_counter : t -> key:Op.key -> value:int -> unit
val peek : t -> key:Op.key -> string option
(** Zero-time read from the master copy (for checks in tests). *)
