(** Client library of the record store, one instance per processing node.

    All operations go through per-storage-node {e lanes} that implement the
    paper's aggressive batching (§5.1): while a request to a storage node is
    in flight, further operations — possibly from different transactions on
    the same processing node — accumulate and are shipped as a single
    request once the lane frees up.

    Operations transparently retry after a directory refresh when they hit
    a crashed storage node; they raise {!Op.Unavailable} only once the
    retry budget is exhausted and {!Op.Capacity_exceeded} when the cluster
    is out of memory. *)

type t

val create : Cluster.t -> group:Tell_sim.Engine.Group.t -> t
(** The client's link identity is [group]'s label; its epoch is the
    cluster epoch at creation.  A component standing in for a fenced
    predecessor (same id, fresh instance) therefore writes under the
    post-fence epoch automatically. *)

val cluster : t -> Cluster.t
val group : t -> Tell_sim.Engine.Group.t

val endpoint : t -> string
(** Link-endpoint name used as [src] on every request this client sends
    (and [dst] on the replies) — the owning component's group label. *)

val epoch : t -> int
(** The cluster epoch stamped on this client's writes.  Storage nodes
    refuse writes stamped below the sender's declared-dead fence with
    {!Op.Fenced} (zombie fencing). *)

(** {1 Single-record operations (LL/SC)} *)

val get : t -> Op.key -> (string * int) option
(** Load-link: value and token. *)

val put : t -> Op.key -> string -> unit
(** Unconditional upsert. *)

val put_if : t -> Op.key -> int option -> string -> [ `Ok of int | `Conflict ]
(** Store-conditional: [Some token] from a previous {!get}, or [None] to
    require absence (insert). *)

val remove_if : t -> Op.key -> int option -> [ `Ok | `Conflict ]
val increment : t -> Op.key -> int -> int

(** {1 Batched operations} *)

val multi_get : t -> Op.key list -> (string * int) option list
(** One round trip per involved storage node, in parallel. *)

val multi_write : t -> Op.t list -> Op.result list
(** Ship a mixed batch of (conditional) writes; results in input order. *)

val scan_all : t -> prefix:string -> (Op.key * string * int) list
(** Query every storage node for keys under [prefix]; merged, sorted. *)

val scan_eval_all : t -> prefix:string -> program:string -> (Op.key * string * int) list
(** Push-down scan (§5.2 extension): run the storage nodes' registered
    evaluator over the cells under [prefix]; only its (filtered,
    projected) outputs travel back over the network. *)

(** {1 Introspection} *)

val requests_sent : t -> int
val ops_sent : t -> int
(** Batching ratio = ops_sent / requests_sent. *)

val max_retries : int
(** Size of the retry budget every operation starts with. *)

val backoff_ns : t -> attempts:int -> int
(** Sample the pause taken before the retry that has [attempts] budget
    left: exponential in the retries already burned, uniformly jittered
    in [base/2, 3*base/2) so clients that timed out against the same
    partition do not retry in lockstep when it heals. *)
