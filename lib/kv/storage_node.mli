(** A single in-memory storage node (SN).

    Each node owns one CPU queueing resource and a flat keyspace of
    versioned cells.  The same node object holds both master partitions
    and backup replicas of other nodes' partitions: the cells are stored
    identically and a fail-over merely redirects clients.  Operations are
    executed by the calling (client) fiber, charging the node's CPU — the
    standard inline-RPC idiom of the simulator. *)

type t

val create :
  Tell_sim.Engine.t ->
  id:int ->
  cores:int ->
  capacity_bytes:int ->
  base_service_ns:int ->
  per_byte_service_ns:float ->
  t

val id : t -> int
val alive : t -> bool

val serving : t -> bool
(** Alive {e and} owning at least the partitions the directory assigned
    it.  A freshly restarted node is alive but not serving: its store is
    empty, so answering a (stale-directory) client's read would present
    missing data as authoritative.  Clients treat a non-serving node like
    a dead one — time out, refresh the directory, retry. *)

val set_serving : t -> bool -> unit
val group : t -> Tell_sim.Engine.Group.t

val crash : t -> unit
(** Mark the node dead and kill its fibers.  Its memory content is
    considered lost (DRAM volatility). *)

val restart : t -> unit
(** Bring a crashed node back {e empty} (its DRAM content was lost) and
    alive.  It serves again as a re-replication target; it holds no
    partitions until the management node assigns it some. *)

val bytes_stored : t -> int
val capacity_bytes : t -> int
val cpu : t -> Tell_sim.Resource.t

val apply : t -> ?sender:string * int -> Op.t -> Op.result
(** Execute one operation against the local store, charging CPU time.
    Raises {!Op.Capacity_exceeded} when an insert/update would exceed the
    configured memory capacity.  Must be called from a fiber.

    [sender] is the caller's identity tag [(endpoint, epoch)]: a write
    whose epoch predates the sender's installed fence is refused with
    {!Op.result.Fenced_reply} instead of executing (zombie fencing —
    see {!fence}). *)

val apply_replica : t -> ?sender:string * int -> Op.t -> Op.result -> unit
(** Install the effect of a master-side operation on a backup copy.  The
    master's [result] disambiguates conditional writes: only successful
    writes are shipped to replicas, so this unconditionally applies —
    unless [sender] is fenced, in which case the write is discarded (a
    healed zombie's replication stream must not resurrect rolled-back
    versions on backups). *)

val fence : t -> sender:string -> epoch:int -> unit
(** Refuse all future writes from [sender] whose epoch is below [epoch].
    Installed by the management node {e before} recovery rolls the
    sender's transactions back, and never stepped backwards.  Fences
    survive {!restart}: they are management metadata, not DRAM state. *)

val fenced_rejects : t -> int
(** How many writes this node bounced with [Fenced_reply]. *)

val replay_cap : int
(** FIFO bound on the per-node replay cache: entries beyond the cap evict
    the oldest.  The bound is what keeps a node's memory finite; it is
    safe because a client's retry window spans far fewer than
    [replay_cap] other conditional ops on one node. *)

val find_replay : t -> client:int -> op_id:int -> Op.result option
(** Cached first result of a conditional mutation previously executed
    under [(client, op_id)] — exactly-once semantics over an
    at-least-once network.  A client that lost the reply re-sends the op
    under the same id and must get the original verdict back, not a
    spurious [Conflict] against its own write. *)

val record_replay : t -> client:int -> op_id:int -> Op.result -> unit
(** Remember the first result of a conditional mutation for {!find_replay}.
    First write per id wins; the cache is a bounded FIFO, sized far above
    anything a client's few-millisecond retry budget can span.  Cleared by
    {!restart} together with the cells it refers to. *)

val snapshot : t -> (Op.key * string * int) list
(** Dump all cells (for re-replication after fail-over). *)

val load : t -> (Op.key * string * int) list -> unit
(** Install cells wholesale (target side of re-replication). *)

val wipe : t -> unit

val encode_counter : int -> string
(** The on-wire representation of an integer cell, as maintained by
    [Increment] — for loaders that install counters directly. *)

val find : t -> Op.key -> (string * int) option
(** Zero-time local lookup (no CPU charge) — loader/test support. *)

val set_evaluator : t -> (program:string -> key:Op.key -> data:string -> string option) -> unit
(** Register the push-down evaluator used by [Scan_eval] operations
    (§5.2 extension).  The evaluator returns the projected output for a
    matching cell, or [None] to filter it out. *)
