(* Wire-level operations of the record store.

   Values are opaque byte strings.  Every stored cell carries a {e token}:
   a per-key write counter that implements load-link / store-conditional.
   [Get] returns the current token (the "load-link"); a subsequent
   [Put_if (key, Some token, v)] succeeds only if the cell has not been
   written in between (the "store-conditional").  Because the token counts
   writes rather than comparing values, the ABA problem does not arise. *)

type key = string

type t =
  | Get of key
  | Put of key * string  (** unconditional upsert (transaction-log entries, CM state) *)
  | Put_if of key * int option * string
      (** conditional write: [Some token] = store-conditional against that
          load-link token; [None] = succeed only if the key is absent *)
  | Remove of key * int option  (** conditional delete; [None] = unconditional *)
  | Increment of key * int  (** atomic fetch-and-add on an integer cell, returns new value *)
  | Scan of string  (** all live cells whose key has the given prefix *)
  | Scan_eval of string * string
      (** push-down scan (§5.2 extension): [Scan_eval (prefix, program)]
          runs the node-registered evaluator over every cell under
          [prefix] and returns only the (typically much smaller) outputs
          — selection and projection execute inside the storage layer *)

type result =
  | Value of (string * int) option  (** reply to [Get]: (value, token) *)
  | Token of int  (** conditional write succeeded; the new token *)
  | Conflict  (** store-conditional failed: the cell changed (or existed) *)
  | Count of int  (** reply to [Increment]: the post-increment value *)
  | Keys of (key * string * int) list  (** reply to [Scan] *)
  | Done  (** reply to [Put] / unconditional [Remove] *)
  | Fenced_reply
      (** the write carried an epoch token from before its sender's
          declared-dead epoch; the node refused it (zombie fencing) *)

exception Unavailable of string
(** The responsible storage node could not be reached (crash + fail-over in
    progress).  Clients retry after refreshing the partition directory. *)

exception Fenced of string
(** The management node declared this client's owner dead and fenced its
    epoch: the storage nodes reject all of its writes.  Not retryable —
    the owner must stop treating itself as a cluster member (a zombie
    coming back from a partition must not complete rolled-back work). *)

exception Capacity_exceeded of int
(** The storage node identified by the payload ran out of memory. *)

let key_of = function
  | Get k | Put (k, _) | Put_if (k, _, _) | Remove (k, _) | Increment (k, _) -> k
  | Scan p | Scan_eval (p, _) -> p

let is_write = function
  | Get _ | Scan _ | Scan_eval _ -> false
  | Put _ | Put_if _ | Remove _ | Increment _ -> true

(* Conditional mutations are not idempotent under at-least-once delivery:
   a client retrying after a lost reply would observe its own first
   attempt and report a spurious [Conflict] (or double-apply an
   [Increment]).  These ops carry a client-unique operation id; the
   storage node caches the first result and replays it on a retry. *)
let needs_dedup = function
  | Put_if _ | Increment _ | Remove (_, Some _) -> true
  | Get _ | Put _ | Remove (_, None) | Scan _ | Scan_eval _ -> false

(* Approximate wire sizes, for the network model. *)
let per_op_overhead = 24

let request_bytes = function
  | Get k -> String.length k + per_op_overhead
  | Put (k, v) | Put_if (k, _, v) -> String.length k + String.length v + per_op_overhead
  | Remove (k, _) -> String.length k + per_op_overhead
  | Increment (k, _) -> String.length k + 8 + per_op_overhead
  | Scan p -> String.length p + per_op_overhead
  | Scan_eval (p, program) -> String.length p + String.length program + per_op_overhead

let result_bytes = function
  | Value (Some (v, _)) -> String.length v + per_op_overhead
  | Value None | Token _ | Conflict | Count _ | Done | Fenced_reply -> per_op_overhead
  | Keys entries ->
      List.fold_left
        (fun acc (k, v, _) -> acc + String.length k + String.length v + per_op_overhead)
        per_op_overhead entries
