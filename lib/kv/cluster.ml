module Sim = Tell_sim

type config = {
  n_storage_nodes : int;
  replication_factor : int;
  partitions_per_node : int;
  sn_cores : int;
  sn_capacity_bytes : int;
  net_profile : Sim.Net.profile;
  base_service_ns : int;
  per_byte_service_ns : float;
  replication_coord_ns : int;
  replication_latency_ns : int;
  client_max_batch : int;
  client_timeout_ns : int;
  detector_period_ns : int;
  seed : int;
}

let default_config =
  {
    n_storage_nodes = 7;
    replication_factor = 1;
    partitions_per_node = 8;
    sn_cores = 4;
    sn_capacity_bytes = 64 * 1024 * 1024 * 1024;
    net_profile = Sim.Net.infiniband;
    base_service_ns = 600;
    per_byte_service_ns = 0.12;
    replication_coord_ns = 1_500;
    replication_latency_ns = 20_000;
    client_max_batch = 64;
    client_timeout_ns = 300_000;
    detector_period_ns = 150_000;
    seed = 42;
  }

type t = {
  engine : Sim.Engine.t;
  config : config;
  rng : Sim.Rng.t;
  net : Sim.Net.t;
  nodes : Storage_node.t array;
  directory : Directory.t;
  mgmt_cpu : Sim.Resource.t;
  mgmt_group : Sim.Engine.Group.t;
  mutable handled_crashes : int list;  (** node ids already repaired *)
  mutable epoch : int;
      (** cluster epoch, owned by the management node: bumped whenever a
          member is declared dead, so its in-flight writes can be fenced *)
}

let create engine config =
  let rng = Sim.Rng.make config.seed in
  let net = Sim.Net.create engine (Sim.Rng.split rng) config.net_profile in
  let nodes =
    Array.init config.n_storage_nodes (fun id ->
        Storage_node.create engine ~id ~cores:config.sn_cores
          ~capacity_bytes:config.sn_capacity_bytes ~base_service_ns:config.base_service_ns
          ~per_byte_service_ns:config.per_byte_service_ns)
  in
  let directory =
    Directory.create
      ~n_partitions:(config.n_storage_nodes * config.partitions_per_node)
      ~n_nodes:config.n_storage_nodes ~replication_factor:config.replication_factor
  in
  {
    engine;
    config;
    rng;
    net;
    nodes;
    directory;
    mgmt_cpu = Sim.Resource.create engine ~servers:2 "mgmt";
    mgmt_group = Sim.Engine.make_group engine "mgmt";
    handled_crashes = [];
    epoch = 1;
  }

let engine t = t.engine
let config t = t.config
let directory t = t.directory
let node t i = t.nodes.(i)
let nodes t = t.nodes
let net t = t.net
let rng t = t.rng
let mgmt_cpu t = t.mgmt_cpu
let mgmt_group t = t.mgmt_group
let crash_node t i = Storage_node.crash t.nodes.(i)

let restart_node t i =
  Storage_node.restart t.nodes.(i);
  (* Forget the repair mark so the failure detector handles a future
     crash of this node again. *)
  t.handled_crashes <- List.filter (fun id -> id <> i) t.handled_crashes

let inject_latency_spike t ~from_ns ~until_ns ?factor ?extra_ns () =
  Sim.Net.inject_fault t.net ~from_ns ~until_ns ?factor ?extra_ns ()

(* --- epoch fencing (zombie protection) ------------------------------------ *)

let sn_endpoint i = Printf.sprintf "sn%d" i
let mgmt_endpoint = "mgmt"
let current_epoch t = t.epoch

(* Declare the named senders dead: bump the cluster epoch once and
   install [fence sender (new epoch)] on every storage node, so writes
   the senders still have in flight — tagged with the previous epoch —
   bounce.  Must complete on every node BEFORE recovery rolls the
   senders' transactions back; callers rely on that ordering.

   One management message per live node models the installation cost
   (bounded retries ride out flaky links; the fence itself is installed
   regardless — it is management metadata a dead or partitioned node
   re-syncs before it can serve again).  Must run inside a fiber. *)
let fence_senders t ~senders =
  t.epoch <- t.epoch + 1;
  let epoch = t.epoch in
  Array.iteri
    (fun i node ->
      if Storage_node.alive node then begin
        let rec push attempts =
          match
            Sim.Net.send t.net ~src:mgmt_endpoint ~dst:(sn_endpoint i) ~bytes:64
          with
          | `Delivered -> ()
          | `Dropped when attempts > 0 ->
              Sim.Engine.sleep t.engine t.config.client_timeout_ns;
              push (attempts - 1)
          | `Dropped -> ()
        in
        push 8
      end;
      List.iter (fun sender -> Storage_node.fence node ~sender ~epoch) senders)
    t.nodes;
  epoch

let min_live_replication t =
  let worst = ref max_int in
  for p = 0 to Directory.n_partitions t.directory - 1 do
    let live =
      List.fold_left
        (fun acc n -> if Storage_node.alive t.nodes.(n) then acc + 1 else acc)
        0
        (Directory.replicas t.directory p)
    in
    if live < !worst then worst := live
  done;
  if !worst = max_int then 0 else !worst

let live_nodes t =
  Array.fold_left (fun acc n -> if Storage_node.alive n then acc + 1 else acc) 0 t.nodes

let total_bytes_stored t =
  Array.fold_left
    (fun acc n -> if Storage_node.alive n then acc + Storage_node.bytes_stored n else acc)
    0 t.nodes

(* Pick the live node with the fewest partitions assigned, excluding those
   already in the chain. *)
let pick_new_backup t ~exclude =
  let load = Array.make (Array.length t.nodes) 0 in
  for p = 0 to Directory.n_partitions t.directory - 1 do
    List.iter (fun n -> load.(n) <- load.(n) + 1) (Directory.replicas t.directory p)
  done;
  let best = ref None in
  Array.iteri
    (fun i n ->
      if Storage_node.alive n && not (List.mem i exclude) then
        match !best with
        | Some (_, l) when l <= load.(i) -> ()
        | _ -> best := Some (i, load.(i)))
    t.nodes;
  Option.map fst !best

(* Bulk-copy partition [p]'s cells from its (new) master to node [target].
   The copy streams over the network with bandwidth cost, then installs;
   concurrent writes reach the target too because it is already listed in
   the chain, and [Storage_node.load] never overwrites a newer token. *)
let re_replicate t ~partition ~target =
  let master_id = Directory.master t.directory partition in
  let master = t.nodes.(master_id) in
  let belongs key = Directory.partition_of_key t.directory key = partition in
  let cells = List.filter (fun (k, _, _) -> belongs k) (Storage_node.snapshot master) in
  let bytes =
    List.fold_left (fun acc (k, v, _) -> acc + String.length k + String.length v + 16) 64 cells
  in
  Sim.Net.transfer t.net ~bytes;
  Storage_node.load t.nodes.(target) cells

let repair_after_crash t ~dead =
  for p = 0 to Directory.n_partitions t.directory - 1 do
    let chain = Directory.replicas t.directory p in
    if List.mem dead chain then begin
      let survivors = List.filter (fun n -> n <> dead) chain in
      match survivors with
      | [] ->
          (* RF1: the partition's data is lost; keep routing somewhere so
             the system stays available for new writes. *)
          (match pick_new_backup t ~exclude:[] with
          | Some fresh ->
              Storage_node.set_serving t.nodes.(fresh) true;
              Directory.set_replicas t.directory p [ fresh ]
          | None -> ())
      | _ :: _ -> (
          match pick_new_backup t ~exclude:survivors with
          | Some fresh ->
              Storage_node.set_serving t.nodes.(fresh) true;
              Directory.set_replicas t.directory p (survivors @ [ fresh ]);
              re_replicate t ~partition:p ~target:fresh
          | None -> Directory.set_replicas t.directory p survivors)
    end
  done

let set_pushdown_evaluator t evaluate =
  Array.iter (fun node -> Storage_node.set_evaluator node evaluate) t.nodes

let poke t ~key ~data =
  let p = Directory.partition_of_key t.directory key in
  List.iter
    (fun sn_id -> Storage_node.load t.nodes.(sn_id) [ (key, data, 1) ])
    (Directory.replicas t.directory p)

let poke_counter t ~key ~value = poke t ~key ~data:(Storage_node.encode_counter value)

let peek t ~key =
  let p = Directory.partition_of_key t.directory key in
  let master = t.nodes.(Directory.master t.directory p) in
  Option.map fst (Storage_node.find master key)

let start_failure_detector t =
  Sim.Engine.spawn t.engine ~group:t.mgmt_group (fun () ->
      while true do
        Sim.Engine.sleep t.engine t.config.detector_period_ns;
        Array.iteri
          (fun i n ->
            if (not (Storage_node.alive n)) && not (List.mem i t.handled_crashes) then begin
              t.handled_crashes <- i :: t.handled_crashes;
              (* Heartbeat timeout already elapsed implicitly: the detector
                 period bounds detection latency. *)
              Sim.Resource.use t.mgmt_cpu ~demand:10_000;
              repair_after_crash t ~dead:i
            end)
          t.nodes
      done)
