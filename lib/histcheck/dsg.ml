type label = Ww | Wr | Rw

type edge = { src : int; dst : int; label : label; key : string }

type t = {
  node_set : (int, unit) Hashtbl.t;
  out_edges : (int, edge list) Hashtbl.t;
}

let create () = { node_set = Hashtbl.create 64; out_edges = Hashtbl.create 64 }

let add_node t n = if not (Hashtbl.mem t.node_set n) then Hashtbl.replace t.node_set n ()

let add_edge t ~src ~dst ~label ~key =
  if src <> dst then begin
    add_node t src;
    add_node t dst;
    let e = { src; dst; label; key } in
    let es = Option.value ~default:[] (Hashtbl.find_opt t.out_edges src) in
    if not (List.mem e es) then Hashtbl.replace t.out_edges src (e :: es)
  end

let nodes t = Hashtbl.fold (fun n () acc -> n :: acc) t.node_set []
let out t n = Option.value ~default:[] (Hashtbl.find_opt t.out_edges n)
let edges t = Hashtbl.fold (fun _ es acc -> es @ acc) t.out_edges []

(* Tarjan.  Component sizes here are the handful of transactions of one
   short simulated run, so the recursive formulation is fine. *)
let sccs t =
  let index = Hashtbl.create 64 and low = Hashtbl.create 64 in
  let on_stack = Hashtbl.create 64 in
  let stack = ref [] and counter = ref 0 and components = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace low v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun e ->
        let w = e.dst in
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace low v (min (Hashtbl.find low v) (Hashtbl.find low w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace low v (min (Hashtbl.find low v) (Hashtbl.find index w)))
      (out t v);
    if Hashtbl.find low v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
            stack := rest;
            Hashtbl.remove on_stack w;
            if w = v then w :: acc else pop (w :: acc)
      in
      components := pop [] :: !components
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v) (nodes t);
  !components

let shortest_cycle t ~within ~allowed ~start =
  let visited = Hashtbl.create 16 and prev = Hashtbl.create 16 in
  let q = Queue.create () in
  Hashtbl.replace visited start ();
  Queue.add start q;
  let result = ref None in
  (try
     while not (Queue.is_empty q) do
       let n = Queue.pop q in
       List.iter
         (fun e ->
           if within e.dst && allowed e.label then
             if e.dst = start then begin
               let rec build n acc =
                 if n = start then acc
                 else
                   let pe = Hashtbl.find prev n in
                   build pe.src (pe :: acc)
               in
               result := Some (build n [] @ [ e ]);
               raise Exit
             end
             else if not (Hashtbl.mem visited e.dst) then begin
               Hashtbl.replace visited e.dst ();
               Hashtbl.replace prev e.dst e;
               Queue.add e.dst q
             end)
         (out t n)
     done
   with Exit -> ());
  !result

let is_simple cycle =
  let srcs = List.map (fun e -> e.src) cycle in
  List.length (List.sort_uniq compare srcs) = List.length srcs

(* BFS over (node, last-edge-was-rw) states: a path may traverse a node
   once per state, which is exactly what makes "no two adjacent rw"
   decidable with BFS.  The wrap-around adjacency (last edge, first edge)
   is enforced at the goal test. *)
let shortest_si_cycle t ~within ~start =
  let best = ref None in
  let consider c =
    match !best with Some b when List.length b <= List.length c -> () | _ -> best := Some c
  in
  List.iter
    (fun e0 ->
      if within e0.dst then begin
        let first_rw = e0.label = Rw in
        let s0 = (e0.dst, first_rw) in
        let visited = Hashtbl.create 16 and prev = Hashtbl.create 16 in
        let q = Queue.create () in
        Hashtbl.replace visited s0 ();
        Queue.add s0 q;
        try
          while not (Queue.is_empty q) do
            let (n, prw) as st = Queue.pop q in
            List.iter
              (fun e ->
                if within e.dst && not (prw && e.label = Rw) then
                  if e.dst = start && not (e.label = Rw && first_rw) then begin
                    let rec build st acc =
                      if st = s0 then acc
                      else
                        let pe, pst = Hashtbl.find prev st in
                        build pst (pe :: acc)
                    in
                    consider ((e0 :: build st []) @ [ e ]);
                    raise Exit
                  end
                  else begin
                    let st' = (e.dst, e.label = Rw) in
                    if not (Hashtbl.mem visited st') then begin
                      Hashtbl.replace visited st' ();
                      Hashtbl.replace prev st' (e, st);
                      Queue.add st' q
                    end
                  end)
              (out t n)
          done
        with Exit -> ()
      end)
    (out t start);
  match !best with Some c when is_simple c -> Some c | _ -> None

let label_name = function Ww -> "ww" | Wr -> "wr" | Rw -> "rw"

let pp_cycle ppf cycle =
  match cycle with
  | [] -> Format.pp_print_string ppf "<empty cycle>"
  | first :: _ ->
      List.iter
        (fun e -> Format.fprintf ppf "T%d -%s(%s)-> " e.src (label_name e.label) e.key)
        cycle;
      Format.fprintf ppf "T%d" first.src
