(** Direct serialization graph over the committed transactions of one
    recorded history (Adya's DSG; see "A Critique of Snapshot Isolation"
    in PAPERS.md and DESIGN.md §7).

    Nodes are committed tids.  Edges carry the key they were induced by:
    - [Ww]: src installed the version-order predecessor of a version dst
      installed on [key];
    - [Wr]: dst observed the version src installed on [key];
    - [Rw] (anti-dependency): src observed a version of [key] whose
      immediate version-order successor dst installed.

    Self-edges are never added (a transaction overwriting its own read is
    not a dependency). *)

type label = Ww | Wr | Rw

type edge = { src : int; dst : int; label : label; key : string }

type t

val create : unit -> t

val add_edge : t -> src:int -> dst:int -> label:label -> key:string -> unit
(** Deduplicates identical edges; drops self-edges. *)

val nodes : t -> int list
val out : t -> int -> edge list
val edges : t -> edge list

val sccs : t -> int list list
(** Strongly connected components (Tarjan).  Singleton components are
    included; since there are no self-edges they are always cycle-free. *)

val shortest_cycle :
  t -> within:(int -> bool) -> allowed:(label -> bool) -> start:int -> edge list option
(** Shortest cycle through [start] using only [allowed]-labelled edges
    between [within] nodes (BFS, so minimal in edge count and simple). *)

val shortest_si_cycle : t -> within:(int -> bool) -> start:int -> edge list option
(** Shortest {e SI-violating} cycle through [start]: one in which no two
    cyclically adjacent edges are both [Rw].  SI admits only cycles that
    contain two consecutive anti-dependency edges (Fekete et al.; write
    skew is the canonical admitted case), so any cycle this finds proves
    the history is not SI.  Non-simple walks are discarded rather than
    reported — a pragmatic soundness trade-off documented in DESIGN.md
    §7. *)

val pp_cycle : Format.formatter -> edge list -> unit
(** ["T5 -ww(r/stock/000000000007)-> T9 -rw(...)-> T5"]. *)
