module History = Tell_core.History
module Version_set = Tell_core.Version_set

type cls =
  | G0
  | G1a
  | G1b
  | G1c
  | G_SI
  | Lost_update
  | Future_read
  | Stale_read
  | Unwritten_read

type anomaly = { a_class : cls; a_cycle : Dsg.edge list; a_msg : string }

type report = { r_txns : int; r_committed : int; r_anomalies : anomaly list }

type decision = Undecided | Dcommit | Dabort

type txn = {
  x_tid : int;
  mutable x_snapshot : Version_set.t option;
  mutable x_reads : (string * int * bool) list;  (* key, version, intermediate *)
  mutable x_writes : (string * (int * bool)) list;  (* key -> version, tombstone *)
  mutable x_decision : decision;
}

(* A transaction that was never decided is indistinguishable from an
   aborted one: its tid enters no snapshot, so nothing it applied is
   visible and the reclamation sweep will roll it back.  [Rolled_back]
   overrides an earlier [Commit] — the ghost-commit case. *)
let digest events =
  let txns = Hashtbl.create 64 in
  let order = ref [] in
  let get tid =
    match Hashtbl.find_opt txns tid with
    | Some x -> x
    | None ->
        let x =
          { x_tid = tid; x_snapshot = None; x_reads = []; x_writes = []; x_decision = Undecided }
        in
        Hashtbl.replace txns tid x;
        order := tid :: !order;
        x
  in
  List.iter
    (function
      | History.Begin { tid; snapshot; _ } -> (get tid).x_snapshot <- Some snapshot
      | History.Read { tid; key; version; intermediate } ->
          let x = get tid in
          x.x_reads <- (key, version, intermediate) :: x.x_reads
      | History.Write { tid; key; version; tombstone } ->
          let x = get tid in
          x.x_writes <- (key, (version, tombstone)) :: List.remove_assoc key x.x_writes
      | History.Commit { tid } ->
          let x = get tid in
          if x.x_decision = Undecided then x.x_decision <- Dcommit
      | History.Abort { tid } ->
          let x = get tid in
          if x.x_decision = Undecided then x.x_decision <- Dabort
      | History.Rolled_back { tid } -> (get tid).x_decision <- Dabort
      | History.Node_event _ -> ())
    events;
  (txns, List.rev !order)

let analyze events =
  let txns, order = digest events in
  let anomalies = ref [] in
  let add cls ?(cycle = []) msg =
    anomalies := { a_class = cls; a_cycle = cycle; a_msg = msg } :: !anomalies
  in
  let committed x = x.x_decision = Dcommit in
  (* Who wrote (key, version), any decision — for aborted-read checks. *)
  let writer_of = Hashtbl.create 256 in
  List.iter
    (fun tid ->
      let x = Hashtbl.find txns tid in
      List.iter (fun (key, (v, _)) -> Hashtbl.replace writer_of (key, v) tid) x.x_writes)
    order;
  (* Per-key version order over committed writes, ascending, with the
     initial version 0 (bulk load / absent record) prepended.  Version
     numbers are tids and [Record.latest_visible] picks the highest
     visible one, so sorting by version {e is} the install order the
     system exposes to readers. *)
  let raw_chains = Hashtbl.create 64 in
  List.iter
    (fun tid ->
      let x = Hashtbl.find txns tid in
      if committed x then
        List.iter
          (fun (key, (v, tomb)) ->
            Hashtbl.replace raw_chains key
              ((v, Some tid, tomb) :: Option.value ~default:[] (Hashtbl.find_opt raw_chains key)))
          x.x_writes)
    order;
  let chains = Hashtbl.create 64 in
  Hashtbl.iter
    (fun key vs -> Hashtbl.replace chains key ((0, None, false) :: List.sort compare vs))
    raw_chains;
  let chain key = Option.value ~default:[ (0, None, false) ] (Hashtbl.find_opt chains key) in
  (* --- read-level checks ---------------------------------------------------------- *)
  List.iter
    (fun tid ->
      let x = Hashtbl.find txns tid in
      List.iter
        (fun (key, v, intermediate) ->
          (if v > 0 then
             match Hashtbl.find_opt writer_of (key, v) with
             | None ->
                 add Unwritten_read
                   (Printf.sprintf "T%d read %s@%d, which no recorded transaction wrote" tid key v)
             | Some w ->
                 let wx = Hashtbl.find txns w in
                 if committed x && not (committed wx) then
                   add G1a
                     (Printf.sprintf "committed T%d read %s@%d installed by %s T%d" tid key v
                        (match wx.x_decision with Dabort -> "aborted" | _ -> "undecided")
                        w)
                 else if intermediate && committed x && committed wx then
                   add G1b
                     (Printf.sprintf "committed T%d read intermediate write %s@%d of T%d" tid key
                        v w));
          match x.x_snapshot with
          | None -> ()
          | Some vs ->
              if v > 0 && not (Version_set.mem vs v) then
                add Future_read (Printf.sprintf "T%d read %s@%d outside its snapshot" tid key v)
              else
                let visible_max =
                  List.fold_left
                    (fun acc (v', _, tomb) ->
                      if v' > 0 && Version_set.mem vs v' then Some (v', tomb) else acc)
                    None (chain key)
                in
                (match visible_max with
                | Some (vmax, tomb) when v < vmax && not (v = 0 && tomb) ->
                    add Stale_read
                      (Printf.sprintf "T%d read %s@%d but its snapshot admits version %d" tid key
                         v vmax)
                | _ -> ()))
        (List.sort_uniq compare x.x_reads))
    order;
  (* --- direct serialization graph over committed transactions --------------------- *)
  let g = Dsg.create () in
  Hashtbl.iter
    (fun key ch ->
      let rec ww = function
        | (_, Some w1, _) :: ((_, Some w2, _) :: _ as rest) ->
            Dsg.add_edge g ~src:w1 ~dst:w2 ~label:Dsg.Ww ~key;
            ww rest
        | _ :: rest -> ww rest
        | [] -> ()
      in
      ww ch)
    chains;
  List.iter
    (fun tid ->
      let x = Hashtbl.find txns tid in
      if committed x then
        List.iter
          (fun (key, v) ->
            let ch = chain key in
            (if v > 0 then
               match Hashtbl.find_opt writer_of (key, v) with
               | Some w when committed (Hashtbl.find txns w) ->
                   Dsg.add_edge g ~src:w ~dst:tid ~label:Dsg.Wr ~key
               | Some _ | None -> ());
            (* Anti-dependency: only when the observed version is on the
               committed chain (version 0 always is); a read of an
               aborted version is already G1a. *)
            if v = 0 || List.exists (fun (v', _, _) -> v' = v) ch then
              match List.find_opt (fun (v', _, _) -> v' > v) ch with
              | Some (_, Some w', _) -> Dsg.add_edge g ~src:tid ~dst:w' ~label:Dsg.Rw ~key
              | Some (_, None, _) | None -> ())
          (List.sort_uniq compare (List.map (fun (k, v, _) -> (k, v)) x.x_reads)))
    order;
  (* --- cycle classification: one anomaly per SCC, most specific class,
     minimal witness ----------------------------------------------------------------- *)
  List.iter
    (fun scc ->
      match scc with
      | [] | [ _ ] -> ()
      | _ ->
          let members = Hashtbl.create 8 in
          List.iter (fun n -> Hashtbl.replace members n ()) scc;
          let within n = Hashtbl.mem members n in
          let scc_edges =
            List.concat_map
              (fun n -> List.filter (fun (e : Dsg.edge) -> within e.dst) (Dsg.out g n))
              scc
          in
          let lost_update =
            List.find_map
              (fun (e : Dsg.edge) ->
                if e.label = Dsg.Rw then
                  List.find_map
                    (fun (e' : Dsg.edge) ->
                      if e'.label = Dsg.Ww && e'.dst = e.src && e'.key = e.key then
                        Some [ e; e' ]
                      else None)
                    (Dsg.out g e.dst)
                else None)
              scc_edges
          in
          let best find =
            List.fold_left
              (fun acc n ->
                match (acc, find n) with
                | Some a, Some c when List.length a <= List.length c -> Some a
                | _, Some c -> Some c
                | acc, None -> acc)
              None scc
          in
          (match lost_update with
          | Some cycle ->
              let e = List.hd cycle in
              add Lost_update ~cycle
                (Printf.sprintf "T%d overwrote the version of %s installed by T%d without observing it"
                   e.Dsg.src e.Dsg.key e.Dsg.dst)
          | None -> (
              match
                best (fun n ->
                    Dsg.shortest_cycle g ~within ~allowed:(fun l -> l = Dsg.Ww) ~start:n)
              with
              | Some cycle -> add G0 ~cycle "write cycle"
              | None -> (
                  match
                    best (fun n ->
                        Dsg.shortest_cycle g ~within ~allowed:(fun l -> l <> Dsg.Rw) ~start:n)
                  with
                  | Some cycle -> add G1c ~cycle "dependency cycle"
                  | None -> (
                      match best (fun n -> Dsg.shortest_si_cycle g ~within ~start:n) with
                      | Some cycle ->
                          add G_SI ~cycle "cycle without two consecutive anti-dependencies"
                      | None -> ())))))
    (Dsg.sccs g);
  {
    r_txns = List.length order;
    r_committed =
      List.length (List.filter (fun tid -> committed (Hashtbl.find txns tid)) order);
    r_anomalies = List.rev !anomalies;
  }

let cls_name = function
  | G0 -> "G0"
  | G1a -> "G1a"
  | G1b -> "G1b"
  | G1c -> "G1c"
  | G_SI -> "G-SI"
  | Lost_update -> "lost-update"
  | Future_read -> "future-read"
  | Stale_read -> "stale-read"
  | Unwritten_read -> "unwritten-read"

let describe a =
  match a.a_cycle with
  | [] -> Printf.sprintf "%s: %s" (cls_name a.a_class) a.a_msg
  | cycle -> Format.asprintf "%s: %s [%a]" (cls_name a.a_class) a.a_msg Dsg.pp_cycle cycle

let check events = List.map describe (analyze events).r_anomalies
