(** Adya-style SI anomaly checker over a recorded {!Tell_core.History}
    (Elle-lite; DESIGN.md §7).

    Reconstructs per-key version orders (by version number — version
    numbers are tids, and [Record.latest_visible] resolves visibility by
    highest visible tid, so this is the system's real version order),
    checks every read against its transaction's snapshot, builds the
    direct serialization graph over committed transactions and classifies
    its cycles.

    What SI permits: cycles in which every anti-dependency ([rw]) edge is
    immediately followed by another one — write skew.  Everything else is
    reported:

    - [G0]: cycle of [ww] edges only (write cycle).
    - [G1a]: a committed transaction observed a version installed by an
      aborted (or rolled-back, or never-decided) transaction.
    - [G1b]: a committed transaction observed an intermediate (non-final)
      write — representable only in hand-built histories, the recorder
      applies final buffered payloads.
    - [G1c]: cycle of [ww]/[wr] edges (dependency cycle).
    - [G_SI]: cycle with no two cyclically-adjacent [rw] edges that is
      not one of the above.
    - [Lost_update]: the 2-cycle \{[rw](k), [ww](k)\} on a single key.
    - [Future_read]: a read observed a version outside its snapshot
      (impossible through [Record.latest_visible] — flags recorder or
      engine corruption).
    - [Stale_read]: a read observed less than the maximal
      snapshot-visible committed version of the key.  Exemption: a
      tombstone that became the sole surviving version is
      garbage-collected with its whole record, so observing version 0
      under a snapshot whose newest visible version is a tombstone is
      legal.
    - [Unwritten_read]: a read observed a version > 0 that no recorded
      transaction wrote (recorder coverage bug, or history truncation). *)

type cls =
  | G0
  | G1a
  | G1b
  | G1c
  | G_SI
  | Lost_update
  | Future_read
  | Stale_read
  | Unwritten_read

type anomaly = {
  a_class : cls;
  a_cycle : Dsg.edge list;  (** witness cycle; [[]] for read-level anomalies *)
  a_msg : string;  (** human-readable details: tids, key, versions *)
}

type report = {
  r_txns : int;  (** transactions seen in the history *)
  r_committed : int;  (** finally committed (ghosts excluded) *)
  r_anomalies : anomaly list;
}

val analyze : Tell_core.History.event list -> report
(** At most one cycle anomaly per strongly connected component, the most
    specific class with a minimal witness; read-level anomalies are
    reported per offending read (deduplicated). *)

val cls_name : cls -> string
val describe : anomaly -> string

val check : Tell_core.History.event list -> string list
(** [describe] of every anomaly — [[]] means the history is SI. *)
