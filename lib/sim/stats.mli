(** Measurement utilities: counters, running moments, latency histograms. *)

module Counter : sig
  type t

  val create : string -> t
  val incr : ?by:int -> t -> unit
  val value : t -> int
  val reset : t -> unit
  val name : t -> string
end

module Moments : sig
  (** Streaming mean / standard deviation (Welford). *)

  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val stddev : t -> float
  val min : t -> float
  val max : t -> float
  val reset : t -> unit
end

module Histogram : sig
  (** Log-linear histogram (HDR-style): values are bucketed with bounded
      relative error (~3 %), supporting percentile queries over latency
      distributions without storing samples. *)

  type t

  val create : unit -> t
  val add : t -> int -> unit
  val count : t -> int

  val percentile : t -> float -> int
  (** [percentile t 99.0] is an upper bound of the 99th percentile value;
      0 when empty. *)

  val mean : t -> float
  val stddev : t -> float
  val merge_into : src:t -> dst:t -> unit
  val reset : t -> unit
end

module Breakdown : sig
  (** A fixed set of named phases, each carrying a latency histogram and
      an operation counter — used for per-phase breakdowns of composite
      code paths (e.g. the commit pipeline's log / apply / index / notify
      phases). *)

  type t

  val create : string list -> t
  (** The phase set is fixed at creation; {!add} on an unknown phase
      raises [Invalid_argument]. *)

  val add : ?ops:int -> t -> phase:string -> int -> unit
  (** Record one latency sample (ns) for [phase], optionally accounting
      [ops] operations against it. *)

  val phases : t -> (string * Histogram.t * int) list
  (** [(name, latency histogram, total ops)] in creation order. *)

  val merge_into : src:t -> dst:t -> unit
  (** Phases of [src] must exist in [dst]. *)
end
