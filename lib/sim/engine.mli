(** Discrete-event simulation engine with cooperative fibers.

    The engine maintains a virtual clock (in nanoseconds) and a queue of
    timestamped events.  Simulated processes are {e fibers}: ordinary OCaml
    functions that suspend themselves through effect handlers whenever they
    wait for virtual time to pass or for another fiber to produce a value.
    All fiber code runs single-threaded inside {!run}; concurrency is purely
    cooperative, which makes every simulation deterministic for a given
    seed. *)

type t

exception Cancelled
(** Raised inside a fiber when its {!group} has been killed (e.g. the
    simulated node it runs on has crashed). *)

module Group : sig
  (** A cancellation group, typically one per simulated node.  Killing the
      group causes every suspended fiber that belongs to it to receive
      {!Cancelled} at its suspension point the next time it would resume. *)

  type t

  val label : t -> string
  val alive : t -> bool
  val kill : t -> unit
  val revive : t -> unit
end

val create : unit -> t

val now : t -> int
(** Current virtual time in nanoseconds. *)

val root_group : t -> Group.t
val make_group : t -> string -> Group.t

val spawn : t -> ?group:Group.t -> (unit -> unit) -> unit
(** [spawn t f] schedules fiber [f] to start at the current virtual time.
    Uncaught exceptions other than {!Cancelled} escaping [f] abort the
    simulation run. *)

val sleep : t -> int -> unit
(** [sleep t d] suspends the calling fiber for [d] nanoseconds of virtual
    time.  Must be called from within a fiber. *)

val yield : t -> unit
(** Reschedule the calling fiber at the current instant, letting other
    ready fibers run first. *)

type resume = { resume : unit -> unit; cancel : exn -> unit }

val suspend : t -> (resume -> unit) -> unit
(** [suspend t register] suspends the calling fiber and hands a {!resume}
    record to [register].  Exactly one of [resume.resume] or
    [resume.cancel] must eventually be invoked (at most once); the fiber
    then continues (or raises) at the suspension point at the virtual time
    of the invocation.  If the fiber's group has been killed by the time
    [resume.resume] fires, the fiber receives {!Cancelled} instead. *)

val schedule : t -> ?delay:int -> (unit -> unit) -> unit
(** [schedule t ~delay f] runs callback [f] (not a fiber: it must not
    suspend) after [delay] ns of virtual time. *)

val set_tie_break : t -> Rng.t option -> unit
(** Install (or, with [None], remove) a seeded schedule perturbation:
    every event subsequently scheduled draws a random tie-break rank from
    the given stream, so events that land on the {e same} virtual instant
    fire in a seed-dependent order instead of FIFO.  Event times are
    untouched.  Distinct seeds explore distinct interleavings of
    concurrently-ready fibers while each seed remains fully reproducible —
    the schedule-exploration knob of the [tell_check] harness.  Correct
    simulations must not depend on same-instant ordering; leave this
    [None] (the default) for calibrated benchmark runs. *)

val run : t -> ?until:int -> unit -> unit
(** Process events in timestamp order.  Stops when the event queue drains
    or, if [until] is given, just before the first event later than
    [until] (the clock is then advanced to [until]). *)

val pending_events : t -> int
