module Counter = struct
  type t = { name : string; mutable value : int }

  let create name = { name; value = 0 }
  let incr ?(by = 1) t = t.value <- t.value + by
  let value t = t.value
  let reset t = t.value <- 0
  let name t = t.name
end

module Moments = struct
  type t = {
    mutable count : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
  }

  let create () = { count = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity }

  let add t x =
    t.count <- t.count + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.count
  let mean t = if t.count = 0 then 0.0 else t.mean
  let stddev t = if t.count < 2 then 0.0 else sqrt (t.m2 /. float_of_int (t.count - 1))
  let min t = if t.count = 0 then 0.0 else t.min
  let max t = if t.count = 0 then 0.0 else t.max

  let reset t =
    t.count <- 0;
    t.mean <- 0.0;
    t.m2 <- 0.0;
    t.min <- infinity;
    t.max <- neg_infinity
end

module Histogram = struct
  (* Log-linear bucketing: values below 32 get exact buckets; above, each
     power-of-two octave is split into 32 linear sub-buckets, bounding the
     relative quantisation error at ~3 %. *)

  let sub_bits = 5
  let sub_buckets = 1 lsl sub_bits
  let n_buckets = sub_buckets + (58 * sub_buckets)

  type t = { buckets : int array; moments : Moments.t }

  let create () = { buckets = Array.make n_buckets 0; moments = Moments.create () }

  let msb v =
    let rec loop v acc = if v <= 1 then acc else loop (v lsr 1) (acc + 1) in
    loop v 0

  let bucket_of_value v =
    if v < sub_buckets then v
    else begin
      let m = msb v in
      let shift = m - sub_bits in
      let sub = (v lsr shift) - sub_buckets in
      sub_buckets + ((m - sub_bits) * sub_buckets) + sub
    end

  let upper_bound_of_bucket b =
    if b < sub_buckets then b
    else begin
      let octave = (b - sub_buckets) / sub_buckets in
      let sub = (b - sub_buckets) mod sub_buckets in
      (((sub + sub_buckets + 1) lsl octave) - 1 : int)
    end

  let add t v =
    let v = if v < 0 then 0 else v in
    t.buckets.(bucket_of_value v) <- t.buckets.(bucket_of_value v) + 1;
    Moments.add t.moments (float_of_int v)

  let count t = Moments.count t.moments

  let percentile t p =
    let total = count t in
    if total = 0 then 0
    else begin
      let rank = int_of_float (ceil (p /. 100.0 *. float_of_int total)) in
      let rank = if rank < 1 then 1 else if rank > total then total else rank in
      let rec scan b acc =
        if b >= n_buckets then upper_bound_of_bucket (n_buckets - 1)
        else begin
          let acc = acc + t.buckets.(b) in
          if acc >= rank then upper_bound_of_bucket b else scan (b + 1) acc
        end
      in
      scan 0 0
    end

  let mean t = Moments.mean t.moments
  let stddev t = Moments.stddev t.moments

  let merge_into ~src ~dst =
    Array.iteri
      (fun b n ->
        if n > 0 then begin
          dst.buckets.(b) <- dst.buckets.(b) + n;
          let v = float_of_int (upper_bound_of_bucket b) in
          for _ = 1 to n do
            Moments.add dst.moments v
          done
        end)
      src.buckets

  let reset t =
    Array.fill t.buckets 0 n_buckets 0;
    Moments.reset t.moments
end

module Breakdown = struct
  (* A fixed set of named phases, each with a latency histogram and an
     operation counter — the commit-path instrumentation (log, apply,
     index, notify) uses one of these per processing node. *)

  type phase = { name : string; hist : Histogram.t; ops : Counter.t }
  type t = phase list

  let create names =
    List.map (fun name -> { name; hist = Histogram.create (); ops = Counter.create name }) names

  let find t name =
    match List.find_opt (fun p -> p.name = name) t with
    | Some p -> p
    | None -> invalid_arg ("Stats.Breakdown: unknown phase " ^ name)

  let add ?(ops = 0) t ~phase v =
    let p = find t phase in
    Histogram.add p.hist v;
    if ops > 0 then Counter.incr ~by:ops p.ops

  let phases t = List.map (fun p -> (p.name, p.hist, Counter.value p.ops)) t

  let merge_into ~src ~dst =
    List.iter
      (fun s ->
        let d = find dst s.name in
        Histogram.merge_into ~src:s.hist ~dst:d.hist;
        Counter.incr ~by:(Counter.value s.ops) d.ops)
      src
end
