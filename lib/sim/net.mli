(** Parametric network model.

    A message transfer costs a base one-way latency plus a per-byte
    serialisation cost, with light multiplicative jitter.  Two presets
    mirror the paper's test bed: 40 Gbit QDR InfiniBand with RDMA
    (microsecond latencies, kernel bypass) and 10 Gbit Ethernet (tens of
    microseconds through the OS networking stack).  Cumulative per-link
    byte counters support the bandwidth-saturation discussion of §6.6. *)

type profile = {
  name : string;
  base_latency_ns : int;  (** one-way propagation + stack traversal *)
  per_byte_ns : float;  (** inverse bandwidth *)
  jitter : float;  (** relative stddev of the latency, e.g. 0.05 *)
}

val infiniband : profile
val ethernet_10g : profile
val profile_of_string : string -> profile option

type t

val create : Engine.t -> Rng.t -> profile -> t
val profile : t -> profile

val delay : t -> bytes:int -> int
(** Sample the one-way delay for a message of [bytes] payload bytes. *)

val inject_fault :
  t -> from_ns:int -> until_ns:int -> ?factor:float -> ?extra_ns:int -> unit -> unit
(** Install a latency-degradation window: every delay sampled while the
    virtual clock is in [\[from_ns, until_ns)] is multiplied by [factor]
    (default 1.0) and increased by [extra_ns] (default 0).  Windows may
    overlap (they compose); expired windows are swept automatically.
    Fault-injection hook for the [tell_check] harness — times must be
    virtual, never wall-clock, to preserve seed determinism. *)

val clear_faults : t -> unit

val transfer : t -> bytes:int -> unit
(** Suspend the calling fiber for one sampled one-way delay and account
    the bytes. *)

val bytes_sent : t -> int
val reset_counters : t -> unit
