(** Parametric network model.

    A message transfer costs a base one-way latency plus a per-byte
    serialisation cost, with light multiplicative jitter.  Two presets
    mirror the paper's test bed: 40 Gbit QDR InfiniBand with RDMA
    (microsecond latencies, kernel bypass) and 10 Gbit Ethernet (tens of
    microseconds through the OS networking stack).  Cumulative per-link
    byte counters support the bandwidth-saturation discussion of §6.6.

    On top of the latency model sits a per-link fault plan for the
    fault-injection harness: named partitions (symmetric or one-way cuts
    between endpoint groups) and probabilistic per-link message drop /
    duplication, installable and healable at virtual instants.  Faulty
    links are only exercised by the identity-carrying {!send}; the legacy
    {!transfer} models traffic whose endpoints are not interesting and
    never drops. *)

type profile = {
  name : string;
  base_latency_ns : int;  (** one-way propagation + stack traversal *)
  per_byte_ns : float;  (** inverse bandwidth *)
  jitter : float;  (** relative stddev of the latency, e.g. 0.05 *)
}

val infiniband : profile
val ethernet_10g : profile
val profile_of_string : string -> profile option

type t

val create : Engine.t -> Rng.t -> profile -> t
val profile : t -> profile

val delay : t -> bytes:int -> int
(** Sample the one-way delay for a message of [bytes] payload bytes. *)

val inject_fault :
  t -> from_ns:int -> until_ns:int -> ?factor:float -> ?extra_ns:int -> unit -> unit
(** Install a latency-degradation window: every delay sampled while the
    virtual clock is in [\[from_ns, until_ns)] is multiplied by [factor]
    (default 1.0) and increased by [extra_ns] (default 0).  Windows may
    overlap (they compose); expired windows are swept automatically.
    Fault-injection hook for the [tell_check] harness — times must be
    virtual, never wall-clock, to preserve seed determinism. *)

val clear_faults : t -> unit

val transfer : t -> bytes:int -> unit
(** Suspend the calling fiber for one sampled one-way delay and account
    the bytes.  Never drops: use {!send} for traffic that must obey the
    link fault plan. *)

(** {1 Link-level fault plan}

    Endpoints are opaque names; the cluster layer uses the fiber-group
    labels of its components ("pn0", "cm1", "sn3", "mgmt") so that one
    naming scheme identifies a link everywhere. *)

val send : t -> src:string -> dst:string -> bytes:int -> [ `Delivered | `Dropped ]
(** One identity-carrying message.  [`Delivered]: the calling fiber slept
    one sampled one-way delay, the message arrived.  [`Dropped]: the
    message was lost to a cut or to link loss and the call returns
    immediately — the caller models the receiver's silence (typically by
    sleeping its timeout and raising an unavailability error).  Loss
    decisions draw from the net's seeded rng only on links with a loss
    plan, so fault-free runs consume the same random stream as
    {!transfer}-only ones. *)

val cut :
  t -> name:string -> from_:string list -> to_:string list -> symmetric:bool -> unit
(** Install (or replace) the named partition: messages from any endpoint
    in [from_] to any endpoint in [to_] are dropped; [symmetric] also
    severs the reverse direction (a full partition rather than a one-way
    cut). *)

val heal : t -> name:string -> unit
val heal_all : t -> unit

val active_cuts : t -> string list
(** Names of the partitions still installed — the harness asserts this is
    empty at audit time (every scenario must heal what it cuts). *)

val set_loss : t -> src:string -> dst:string -> ?drop:float -> ?dup:float -> unit -> unit
(** Probabilistic loss on one directed link: each {!send} is dropped with
    probability [drop], else duplicated on the wire with probability
    [dup] (the receiver de-duplicates; only bytes and counters observe
    it).  Both 0.0 clears the link's plan. *)

val clear_loss : t -> src:string -> dst:string -> unit

val set_default_loss : t -> ?drop:float -> ?dup:float -> unit -> unit
(** Loss applied to every link without a specific plan — a uniformly
    flaky fabric. *)

val clear_default_loss : t -> unit

(** {1 Counters} *)

val link_counts : t -> src:string -> dst:string -> int * int * int
(** [(sent, dropped, duplicated)] messages on the directed link, from its
    {!Stats.Counter}s. *)

val messages_dropped : t -> int
val messages_duplicated : t -> int
val bytes_sent : t -> int
val reset_counters : t -> unit
