(* Binary min-heap of timestamped events.  Ordering key is
   [(time, prio, seq)]: [prio] is an optional caller-provided tie-break
   rank (0 by default) and [seq] is a monotonically increasing counter, so
   that events scheduled at the same virtual instant fire in FIFO order
   unless the caller deliberately perturbs them.  Either way the order is
   a pure function of the push sequence, which keeps simulations
   deterministic. *)

type 'a entry = { time : int; prio : int; seq : int; payload : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let dummy payload = { time = 0; prio = 0; seq = 0; payload }

let create () = { data = [||]; size = 0; next_seq = 0 }

let length t = t.size

let is_empty t = t.size = 0

let precedes a b =
  a.time < b.time
  || (a.time = b.time && (a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)))

let grow t entry =
  let capacity = Array.length t.data in
  if t.size = capacity then begin
    let new_capacity = if capacity = 0 then 64 else capacity * 2 in
    let data = Array.make new_capacity (dummy entry.payload) in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end

let rec sift_up data i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if precedes data.(i) data.(parent) then begin
      let tmp = data.(i) in
      data.(i) <- data.(parent);
      data.(parent) <- tmp;
      sift_up data parent
    end
  end

let rec sift_down data size i =
  let left = (2 * i) + 1 in
  if left < size then begin
    let right = left + 1 in
    let smallest = if right < size && precedes data.(right) data.(left) then right else left in
    if precedes data.(smallest) data.(i) then begin
      let tmp = data.(i) in
      data.(i) <- data.(smallest);
      data.(smallest) <- tmp;
      sift_down data size smallest
    end
  end

let push t ~time ?(prio = 0) payload =
  let entry = { time; prio; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  grow t entry;
  t.data.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t.data (t.size - 1)

let peek_time t = if t.size = 0 then None else Some t.data.(0).time

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t.data t.size 0
    end;
    Some (top.time, top.payload)
  end
