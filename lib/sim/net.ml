type profile = {
  name : string;
  base_latency_ns : int;
  per_byte_ns : float;
  jitter : float;
}

(* 40 Gbit QDR InfiniBand with RDMA verbs: ~2.5 us one-way including NIC
   processing, kernel bypass.  ~5 GB/s of usable bandwidth. *)
let infiniband = { name = "infiniband"; base_latency_ns = 2_500; per_byte_ns = 0.25; jitter = 0.05 }

(* 10 Gbit Ethernet through the OS stack: tens of microseconds one-way. *)
let ethernet_10g =
  { name = "ethernet-10g"; base_latency_ns = 32_000; per_byte_ns = 0.9; jitter = 0.10 }

let profile_of_string = function
  | "infiniband" | "ib" -> Some infiniband
  | "ethernet-10g" | "ethernet" | "eth" -> Some ethernet_10g
  | _ -> None

(* A fault window degrades every delay sampled while the virtual clock is
   inside [from_ns, until_ns): the sampled latency is multiplied by
   [factor] and [extra_ns] is added on top.  Windows are installed at
   seed-derived virtual times by the fault-injection harness; expired
   windows are swept lazily. *)
type fault = { from_ns : int; until_ns : int; factor : float; extra_ns : int }

type t = {
  engine : Engine.t;
  rng : Rng.t;
  profile : profile;
  mutable bytes_sent : int;
  mutable faults : fault list;
}

let create engine rng profile = { engine; rng; profile; bytes_sent = 0; faults = [] }
let profile t = t.profile

let inject_fault t ~from_ns ~until_ns ?(factor = 1.0) ?(extra_ns = 0) () =
  if until_ns > from_ns then
    t.faults <- { from_ns; until_ns; factor; extra_ns } :: t.faults

let clear_faults t = t.faults <- []

let apply_faults t d =
  match t.faults with
  | [] -> d
  | _ :: _ ->
      let now = Engine.now t.engine in
      t.faults <- List.filter (fun f -> f.until_ns > now) t.faults;
      List.fold_left
        (fun d f ->
          if now >= f.from_ns then
            int_of_float (float_of_int d *. f.factor) + f.extra_ns
          else d)
        d t.faults

let delay t ~bytes =
  let p = t.profile in
  let nominal = float_of_int p.base_latency_ns +. (p.per_byte_ns *. float_of_int bytes) in
  let sampled = Rng.gaussian t.rng ~mean:nominal ~stddev:(nominal *. p.jitter) in
  apply_faults t (int_of_float (Float.max sampled (0.5 *. nominal)))

let transfer t ~bytes =
  t.bytes_sent <- t.bytes_sent + bytes;
  Engine.sleep t.engine (delay t ~bytes)

let bytes_sent t = t.bytes_sent
let reset_counters t = t.bytes_sent <- 0
