type profile = {
  name : string;
  base_latency_ns : int;
  per_byte_ns : float;
  jitter : float;
}

(* 40 Gbit QDR InfiniBand with RDMA verbs: ~2.5 us one-way including NIC
   processing, kernel bypass.  ~5 GB/s of usable bandwidth. *)
let infiniband = { name = "infiniband"; base_latency_ns = 2_500; per_byte_ns = 0.25; jitter = 0.05 }

(* 10 Gbit Ethernet through the OS stack: tens of microseconds one-way. *)
let ethernet_10g =
  { name = "ethernet-10g"; base_latency_ns = 32_000; per_byte_ns = 0.9; jitter = 0.10 }

let profile_of_string = function
  | "infiniband" | "ib" -> Some infiniband
  | "ethernet-10g" | "ethernet" | "eth" -> Some ethernet_10g
  | _ -> None

(* A fault window degrades every delay sampled while the virtual clock is
   inside [from_ns, until_ns): the sampled latency is multiplied by
   [factor] and [extra_ns] is added on top.  Windows are installed at
   seed-derived virtual times by the fault-injection harness; expired
   windows are swept lazily. *)
type fault = { from_ns : int; until_ns : int; factor : float; extra_ns : int }

(* A partition: messages from any endpoint in [cut_from] to any endpoint
   in [cut_to] are dropped on the wire; [cut_symmetric] also blocks the
   reverse direction.  Cuts are named so a heal at a later virtual
   instant removes exactly the partition it targets. *)
type cut = {
  cut_name : string;
  cut_from : string list;
  cut_to : string list;
  cut_symmetric : bool;
}

type loss = { drop : float; dup : float }

type link_stats = {
  l_sent : Stats.Counter.t;
  l_dropped : Stats.Counter.t;
  l_duplicated : Stats.Counter.t;
}

type t = {
  engine : Engine.t;
  rng : Rng.t;
  profile : profile;
  mutable bytes_sent : int;
  mutable faults : fault list;
  mutable cuts : cut list;
  losses : (string * string, loss) Hashtbl.t;  (* directed (src, dst) *)
  mutable default_loss : loss option;
  links : (string * string, link_stats) Hashtbl.t;
  mutable messages_dropped : int;
  mutable messages_duplicated : int;
}

let create engine rng profile =
  {
    engine;
    rng;
    profile;
    bytes_sent = 0;
    faults = [];
    cuts = [];
    losses = Hashtbl.create 8;
    default_loss = None;
    links = Hashtbl.create 32;
    messages_dropped = 0;
    messages_duplicated = 0;
  }

let profile t = t.profile

let inject_fault t ~from_ns ~until_ns ?(factor = 1.0) ?(extra_ns = 0) () =
  if until_ns > from_ns then
    t.faults <- { from_ns; until_ns; factor; extra_ns } :: t.faults

let clear_faults t = t.faults <- []

let apply_faults t d =
  match t.faults with
  | [] -> d
  | _ :: _ ->
      let now = Engine.now t.engine in
      t.faults <- List.filter (fun f -> f.until_ns > now) t.faults;
      List.fold_left
        (fun d f ->
          if now >= f.from_ns then
            int_of_float (float_of_int d *. f.factor) + f.extra_ns
          else d)
        d t.faults

let delay t ~bytes =
  let p = t.profile in
  let nominal = float_of_int p.base_latency_ns +. (p.per_byte_ns *. float_of_int bytes) in
  let sampled = Rng.gaussian t.rng ~mean:nominal ~stddev:(nominal *. p.jitter) in
  apply_faults t (int_of_float (Float.max sampled (0.5 *. nominal)))

let transfer t ~bytes =
  t.bytes_sent <- t.bytes_sent + bytes;
  Engine.sleep t.engine (delay t ~bytes)

(* --- link-level fault plan ------------------------------------------------ *)

let cut t ~name ~from_ ~to_ ~symmetric =
  t.cuts <-
    { cut_name = name; cut_from = from_; cut_to = to_; cut_symmetric = symmetric }
    :: List.filter (fun c -> c.cut_name <> name) t.cuts

let heal t ~name = t.cuts <- List.filter (fun c -> c.cut_name <> name) t.cuts
let heal_all t = t.cuts <- []
let active_cuts t = List.map (fun c -> c.cut_name) t.cuts

let severed t ~src ~dst =
  List.exists
    (fun c ->
      (List.mem src c.cut_from && List.mem dst c.cut_to)
      || (c.cut_symmetric && List.mem src c.cut_to && List.mem dst c.cut_from))
    t.cuts

let set_loss t ~src ~dst ?(drop = 0.0) ?(dup = 0.0) () =
  if drop = 0.0 && dup = 0.0 then Hashtbl.remove t.losses (src, dst)
  else Hashtbl.replace t.losses (src, dst) { drop; dup }

let clear_loss t ~src ~dst = Hashtbl.remove t.losses (src, dst)

let set_default_loss t ?(drop = 0.0) ?(dup = 0.0) () =
  if drop = 0.0 && dup = 0.0 then t.default_loss <- None
  else t.default_loss <- Some { drop; dup }

let clear_default_loss t = t.default_loss <- None

let loss_for t ~src ~dst =
  match Hashtbl.find_opt t.losses (src, dst) with
  | Some l -> Some l
  | None -> t.default_loss

let link t ~src ~dst =
  match Hashtbl.find_opt t.links (src, dst) with
  | Some l -> l
  | None ->
      let label field = Printf.sprintf "%s->%s.%s" src dst field in
      let l =
        {
          l_sent = Stats.Counter.create (label "sent");
          l_dropped = Stats.Counter.create (label "dropped");
          l_duplicated = Stats.Counter.create (label "duplicated");
        }
      in
      Hashtbl.replace t.links (src, dst) l;
      l

(* A send draws from the rng only when a loss plan covers the link, so a
   fault-free run consumes exactly the same random stream as the plain
   [transfer] path — the bench calibration is unaffected by this model
   existing. *)
let send t ~src ~dst ~bytes =
  let stats = link t ~src ~dst in
  Stats.Counter.incr stats.l_sent;
  t.bytes_sent <- t.bytes_sent + bytes;
  if severed t ~src ~dst then begin
    Stats.Counter.incr stats.l_dropped;
    t.messages_dropped <- t.messages_dropped + 1;
    `Dropped
  end
  else
    let dropped, duplicated =
      match loss_for t ~src ~dst with
      | None -> (false, false)
      | Some { drop; dup } ->
          let dropped = drop > 0.0 && Rng.float t.rng 1.0 < drop in
          let duplicated = (not dropped) && dup > 0.0 && Rng.float t.rng 1.0 < dup in
          (dropped, duplicated)
    in
    if dropped then begin
      Stats.Counter.incr stats.l_dropped;
      t.messages_dropped <- t.messages_dropped + 1;
      `Dropped
    end
    else begin
      if duplicated then begin
        (* The duplicate occupies the wire; the receiver's transport layer
           discards it by sequence number, so only bytes and the counter
           observe it. *)
        Stats.Counter.incr stats.l_duplicated;
        t.messages_duplicated <- t.messages_duplicated + 1;
        t.bytes_sent <- t.bytes_sent + bytes
      end;
      Engine.sleep t.engine (delay t ~bytes);
      `Delivered
    end

let link_counts t ~src ~dst =
  match Hashtbl.find_opt t.links (src, dst) with
  | None -> (0, 0, 0)
  | Some l ->
      (Stats.Counter.value l.l_sent, Stats.Counter.value l.l_dropped,
       Stats.Counter.value l.l_duplicated)

let messages_dropped t = t.messages_dropped
let messages_duplicated t = t.messages_duplicated
let bytes_sent t = t.bytes_sent

let reset_counters t =
  t.bytes_sent <- 0;
  t.messages_dropped <- 0;
  t.messages_duplicated <- 0;
  Hashtbl.iter
    (fun _ l ->
      Stats.Counter.reset l.l_sent;
      Stats.Counter.reset l.l_dropped;
      Stats.Counter.reset l.l_duplicated)
    t.links
