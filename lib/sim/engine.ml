exception Cancelled

module Group = struct
  type t = { label : string; mutable alive : bool }

  let make label = { label; alive = true }
  let label t = t.label
  let alive t = t.alive
  let kill t = t.alive <- false
  let revive t = t.alive <- true
end

type t = {
  mutable clock : int;
  events : (unit -> unit) Heap.t;
  root : Group.t;
  mutable tie_break : Rng.t option;
}

type resume = { resume : unit -> unit; cancel : exn -> unit }

type _ Effect.t += Suspend : (resume -> unit) -> unit Effect.t

let create () = { clock = 0; events = Heap.create (); root = Group.make "root"; tie_break = None }

let now t = t.clock
let root_group t = t.root
let make_group _t label = Group.make label
let set_tie_break t rng = t.tie_break <- rng

let schedule t ?(delay = 0) f =
  assert (delay >= 0);
  let prio = match t.tie_break with None -> 0 | Some rng -> Rng.int rng 0x3FFFFFFF in
  Heap.push t.events ~time:(t.clock + delay) ~prio f

(* Run fiber [f] under a deep effect handler.  The handler turns every
   [Suspend] into a one-shot resume record whose [resume] re-checks the
   group's liveness: a fiber of a crashed node observes [Cancelled] at its
   suspension point rather than silently continuing. *)
let spawn t ?group f =
  let group = match group with Some g -> g | None -> t.root in
  let open Effect.Deep in
  let handle () =
    match_with f ()
      {
        retc = (fun () -> ());
        exnc =
          (fun e ->
            match e with
            | Cancelled -> ()
            | e ->
                Fmt.epr "tell_sim: fiber in group %S died: %s@." (Group.label group)
                  (Printexc.to_string e);
                raise e);
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Suspend register ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    let fired = ref false in
                    let once name =
                      if !fired then invalid_arg ("Engine.resume: " ^ name ^ " fired twice")
                      else fired := true
                    in
                    register
                      {
                        resume =
                          (fun () ->
                            once "resume";
                            if Group.alive group then continue k () else discontinue k Cancelled);
                        cancel =
                          (fun e ->
                            once "cancel";
                            discontinue k e);
                      })
            | _ -> None);
      }
  in
  schedule t (fun () -> if Group.alive group then handle ())

let suspend _t register = Effect.perform (Suspend register)

let sleep t d =
  assert (d >= 0);
  suspend t (fun r -> schedule t ~delay:d r.resume)

let yield t = sleep t 0

let run t ?until () =
  let continue_run = ref true in
  while !continue_run do
    match Heap.peek_time t.events with
    | None -> continue_run := false
    | Some time -> (
        match until with
        | Some limit when time > limit ->
            t.clock <- limit;
            continue_run := false
        | _ -> (
            match Heap.pop t.events with
            | None -> continue_run := false
            | Some (time, f) ->
                t.clock <- time;
                f ()))
  done;
  match until with Some limit when t.clock < limit -> t.clock <- limit | _ -> ()

let pending_events t = Heap.length t.events
