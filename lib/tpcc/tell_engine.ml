(* The five TPC-C transactions against Tell's transaction API.

   Record accesses go through the primary-key / secondary B+trees exactly
   as the paper describes (Figure 4): index lookup yields a rid, the rid
   read yields the record with all its versions.  Like the paper's PNs,
   transaction programs are precompiled code, not SQL text (the SQL layer
   exists and is exercised by examples and tests). *)

module Sim = Tell_sim
open Tell_core

type t = {
  db : Database.t;
  pns : Pn.t array;
  scale : Spec.scale;
}

type conn = { engine : t; pn : Pn.t }

let create db ~pns ~scale = { db; pns = Array.of_list pns; scale }

let name _ = "tell"

let connect t ~terminal_id = { engine = t; pn = t.pns.(terminal_id mod Array.length t.pns) }

let now_ts conn = Sim.Engine.now (Pn.engine conn.pn)

(* --- small helpers -------------------------------------------------------------- *)

exception Row_missing of string

let pk index_table = "pk_" ^ index_table

let pk_req table key = (table, pk table, Codec.encode_key key)

(* Fused point reads: one batched index round plus one batched record
   round for the whole request list; a missing/invisible row raises
   [Row_missing] exactly like the sequential path did. *)
let read_multi txn reqs =
  List.map2
    (fun (table, _, _) result ->
      match result with Some hit -> hit | None -> raise (Row_missing table))
    reqs
    (Txn.read_by_pk_multi txn reqs)

let read_by_pk txn ~table key =
  match read_multi txn [ pk_req table key ] with
  | [ hit ] -> hit
  | _ -> raise (Row_missing table)

let prefix_range txn ~index prefix =
  let lo = Codec.encode_key prefix in
  Txn.index_range txn ~index ~lo ~hi:(Codec.encode_key_successor prefix)

let f = Value.as_float
let i = Value.as_int
let s = Value.as_string

(* Clause 2.5.2.2: select by last name takes the ceiling-middle customer
   ordered by first name. *)
let customer_by_selector txn ~scale:_ ~w_id ~d_id selector =
  match selector with
  | Spec.By_id c_id ->
      read_by_pk txn ~table:"customer" [ Value.Int w_id; Value.Int d_id; Value.Int c_id ]
  | Spec.By_last_name last -> (
      let entries =
        prefix_range txn ~index:"idx_customer_name"
          [ Value.Int w_id; Value.Int d_id; Value.Str last ]
      in
      let rids = List.map snd entries in
      let rows = Txn.read_batch txn ~table:"customer" ~rids in
      let rows =
        List.sort (fun (_, a) (_, b) -> String.compare (s a.(3)) (s b.(3))) rows
      in
      let n = List.length rows in
      if n = 0 then raise (Row_missing "customer-by-name")
      else
        match List.nth_opt rows ((n - 1) / 2) with
        | Some row -> row
        | None -> raise (Row_missing "customer-by-name"))

(* --- NEW-ORDER (clause 2.4) ------------------------------------------------------- *)

let new_order conn txn (input : Spec.new_order_input) =
  let w_id = input.no_w_id and d_id = input.no_d_id in
  let items =
    (* An unused item number triggers the specified 1 % rollback. *)
    if input.invalid_item then
      match List.rev input.items with
      | (_, sw, qty) :: rest -> List.rev ((0, sw, qty) :: rest)
      | [] -> input.items
    else input.items
  in
  (* Every key the transaction touches is known from the input, so the
     whole read side — warehouse, district, customer, all items, all
     stocks — is one fused call: one batched leaf round, one batched
     record round (§5.1 request batching). *)
  let valid_items = List.filter (fun (i_id, _, _) -> i_id <> 0) items in
  let header =
    [
      pk_req "warehouse" [ Value.Int w_id ];
      pk_req "district" [ Value.Int w_id; Value.Int d_id ];
      pk_req "customer" [ Value.Int w_id; Value.Int d_id; Value.Int input.no_c_id ];
    ]
  in
  let item_reqs = List.map (fun (i_id, _, _) -> pk_req "item" [ Value.Int i_id ]) valid_items in
  let stock_reqs =
    List.map
      (fun (i_id, supply_w, _) -> pk_req "stock" [ Value.Int supply_w; Value.Int i_id ])
      valid_items
  in
  let n_items = List.length valid_items in
  let results = Txn.read_by_pk_multi txn (header @ item_reqs @ stock_reqs) in
  let wh_hit, dist_hit, cust_hit, fused =
    match results with
    | wh :: dist :: cust :: rest ->
        let rec split n = function
          | rest when n = 0 -> ([], rest)
          | [] -> ([], [])
          | x :: rest ->
              let a, b = split (n - 1) rest in
              (x :: a, b)
        in
        let item_hits, stock_hits = split n_items rest in
        (wh, dist, cust, ref (List.combine item_hits stock_hits))
    | _ -> raise (Row_missing "warehouse")
  in
  let next_fused () =
    match !fused with
    | [] -> (None, None)
    | hit :: rest ->
        fused := rest;
        hit
  in
  let warehouse =
    match wh_hit with Some (_, w) -> w | None -> raise (Row_missing "warehouse")
  in
  let w_tax = f warehouse.(6) in
  let d_rid, district =
    match dist_hit with Some hit -> hit | None -> raise (Row_missing "district")
  in
  let d_tax = f district.(7) in
  let o_id = i district.(9) in
  let district' = Array.copy district in
  district'.(9) <- Value.Int (o_id + 1);
  Txn.update txn ~table:"district" ~rid:d_rid district';
  let customer =
    match cust_hit with Some (_, c) -> c | None -> raise (Row_missing "customer")
  in
  let c_discount = f customer.(14) in
  let all_local = List.for_all (fun (_, sw, _) -> sw = w_id) input.items in
  let ol_cnt = List.length input.items in
  ignore
    (Txn.insert txn ~table:"orders"
       [|
         Value.Int w_id; Value.Int d_id; Value.Int o_id; Value.Int input.no_c_id;
         Value.Int (now_ts conn); Value.Int 0; Value.Int ol_cnt;
         Value.Int (if all_local then 1 else 0);
       |]);
  ignore (Txn.insert txn ~table:"neworder" [| Value.Int w_id; Value.Int d_id; Value.Int o_id |]);
  let total = ref 0.0 in
  let ol_number = ref 0 in
  let item_missing =
    List.exists
      (fun (i_id, supply_w, quantity) ->
        let item_hit, stock_hit = if i_id = 0 then (None, None) else next_fused () in
        match item_hit with
        | None -> true
        | Some (_, item) ->
            let price = f item.(3) in
            let s_rid, stock =
              match stock_hit with Some hit -> hit | None -> raise (Row_missing "stock")
            in
            let s_qty = i stock.(2) in
            let new_qty = if s_qty >= quantity + 10 then s_qty - quantity else s_qty - quantity + 91 in
            let stock' = Array.copy stock in
            stock'.(2) <- Value.Int new_qty;
            stock'.(4) <- Value.Float (f stock.(4) +. float_of_int quantity);
            stock'.(5) <- Value.Int (i stock.(5) + 1);
            if supply_w <> w_id then stock'.(6) <- Value.Int (i stock.(6) + 1);
            Txn.update txn ~table:"stock" ~rid:s_rid stock';
            let amount = float_of_int quantity *. price in
            total := !total +. amount;
            incr ol_number;
            ignore
              (Txn.insert txn ~table:"orderline"
                 [|
                   Value.Int w_id; Value.Int d_id; Value.Int o_id; Value.Int !ol_number;
                   Value.Int i_id; Value.Int supply_w; Value.Int 0; Value.Int quantity;
                   Value.Float amount; Value.Str (s stock.(3));
                 |]);
            false)
      items
  in
  if item_missing then begin
    Txn.abort txn;
    Engine_intf.User_abort
  end
  else begin
    ignore (!total *. (1.0 +. w_tax +. d_tax) *. (1.0 -. c_discount));
    Txn.commit txn;
    Engine_intf.Committed
  end

(* --- PAYMENT (clause 2.5) ----------------------------------------------------------- *)

let payment conn txn (input : Spec.payment_input) =
  (* Warehouse, district and — when selected by id — the customer in one
     fused read; a by-last-name selection needs the name index range
     first, so it stays on the sequential selector path. *)
  let header =
    [
      pk_req "warehouse" [ Value.Int input.p_w_id ];
      pk_req "district" [ Value.Int input.p_w_id; Value.Int input.p_d_id ];
    ]
  in
  let header =
    match input.p_customer with
    | Spec.By_id c_id ->
        header
        @ [
            pk_req "customer"
              [ Value.Int input.p_c_w_id; Value.Int input.p_c_d_id; Value.Int c_id ];
          ]
    | Spec.By_last_name _ -> header
  in
  let (w_rid, warehouse), (d_rid, district), cust_hit =
    match read_multi txn header with
    | [ wh; dist ] -> (wh, dist, None)
    | [ wh; dist; cust ] -> (wh, dist, Some cust)
    | _ -> raise (Row_missing "warehouse")
  in
  let warehouse' = Array.copy warehouse in
  warehouse'.(7) <- Value.Float (f warehouse.(7) +. input.p_amount);
  Txn.update txn ~table:"warehouse" ~rid:w_rid warehouse';
  let district' = Array.copy district in
  district'.(8) <- Value.Float (f district.(8) +. input.p_amount);
  Txn.update txn ~table:"district" ~rid:d_rid district';
  let c_rid, customer =
    match cust_hit with
    | Some hit -> hit
    | None ->
        customer_by_selector txn ~scale:conn.engine.scale ~w_id:input.p_c_w_id
          ~d_id:input.p_c_d_id input.p_customer
  in
  let customer' = Array.copy customer in
  customer'.(15) <- Value.Float (f customer.(15) -. input.p_amount);
  customer'.(16) <- Value.Float (f customer.(16) +. input.p_amount);
  customer'.(17) <- Value.Int (i customer.(17) + 1);
  if s customer.(12) = "BC" then begin
    let c_data =
      Printf.sprintf "%d %d %d %d %.2f|%s" (i customer.(2)) input.p_c_d_id input.p_c_w_id
        input.p_d_id input.p_amount (s customer.(19))
    in
    customer'.(19) <- Value.Str (String.sub c_data 0 (min 60 (String.length c_data)))
  end;
  Txn.update txn ~table:"customer" ~rid:c_rid customer';
  ignore
    (Txn.insert txn ~table:"history"
       [|
         customer.(2); Value.Int input.p_c_d_id; Value.Int input.p_c_w_id;
         Value.Int input.p_d_id; Value.Int input.p_w_id; Value.Int (now_ts conn);
         Value.Float input.p_amount;
         Value.Str (s warehouse.(1) ^ "    " ^ s district.(2));
       |]);
  Txn.commit txn;
  Engine_intf.Committed

(* --- ORDER-STATUS (clause 2.6) ------------------------------------------------------- *)

let order_status conn txn (input : Spec.order_status_input) =
  let _, customer =
    customer_by_selector txn ~scale:conn.engine.scale ~w_id:input.os_w_id ~d_id:input.os_d_id
      input.os_customer
  in
  let c_id = i customer.(2) in
  (* The customer's most recent order: highest key under the
     (w, d, c) prefix of the order-customer index. *)
  let entries =
    prefix_range txn ~index:"idx_orders_customer"
      [ Value.Int input.os_w_id; Value.Int input.os_d_id; Value.Int c_id ]
  in
  (match List.rev entries with
  | [] -> ()  (* a scaled-down population may leave a customer orderless *)
  | (_, o_rid) :: _ -> (
      match Txn.read txn ~table:"orders" ~rid:o_rid with
      | None -> ()
      | Some order ->
          let o_id = i order.(2) in
          let lines =
            prefix_range txn ~index:(pk "orderline")
              [ Value.Int input.os_w_id; Value.Int input.os_d_id; Value.Int o_id ]
          in
          let rows = Txn.read_batch txn ~table:"orderline" ~rids:(List.map snd lines) in
          List.iter (fun (_, line) -> ignore (i line.(4), i line.(7), f line.(8))) rows));
  Txn.commit txn;
  Engine_intf.Committed

(* --- DELIVERY (clause 2.7) ------------------------------------------------------------ *)

let delivery conn txn (input : Spec.delivery_input) =
  let w_id = input.dl_w_id in
  let districts = List.init conn.engine.scale.districts_per_wh (fun d -> d + 1) in
  (* The per-district index scans cannot share a round (ranges traverse),
     but everything row-shaped below them batches across districts:
     neworder rows, then orders, then all order lines, then customers —
     four batched rounds for the whole warehouse instead of ~six
     sequential reads per district. *)
  let heads =
    List.filter_map
      (fun d_id ->
        let lo = Codec.encode_key [ Value.Int w_id; Value.Int d_id ] in
        let hi = Codec.encode_key_successor [ Value.Int w_id; Value.Int d_id ] in
        match Txn.index_range txn ~index:(pk "neworder") ~lo ~hi with
        | [] -> None
        | (_, no_rid) :: _ -> Some (d_id, no_rid))
      districts
  in
  let no_rows = Txn.read_batch txn ~table:"neworder" ~rids:(List.map snd heads) in
  let pending =
    List.filter_map
      (fun (d_id, no_rid) ->
        match List.assoc_opt no_rid no_rows with
        | Some no_row -> Some (d_id, no_rid, i no_row.(2))
        | None -> None)
      heads
  in
  List.iter (fun (_, no_rid, _) -> Txn.delete txn ~table:"neworder" ~rid:no_rid) pending;
  let order_hits =
    Txn.read_by_pk_multi txn
      (List.map
         (fun (d_id, _, o_id) ->
           pk_req "orders" [ Value.Int w_id; Value.Int d_id; Value.Int o_id ])
         pending)
  in
  let orders =
    List.map2
      (fun (d_id, _, o_id) hit ->
        match hit with
        | Some (o_rid, order) -> (d_id, o_id, o_rid, order)
        | None -> raise (Row_missing "orders"))
      pending order_hits
  in
  List.iter
    (fun (_, _, o_rid, order) ->
      let order' = Array.copy order in
      order'.(5) <- Value.Int input.dl_carrier_id;
      Txn.update txn ~table:"orders" ~rid:o_rid order')
    orders;
  let lines_of =
    List.map
      (fun (d_id, o_id, _, order) ->
        let rids =
          List.map snd
            (prefix_range txn ~index:(pk "orderline")
               [ Value.Int w_id; Value.Int d_id; Value.Int o_id ])
        in
        (d_id, order, rids))
      orders
  in
  let all_lines =
    Txn.read_batch txn ~table:"orderline"
      ~rids:(List.concat_map (fun (_, _, rids) -> rids) lines_of)
  in
  let line_of = Hashtbl.create 64 in
  List.iter (fun (rid, line) -> Hashtbl.replace line_of rid line) all_lines;
  let totals =
    List.map
      (fun (d_id, order, rids) ->
        let total = ref 0.0 in
        List.iter
          (fun rid ->
            match Hashtbl.find_opt line_of rid with
            | None -> ()
            | Some line ->
                total := !total +. f line.(8);
                let line' = Array.copy line in
                line'.(6) <- Value.Int (now_ts conn);
                Txn.update txn ~table:"orderline" ~rid line')
          rids;
        (d_id, order, !total))
      lines_of
  in
  let customer_hits =
    Txn.read_by_pk_multi txn
      (List.map
         (fun (d_id, order, _) ->
           pk_req "customer" [ Value.Int w_id; Value.Int d_id; order.(3) ])
         totals)
  in
  List.iter2
    (fun (_, _, total) hit ->
      match hit with
      | None -> raise (Row_missing "customer")
      | Some (c_rid, customer) ->
          let customer' = Array.copy customer in
          customer'.(15) <- Value.Float (f customer.(15) +. total);
          customer'.(18) <- Value.Int (i customer.(18) + 1);
          Txn.update txn ~table:"customer" ~rid:c_rid customer')
    totals customer_hits;
  Txn.commit txn;
  Engine_intf.Committed

(* --- STOCK-LEVEL (clause 2.8) ---------------------------------------------------------- *)

let stock_level _conn txn (input : Spec.stock_level_input) =
  let _, district =
    read_by_pk txn ~table:"district" [ Value.Int input.sl_w_id; Value.Int input.sl_d_id ]
  in
  let next_o = i district.(9) in
  let lo =
    Codec.encode_key [ Value.Int input.sl_w_id; Value.Int input.sl_d_id; Value.Int (max 1 (next_o - 20)) ]
  in
  let hi = Codec.encode_key [ Value.Int input.sl_w_id; Value.Int input.sl_d_id; Value.Int next_o ] in
  let lines = Txn.index_range txn ~index:(pk "orderline") ~lo ~hi in
  let rows = Txn.read_batch txn ~table:"orderline" ~rids:(List.map snd lines) in
  let item_ids = List.sort_uniq Int.compare (List.map (fun (_, line) -> i line.(4)) rows) in
  (* Fused batched point reads: one leaf round plus one record round for
     every stock of the district's last 20 orders (§5.1 batching), with
     the transaction's pending insertions merged like any other read. *)
  let stock_keys =
    List.map (fun i_id -> Codec.encode_key [ Value.Int input.sl_w_id; Value.Int i_id ]) item_ids
  in
  let stocks = Txn.read_by_pk_many txn ~table:"stock" ~index:(pk "stock") ~keys:stock_keys in
  let low = ref 0 in
  List.iter
    (function
      | Some (_, stock) when i stock.(2) < input.sl_threshold -> incr low
      | Some _ | None -> ())
    stocks;
  Txn.commit txn;
  Engine_intf.Committed

(* --- dispatch ---------------------------------------------------------------------------- *)

let execute conn input =
  let txn = Txn.begin_txn conn.pn in
  let abort_if_running () =
    if Txn.status txn = Txn.Running then try Txn.abort txn with _ -> ()
  in
  try
    match input with
    | Spec.New_order no -> new_order conn txn no
    | Spec.Payment p -> payment conn txn p
    | Spec.Order_status os -> order_status conn txn os
    | Spec.Delivery d -> delivery conn txn d
    | Spec.Stock_level sl -> stock_level conn txn sl
  with
  | Txn.Conflict reason ->
      abort_if_running ();
      Engine_intf.Aborted reason
  | Row_missing what ->
      abort_if_running ();
      Engine_intf.Aborted ("missing row: " ^ what)
