(** Asynchronous tail of the commit pipeline: a per-PN fiber that flags
    committed log entries with one [multi_write] and coalesces
    [set_committed]/[set_aborted] traffic from concurrent committers into
    one batched commit-manager RPC per flush window.  Correct under §4.2:
    a delayed decided-set only raises the abort rate.  Flag-first order
    per tid is preserved within a flush. *)

type t

val create :
  Tell_sim.Engine.t ->
  group:Tell_sim.Engine.Group.t ->
  kv:Tell_kv.Client.t ->
  flush_window_ns:int ->
  note:(ops:int -> int -> unit) ->
  t
(** Spawns the flush fiber in [group] (so a PN crash kills it, dropping
    any unflushed outcomes — exactly the window recovery handles).
    [note] receives each item's enqueue-to-flush latency in ns. *)

val enqueue :
  t -> cm:Commit_manager.t -> tid:int -> ?entry:Txlog.entry -> committed:bool -> unit -> unit
(** Record a transaction outcome.  [entry] (a read-write transaction's
    log entry) is flagged committed in the log before the commit manager
    is notified.  Never suspends. *)

val drain : t -> unit
(** Flush every outcome enqueued before the call; returns once they are
    flagged and the commit managers notified.  Suspends. *)

val pending : t -> int
val flushed : t -> int
