(** Asynchronous tail of the commit pipeline: a per-PN fiber that flags
    committed log entries with one [multi_write] and coalesces
    [set_committed]/[set_aborted] traffic from concurrent committers into
    one batched commit-manager RPC per flush window.  Correct under §4.2:
    a delayed decided-set only raises the abort rate.  Flag-first order
    per tid is preserved within a flush.

    Partition-tolerant: a window that cannot reach the store or a live
    commit manager is re-queued and re-flushed (flag writes and decisions
    are both idempotent), so outcomes survive transient link loss.  A
    flush refused with {!Tell_kv.Op.Fenced} means the owning PN was
    declared dead: the queue items are dropped — recovery owns them now —
    and [on_fenced] fires so the owner can stop. *)

type t

val create :
  Tell_sim.Engine.t ->
  group:Tell_sim.Engine.Group.t ->
  kv:Tell_kv.Client.t ->
  flush_window_ns:int ->
  ?on_fenced:(unit -> unit) ->
  note:(ops:int -> int -> unit) ->
  unit ->
  t
(** Spawns the flush fiber in [group] (so a PN crash kills it, dropping
    any unflushed outcomes — exactly the window recovery handles).
    [note] receives each item's enqueue-to-flush latency in ns;
    [on_fenced] fires (possibly more than once) when a flush bounces off
    the fence installed for this PN. *)

val enqueue :
  t ->
  cm:Commit_manager.t ->
  tid:int ->
  ?entry:Txlog.entry ->
  ?on_settled:(unit -> unit) ->
  committed:bool ->
  unit ->
  unit
(** Record a transaction outcome.  [entry] (a read-write transaction's
    log entry) is flagged committed in the log before the commit manager
    is notified.  [on_settled] fires — possibly more than once, so it
    must be idempotent — when the outcome no longer needs this node to be
    arbitrated correctly: the flag write landed, or a fence handed the
    queue to recovery.  Committers release their tid claim there; until
    then the claim shields the unflagged entry from the tid-range
    reclamation sweep, which would read it as an abort.  Never
    suspends. *)

val drain : t -> unit
(** Flush every outcome enqueued before the call; returns once they are
    flagged and the commit managers notified — or, if the owner was
    fenced meanwhile, once the queue has been discarded.  Suspends, and
    under a partition keeps retrying (consuming virtual time) until the
    links heal. *)

val discard : t -> unit
(** Drop every queued outcome without flushing.  Used when the owner is
    poisoned as a zombie: recovery has already decided these tids. *)

val pending : t -> int
val flushed : t -> int

val redelivered : t -> int
(** Items that went through at least one failed flush pass and were
    re-queued (lossy-link / partition diagnostics). *)
