(** Transaction-history capture for the SI anomaly checker (Elle-lite).

    A recorded history is the sequence of observable transaction events of
    one simulated run: the snapshot descriptor fetched at begin, every
    read with the record version it actually observed, every buffered
    write with the version it will install, the commit/abort decision, and
    any post-hoc revocation (recovery or the tid-reclamation sweep rolling
    an undecided transaction back).  [Tell_histcheck.Checker] rebuilds the
    direct serialization graph from such a history and classifies its
    cycles (Adya's G0/G1a/G1b/G1c, lost update, G-SI).

    Recording is {e opt-in} and globally scoped, mirroring
    {!Txn.set_commit_probe}: when no recorder is installed every hook is a
    single mutable-ref read, so the hot paths pay nothing in benchmark
    runs.  The hooks never suspend.  Install/uninstall around each harness
    run; histories from different runs must not be mixed (version numbers
    restart per cluster). *)

type event =
  | Begin of { tid : int; pn_id : int; snapshot : Version_set.t }
  | Read of { tid : int; key : string; version : int; intermediate : bool }
      (** [version] is the record version the read actually resolved to
          under the transaction's snapshot; [0] stands for both the
          bulk-load version and "no visible version" (absent record) —
          the two are indistinguishable to a snapshot and are treated as
          the initial version of the key.  [intermediate] is always
          [false] for recorded histories (only the final buffered payload
          of a transaction is ever applied); hand-built histories set it
          to model Adya's intermediate reads (G1b). *)
  | Write of { tid : int; key : string; version : int; tombstone : bool }
      (** The version this transaction installs on [key] if it commits
          ([version = tid] in recorded histories).  [tombstone] marks
          deletes: a tombstone that becomes the sole surviving version is
          garbage-collected together with its record, so a later read
          legitimately observes version 0 again. *)
  | Commit of { tid : int }
  | Abort of { tid : int }
  | Rolled_back of { tid : int }
      (** Recovery (or the tid-reclamation sweep) removed this
          transaction's versions and decided it aborted — overrides an
          earlier [Commit]: an acknowledged commit whose log flag never
          landed (its node died or was fenced first) is a ghost, and its
          writes are gone. *)
  | Node_event of { pn_id : int; what : string }
      (** Context marker ("crash", "poison") — ignored by the checker,
          kept in dumps to make them debuggable. *)

(** {1 Recording} *)

val start : unit -> unit
(** Install a fresh recorder (discarding any previous one). *)

val stop : unit -> event list
(** Uninstall the recorder and return the captured events in order;
    [[]] if none was installed. *)

val recording : unit -> bool

val note_begin : tid:int -> pn_id:int -> snapshot:Version_set.t -> unit
val note_read : tid:int -> key:string -> version:int -> unit
val note_write : tid:int -> key:string -> version:int -> tombstone:bool -> unit
val note_commit : tid:int -> unit
val note_abort : tid:int -> unit
val note_rolled_back : tid:int -> unit
val note_node : pn_id:int -> what:string -> unit

(** {1 Dump format}

    One event per line, keys quoted with [%S] — the format behind
    [tell_check --history-dump] and [bin/tell_histcheck.exe]. *)

val encode_line : event -> string

val decode_line : string -> event option
(** [None] on blank/comment ([#]) lines; raises [Failure] on garbage. *)
