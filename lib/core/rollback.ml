(* Removing a transaction's version from a stored record — the shared
   primitive of commit-time rollback (§4.3, 4b) and fail-over recovery
   (§4.4.1).  An LL/SC loop, because other transactions may be applying
   to the same record concurrently. *)

module Kv = Tell_kv

let max_attempts = 64

let rec remove_version kv ~key ~version ~attempts =
  if attempts <= 0 then invalid_arg "Rollback.remove_version: too many conflicts"
  else begin
    match Kv.Client.get kv key with
    | None -> ()
    | Some (data, token) -> (
        let record = Record.decode data in
        let record' = Record.remove_version record ~version in
        if Record.version_numbers record' = Record.version_numbers record then ()
        else begin
          let outcome =
            if Record.is_empty record' then Kv.Client.remove_if kv key (Some token)
            else
              match Kv.Client.put_if kv key (Some token) (Record.encode record') with
              | `Ok _ -> `Ok
              | `Conflict -> `Conflict
          in
          match outcome with
          | `Ok -> ()
          | `Conflict -> remove_version kv ~key ~version ~attempts:(attempts - 1)
        end)
  end

let remove_version kv ~key ~version =
  remove_version kv ~key ~version ~attempts:max_attempts
