(** Fail-over for processing nodes and commit managers (§4.4).

    Processing nodes are crash-stop: the management node starts a recovery
    process that discovers the failed node's in-flight transactions from
    the transaction log (bounded below by the lav, the rolling checkpoint)
    and rolls their partially applied updates back.  At most one recovery
    process runs at a time; a single process handles any number of failed
    nodes. *)

type t

val create : Tell_kv.Cluster.t -> cm:Commit_manager.t -> t

val recover_processing_nodes : t -> failed_pn_ids:int list -> unit
(** Roll back every logged, uncommitted transaction of the given nodes.
    The management node runs at most one recovery process at a time
    (§4.4.1): if one is already in progress, this call waits for it to
    finish before starting its own pass.

    The pass fences before it rolls back: the cluster epoch is bumped and
    each failed node's endpoint is barred from writing on every storage
    node, so a {e zombie} — a node declared dead through a partition that
    is in fact still running — cannot land writes into state this pass
    declares recovered ({!Tell_kv.Cluster.fence_senders}). *)

val recovered_txns : t -> int
(** Cumulative count of transactions rolled back by this process. *)

val fences_installed : t -> int
(** Cumulative count of PN endpoints fenced by recovery passes. *)

val replace_commit_manager :
  Tell_kv.Cluster.t -> dead:int -> fresh_id:int -> peers:int list -> Commit_manager.t
(** Stand up a replacement commit manager (§4.4.3), state restored from
    the published manager states and the transaction-log tail.  [dead]
    (when [>= 0]) names the commit-manager id being replaced: its old
    instance is fenced first, so if it was only partitioned — not dead —
    its next store write bounces and it self-fences instead of racing
    the replacement ([Commit_manager.was_fenced]). *)
