(** A processing node (PN): query processing + transaction management on
    top of the shared store (Figure 3).

    PNs are stateless with respect to the data: everything they cache
    (buffer pool, inner B+tree nodes, schemas, rid ranges) can be
    reconstructed from the store.  Each PN owns a CPU resource modelling
    its cores and a record-store client whose lanes batch its requests. *)

type cost_model = {
  cpu_per_read_ns : int;  (** local processing per record read *)
  cpu_per_write_ns : int;  (** local processing per buffered update *)
  cpu_per_commit_ns : int;  (** fixed commit-path processing *)
  cpu_per_statement_ns : int;  (** parse/plan overhead per SQL statement *)
}

val default_cost_model : cost_model

type t

val default_notify_flush_window_ns : int
(** Default notifier flush window (see DESIGN.md §3b for calibration). *)

val default_begin_window_ns : int
(** Default begin-coalescing window (see DESIGN.md §3b for calibration);
    [0] disables coalescing — every begin pays its own manager RPC. *)

val create :
  Tell_kv.Cluster.t ->
  id:int ->
  ?cores:int ->
  ?cost:cost_model ->
  ?buffer:Buffer_pool.strategy ->
  ?notify_flush_window_ns:int ->
  ?begin_window_ns:int ->
  commit_managers:Commit_manager.t list ->
  unit ->
  t

val id : t -> int
val group : t -> Tell_sim.Engine.Group.t
val kv : t -> Tell_kv.Client.t
val cluster : t -> Tell_kv.Cluster.t
val engine : t -> Tell_sim.Engine.t
val pool : t -> Buffer_pool.pool

val notifier : t -> Notifier.t
(** The asynchronous commit-notification fiber's queue: transactions
    enqueue their outcome here instead of flagging the log and calling
    the commit manager themselves. *)

val claim_tid : t -> int -> unit
val release_tid : t -> int -> unit

val claims : t -> tid:int -> bool
(** Whether a transaction with this tid is in flight on this node.
    Claimed between [Txn.begin_txn] and the commit/abort decision; the
    management node's tid-reclamation sweep leaves claimed tids alone. *)

val alive : t -> bool

val crash : t -> unit
(** Crash-stop (§4.4.1): all fibers of this PN are cancelled; in-flight
    transactions are left partially applied until recovery rolls them
    back. *)

val poison : t -> unit
(** Zombie termination: the node was declared dead while partitioned, so
    its epoch is fenced and recovery owns its in-flight work.  Discards
    undelivered commit notifications and kills every fiber; idempotent.
    Fires automatically when a notifier flush bounces off the fence, and
    is called by [Txn] when a commit bounces. *)

val was_fenced : t -> bool
(** True once {!poison} ran: this instance was fenced out, not merely
    crashed. *)

val endpoint : t -> string
(** This PN's link-endpoint name ("pn<id>") — the identity its writes
    carry on the simulated network. *)

val replace_commit_manager : t -> dead:Commit_manager.t -> fresh:Commit_manager.t -> unit
(** Point this PN at [fresh] wherever its routing table holds [dead]
    (physical equality: the replacement reuses the dead instance's id). *)

val charge : t -> int -> unit
(** Consume PN CPU time (from a fiber running on this PN). *)

val commit_phases : string list
(** The transaction pipeline's phase names: begin, read, log, apply,
    index, notify. *)

val commit_stats : t -> Tell_sim.Stats.Breakdown.t
(** Per-phase latency/operation breakdown of this PN's commit pipeline. *)

val note_commit_phase : t -> phase:string -> ?ops:int -> int -> unit
(** Record one latency sample (ns) for a commit phase. *)

val cost : t -> cost_model

val commit_manager : t -> Commit_manager.t
(** The manager this PN currently talks to; fails over to the next one
    when the current manager is dead (§4.4.3). *)

val begin_start : t -> Commit_manager.t * Commit_manager.start_reply
(** Start one transaction through the begin-window coalescer: concurrent
    callers on this PN within [begin_window_ns] share a single
    [Commit_manager.start_many] round trip.  Each caller gets a unique
    tid (already claimed on this node by the window's leader); the window
    shares the snapshot computed when the batched RPC was served — a
    delayed snapshot is correct under SI (§4.2).  With a window of [0]
    this is exactly [Commit_manager.start] plus the claim.  Raises
    whatever the underlying RPC raises (e.g. [Unavailable] when the
    manager crashed mid-window); on failure no tid was claimed. *)

val begin_stats : t -> int * int
(** [(begins, begin_rpcs)]: transactions started on this node and the
    manager start RPCs actually issued for them — the coalescing ratio. *)

val note_started_snapshot : t -> Version_set.t -> unit
val vmax : t -> Version_set.t
(** Snapshot of the most recently started transaction on this PN (§5.5.2). *)

val alloc_rid : t -> table:string -> int
(** Allocate a fresh record id from the table's shared counter (acquired
    in ranges, like tids). *)

val max_rid : t -> table:string -> int
(** Upper bound of allocated rids for a table (for sequential scans). *)

val btree : t -> index:string -> Btree.t
(** This PN's handle (with inner-node cache) for the named index. *)

val schema : t -> table:string -> Schema.table
(** Table descriptor, fetched from the store and cached. *)

val forget_schema : t -> table:string -> unit
