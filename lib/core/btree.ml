module Kv = Tell_kv

let max_leaf_entries = 64
let max_inner_entries = 64
let max_attempts = 64

(* Separators and high keys are full (key, rid) entries: attribute keys
   are not unique (secondary indexes), so routing must discriminate at
   entry granularity or duplicates of a separator key in the left sibling
   would become unreachable. *)
type entry = string * int

type node =
  | Leaf of { entries : entry array; high_key : entry option; next : int option }
  | Inner of {
      seps : entry array;
      children : int array;
      high_key : entry option;
      next : int option;
      level : int;  (* leaves are level 0; the root is the highest level *)
    }

type t = {
  kv : Kv.Client.t;
  name : string;
  inner_cache : (int, node) Hashtbl.t;
  decoded : (int, int * node) Hashtbl.t;
      (* node id -> (LL/SC token, decoded node): pure decode memoisation.
         The store fetch (network + server time) still happens on every
         access; only the wire-format parsing is skipped when the cell has
         not changed.  Nodes are immutable after decoding, so sharing is
         safe. *)
  mutable cached_root : int option;
}

let name t = t.name

exception Retry

(* --- node codec ------------------------------------------------------------ *)

let put_entry buf (key, rid) =
  Codec.put_string buf key;
  Codec.put_int buf rid

let get_entry s pos =
  let key, pos = Codec.get_string s pos in
  let rid, pos = Codec.get_int s pos in
  ((key, rid), pos)

let put_opt_entry buf = function
  | None -> Buffer.add_char buf '\x00'
  | Some e ->
      Buffer.add_char buf '\x01';
      put_entry buf e

let get_opt_entry s pos =
  match s.[pos] with
  | '\x00' -> (None, pos + 1)
  | _ -> (
      let e, pos = get_entry s (pos + 1) in
      (Some e, pos))

let put_opt_int buf = function None -> Codec.put_int buf (-1) | Some v -> Codec.put_int buf v

let get_opt_int s pos =
  let v, pos = Codec.get_int s pos in
  ((if v < 0 then None else Some v), pos)

let encode_node node =
  let buf = Buffer.create 256 in
  (match node with
  | Leaf { entries; high_key; next } ->
      Buffer.add_char buf 'L';
      put_opt_entry buf high_key;
      put_opt_int buf next;
      Codec.put_int buf (Array.length entries);
      Array.iter (put_entry buf) entries
  | Inner { seps; children; high_key; next; level } ->
      Buffer.add_char buf 'I';
      put_opt_entry buf high_key;
      put_opt_int buf next;
      Codec.put_int buf (Array.length seps);
      Array.iter (put_entry buf) seps;
      Array.iter (Codec.put_int buf) children;
      Codec.put_int buf level);
  Buffer.contents buf

let decode_node s =
  let tag = s.[0] in
  let high_key, pos = get_opt_entry s 1 in
  let next, pos = get_opt_int s pos in
  let n, pos = Codec.get_int s pos in
  match tag with
  | 'L' ->
      let pos = ref pos in
      let entries =
        Array.init n (fun _ ->
            let e, p = get_entry s !pos in
            pos := p;
            e)
      in
      Leaf { entries; high_key; next }
  | 'I' ->
      let pos = ref pos in
      let seps =
        Array.init n (fun _ ->
            let e, p = get_entry s !pos in
            pos := p;
            e)
      in
      let children =
        Array.init (n + 1) (fun _ ->
            let c, p = Codec.get_int s !pos in
            pos := p;
            c)
      in
      let level, _ = Codec.get_int s !pos in
      Inner { seps; children; high_key; next; level }
  | c -> invalid_arg (Printf.sprintf "Btree.decode_node: bad tag %C" c)

(* --- store access ----------------------------------------------------------- *)

let node_key t id = Keys.index_node ~index:t.name ~node_id:id
let root_key t = Keys.index_root ~index:t.name

let alloc_node_id t = Kv.Client.increment t.kv (Keys.index_node_counter ~index:t.name) 1

let decoded_cache_cap = 8_192

let load_node t id =
  match Kv.Client.get t.kv (node_key t id) with
  | Some (data, token) -> (
      match Hashtbl.find_opt t.decoded id with
      | Some (cached_token, node) when cached_token = token -> (node, token)
      | _ ->
          let node = decode_node data in
          if Hashtbl.length t.decoded >= decoded_cache_cap then Hashtbl.reset t.decoded;
          Hashtbl.replace t.decoded id (token, node);
          (node, token))
  | None -> raise Retry

let store_new_node t node =
  let id = alloc_node_id t in
  match Kv.Client.put_if t.kv (node_key t id) None (encode_node node) with
  | `Ok _ -> id
  | `Conflict -> invalid_arg "Btree: fresh node id already taken"

let cas_node t id ~token node =
  match Kv.Client.put_if t.kv (node_key t id) (Some token) (encode_node node) with
  | `Ok _ -> true
  | `Conflict -> false

let drop_node t id = ignore (Kv.Client.remove_if t.kv (node_key t id) None)

let root_id t =
  match t.cached_root with
  | Some id -> id
  | None -> (
      match Kv.Client.get t.kv (root_key t) with
      | Some (data, _) ->
          let id, _ = Codec.get_int data 0 in
          t.cached_root <- Some id;
          id
      | None -> invalid_arg (Printf.sprintf "Btree %s: not initialised" t.name))

let encode_root id =
  let buf = Buffer.create 8 in
  Codec.put_int buf id;
  Buffer.contents buf

let create kv ~name =
  let t =
    { kv; name; inner_cache = Hashtbl.create 64; decoded = Hashtbl.create 256; cached_root = None }
  in
  match Kv.Client.get kv (root_key t) with
  | Some _ -> ()
  | None -> (
      let leaf_id = store_new_node t (Leaf { entries = [||]; high_key = None; next = None }) in
      match Kv.Client.put_if kv (root_key t) None (encode_root leaf_id) with
      | `Ok _ -> ()
      | `Conflict ->
          (* Another node initialised concurrently; ours becomes garbage. *)
          drop_node t leaf_id)

let attach kv ~name =
  { kv; name; inner_cache = Hashtbl.create 64; decoded = Hashtbl.create 256; cached_root = None }

let invalidate_cache t =
  Hashtbl.reset t.inner_cache;
  t.cached_root <- None

let cache_size t = Hashtbl.length t.inner_cache

(* --- traversal --------------------------------------------------------------- *)

let below_high key = function None -> true | Some high -> key < high

let child_for_key seps children key =
  let rec scan i = if i >= Array.length seps then children.(i) else if key < seps.(i) then children.(i) else scan (i + 1) in
  scan 0

(* Load an inner node through the PN cache (§5.3.1: all levels but the
   leaves are cached). *)
let load_inner_cached t id =
  match Hashtbl.find_opt t.inner_cache id with
  | Some node -> node
  | None ->
      let node, _token = load_node t id in
      (match node with Inner _ -> Hashtbl.replace t.inner_cache id node | Leaf _ -> ());
      node

(* Descend to the leaf responsible for [key], returning the fresh leaf and
   the path of inner node ids (root first).  Any inconsistency between the
   cached path and reality (split leaf, dangling id) invalidates the cache
   and restarts from a fresh root. *)
let rec descend t key =
  try
    let fetch_leaf id path =
      (* Leaves are never served from cache: fetch fresh. *)
      let node, token = load_node t id in
      match node with
      | Leaf _ -> (id, node, token, path)
      | Inner _ ->
          (* The node became inner through a concurrent reorganisation. *)
          raise Retry
    in
    let rec walk id path =
      match load_inner_cached t id with
      | Inner { seps; children; high_key; next; level } ->
          if not (below_high key high_key) then begin
            match next with
            | Some n -> walk n path
            | None -> raise Retry
          end
          else
            let child = child_for_key seps children key in
            (* Level 1 parents point straight at leaves: no need to load
               the child just to learn it is one. *)
            if level = 1 then fetch_leaf child (id :: path) else walk child (id :: path)
      | Leaf _ -> fetch_leaf id path
    in
    walk (root_id t) []
  with Retry ->
    invalidate_cache t;
    descend t key

let node_bounds = function
  | Leaf { high_key; next; _ } -> (high_key, next)
  | Inner { high_key; next; _ } -> (high_key, next)

(* B-link right-walk until the node's range covers [key] — used both at
   the leaf level and when locating the inner node responsible for a new
   separator (the parent may itself have split concurrently). *)
let rec slide_right t key (id, node, token) =
  let high_key, next = node_bounds node in
  if below_high key high_key then (id, node, token)
  else begin
    match next with
    | Some n ->
        let node', token' = load_node t n in
        slide_right t key (n, node', token')
    | None -> (id, node, token)
  end

let locate_leaf t target =
  let id, node, token, path = descend t target in
  let id', node', token' = slide_right t target (id, node, token) in
  if id' <> id then invalidate_cache t;
  (id', node', token', path)

(* --- insertion ----------------------------------------------------------------- *)

let insert_entry entries key rid =
  let cmp (k1, r1) (k2, r2) =
    match String.compare k1 k2 with 0 -> Int.compare r1 r2 | c -> c
  in
  let lst = Array.to_list entries in
  if List.exists (fun e -> cmp e (key, rid) = 0) lst then entries
  else Array.of_list (List.sort cmp ((key, rid) :: lst))

let remove_entry entries key rid =
  Array.of_list (List.filter (fun (k, r) -> not (k = key && r = rid)) (Array.to_list entries))

let split_point n = n / 2

(* Insert separator [sep] (pointing at [right_id]) into the parent level.
   [path] is the remaining ancestor chain, nearest parent first. *)
let rec insert_sep t ~attempts ~child_level ~sep ~right_id path =
  if attempts <= 0 then invalid_arg "Btree.insert_sep: too many conflicts";
  match path with
  | [] ->
      (* Splitting the root: build a fresh root above the two halves. *)
      let old_root = root_id t in
      let new_root =
        store_new_node t
          (Inner
             {
               seps = [| sep |];
               children = [| old_root; right_id |];
               high_key = None;
               next = None;
               level = child_level + 1;
             })
      in
      (match Kv.Client.get t.kv (root_key t) with
      | Some (data, token) ->
          let current, _ = Codec.get_int data 0 in
          if current <> old_root then begin
            (* Someone else already grew the tree: retry from scratch. *)
            drop_node t new_root;
            invalidate_cache t;
            insert_sep t ~attempts:(attempts - 1) ~child_level ~sep ~right_id (ancestors_of t sep)
          end
          else if Kv.Client.put_if t.kv (root_key t) (Some token) (encode_root new_root) = `Conflict
          then begin
            drop_node t new_root;
            invalidate_cache t;
            insert_sep t ~attempts:(attempts - 1) ~child_level ~sep ~right_id (ancestors_of t sep)
          end
          else invalidate_cache t
      | None -> invalid_arg "Btree: root pointer vanished")
  | parent_id :: rest -> (
      (* Fetch the parent fresh (the cache may be stale) and right-walk to
         the inner node now responsible for [sep]. *)
      match
        let node, token = load_node t parent_id in
        slide_right t sep (parent_id, node, token)
      with
      | exception Retry ->
          invalidate_cache t;
          insert_sep t ~attempts:(attempts - 1) ~child_level ~sep ~right_id (ancestors_of t sep)
      | id, Inner { seps; children; high_key; next; level }, token ->
          if Array.exists (fun s -> s = sep) seps then ()
          else begin
            let pos =
              let rec scan i = if i >= Array.length seps || sep < seps.(i) then i else scan (i + 1) in
              scan 0
            in
            let seps' =
              Array.concat [ Array.sub seps 0 pos; [| sep |]; Array.sub seps pos (Array.length seps - pos) ]
            in
            let children' =
              Array.concat
                [
                  Array.sub children 0 (pos + 1);
                  [| right_id |];
                  Array.sub children (pos + 1) (Array.length children - pos - 1);
                ]
            in
            if Array.length seps' <= max_inner_entries then begin
              if
                cas_node t id ~token
                  (Inner { seps = seps'; children = children'; high_key; next; level })
              then Hashtbl.remove t.inner_cache id
              else insert_sep t ~attempts:(attempts - 1) ~child_level ~sep ~right_id (id :: rest)
            end
            else begin
              (* Split this inner node, then recurse one level up. *)
              let mid = split_point (Array.length seps') in
              let up_sep = seps'.(mid) in
              let left_seps = Array.sub seps' 0 mid in
              let right_seps = Array.sub seps' (mid + 1) (Array.length seps' - mid - 1) in
              let left_children = Array.sub children' 0 (mid + 1) in
              let right_children = Array.sub children' (mid + 1) (Array.length children' - mid - 1) in
              let new_right =
                store_new_node t
                  (Inner { seps = right_seps; children = right_children; high_key; next; level })
              in
              let left =
                Inner
                  {
                    seps = left_seps;
                    children = left_children;
                    high_key = Some up_sep;
                    next = Some new_right;
                    level;
                  }
              in
              if cas_node t id ~token left then begin
                Hashtbl.remove t.inner_cache id;
                insert_sep t ~attempts:(attempts - 1) ~child_level:level ~sep:up_sep
                  ~right_id:new_right rest
              end
              else begin
                drop_node t new_right;
                insert_sep t ~attempts:(attempts - 1) ~child_level ~sep ~right_id (id :: rest)
              end
            end
          end
      | _, Leaf _, _ -> invalid_arg "Btree.insert_sep: leaf in ancestor chain")

and ancestors_of t key =
  let _, _, _, path = descend t key in
  path

let rec insert_aux t ~attempts ~key ~rid =
  if attempts <= 0 then invalid_arg "Btree.insert: too many conflicts";
  let id, node, token, path = locate_leaf t (key, rid) in
  match node with
  | Inner _ -> insert_aux t ~attempts:(attempts - 1) ~key ~rid
  | Leaf { entries; high_key; next } ->
      let entries' = insert_entry entries key rid in
      if entries' == entries then ()
      else if Array.length entries' <= max_leaf_entries then begin
        if not (cas_node t id ~token (Leaf { entries = entries'; high_key; next })) then
          insert_aux t ~attempts:(attempts - 1) ~key ~rid
      end
      else begin
        let mid = split_point (Array.length entries') in
        let right_entries = Array.sub entries' mid (Array.length entries' - mid) in
        let sep = right_entries.(0) in
        let right_id = store_new_node t (Leaf { entries = right_entries; high_key; next }) in
        let left = Leaf { entries = Array.sub entries' 0 mid; high_key = Some sep; next = Some right_id } in
        if cas_node t id ~token left then
          insert_sep t ~attempts:max_attempts ~child_level:0 ~sep ~right_id path
        else begin
          drop_node t right_id;
          insert_aux t ~attempts:(attempts - 1) ~key ~rid
        end
      end

let insert t ~key ~rid = insert_aux t ~attempts:max_attempts ~key ~rid

let rec remove_aux t ~attempts ~key ~rid =
  if attempts <= 0 then invalid_arg "Btree.remove: too many conflicts";
  let id, node, token, _path = locate_leaf t (key, rid) in
  match node with
  | Inner _ -> remove_aux t ~attempts:(attempts - 1) ~key ~rid
  | Leaf { entries; high_key; next } ->
      let entries' = remove_entry entries key rid in
      if Array.length entries' = Array.length entries then ()
      else if not (cas_node t id ~token (Leaf { entries = entries'; high_key; next })) then
        remove_aux t ~attempts:(attempts - 1) ~key ~rid

let remove t ~key ~rid = remove_aux t ~attempts:max_attempts ~key ~rid

(* --- scans ------------------------------------------------------------------ *)

let rec collect_range t ~hi ~limit acc (node : node) =
  match node with
  | Inner _ -> invalid_arg "Btree.collect_range: inner node at leaf level"
  | Leaf { entries; high_key; next; _ } ->
      let acc =
        Array.fold_left
          (fun acc (k, rid) -> if k < hi then (k, rid) :: acc else acc)
          acc entries
      in
      let enough = limit > 0 && List.length acc >= limit in
      let continue_right =
        (not enough) && (match high_key with Some (hk, _) -> hk < hi | None -> false)
      in
      if continue_right then begin
        match next with
        | Some n ->
            let node', _ = load_node t n in
            collect_range t ~hi ~limit acc node'
        | None -> acc
      end
      else acc

let range_limit t ~lo ~hi ~limit =
  if hi <= lo then []
  else begin
    let _, node, _, _ = locate_leaf t (lo, min_int) in
    let all = List.rev (collect_range t ~hi ~limit [] node) in
    let filtered = List.filter (fun (k, _) -> k >= lo) all in
    if limit > 0 then List.filteri (fun i _ -> i < limit) filtered else filtered
  end

let range t ~lo ~hi = range_limit t ~lo ~hi ~limit:0

let lookup t ~key =
  List.map snd (range t ~lo:key ~hi:(key ^ "\x00"))

(* Route [target] to its leaf id using cached inner nodes only (inner
   levels are fetched at most once each, §5.3.1). *)
let rec leaf_id_for t target id =
  match load_inner_cached t id with
  | Inner { seps; children; high_key; next; level } ->
      if not (below_high target high_key) then begin
        match next with Some n -> leaf_id_for t target n | None -> raise Retry
      end
      else
        let child = child_for_key seps children target in
        (* Level 1 parents point straight at leaves: route without
           fetching the leaf (the caller batch-fetches it). *)
        if level = 1 then child else leaf_id_for t target child
  | Leaf _ -> id

let memo_node t id ~data ~token =
  match Hashtbl.find_opt t.decoded id with
  | Some (cached_token, node) when cached_token = token -> node
  | _ ->
      let node = decode_node data in
      Hashtbl.replace t.decoded id (token, node);
      node

let shared_kv = function
  | [] -> None
  | (t, _) :: rest ->
      List.iter
        (fun (t', _) ->
          if t'.kv != t.kv then invalid_arg "Btree: batched groups must share one store client")
        rest;
      Some t.kv

let lookup_many_grouped groups =
  match shared_kv groups with
  | None -> []
  | Some kv ->
      (* Route every key of every tree to its leaf through the cached
         inner levels; a routing failure falls back to the slow path. *)
      let routed_groups =
        List.map
          (fun (t, keys) ->
            ( t,
              List.map
                (fun key ->
                  match leaf_id_for t (key, min_int) (root_id t) with
                  | id -> (key, Some id)
                  | exception Retry -> (key, None))
                keys ))
          groups
      in
      (* One multi-get covering every routed leaf of every tree (store
         keys are distinct across trees: the index name is part of the
         node key). *)
      let to_fetch =
        let seen = Hashtbl.create 16 in
        List.concat_map
          (fun (t, routed) ->
            List.filter_map
              (fun (_, id) ->
                match id with
                | Some id ->
                    let k = node_key t id in
                    if Hashtbl.mem seen k then None
                    else begin
                      Hashtbl.replace seen k ();
                      Some (t, id)
                    end
                | None -> None)
              routed)
          routed_groups
      in
      let cells = Kv.Client.multi_get kv (List.map (fun (t, id) -> node_key t id) to_fetch) in
      let leaves = Hashtbl.create 16 in
      List.iter2
        (fun (t, id) cell ->
          match cell with
          | Some (data, token) -> Hashtbl.replace leaves (node_key t id) (memo_node t id ~data ~token)
          | None -> ())
        to_fetch cells;
      List.map
        (fun (t, routed) ->
          List.map
            (fun (key, leaf_id) ->
              let fast =
                match leaf_id with
                | None -> None
                | Some id -> (
                    match Hashtbl.find_opt leaves (node_key t id) with
                    | Some (Leaf { entries; high_key; _ })
                      when below_high (key ^ "\x00", min_int) high_key ->
                        (* The whole [key, key^\x00) range lies in this
                           leaf: the batched copy is authoritative. *)
                        Some
                          (Array.to_list entries
                          |> List.filter_map (fun (k, rid) -> if k = key then Some rid else None))
                    | Some (Leaf _) | Some (Inner _) | None -> None)
              in
              match fast with
              | Some rids -> (key, rids)
              | None ->
                  (* Stale cache, duplicate run spilling into the next
                     leaf, or a routing miss: authoritative slow path. *)
                  (key, lookup t ~key))
            routed)
        routed_groups

let lookup_many t ~keys =
  match lookup_many_grouped [ (t, keys) ] with
  | [ results ] -> results
  | _ -> List.map (fun key -> (key, lookup t ~key)) keys

(* --- batched maintenance ------------------------------------------------------ *)

(* Batched inserts/removals (§5.1 batching applied to index maintenance):
   route every entry through the cached inner levels, fetch all target
   leaves with one multi-get, apply one LL/SC conditional write per leaf,
   and retry only the entries whose leaf went stale, conflicted, or would
   split.  Groups for several trees attached to the same store client
   share the two batched round trips, so a commit touching N index
   entries across K trees costs ~2 round trips instead of N full
   traversals.  A leaf that overflows is split in place (all of the
   batch's entries installed across the two halves at once); the cached
   inner path is only invalidated when routing was actually stale, never
   on a plain store-conditional conflict. *)

type batch_op = Add of entry | Del of entry

let batch_target = function Add e | Del e -> e

let apply_single t = function
  | Add (key, rid) -> insert_aux t ~attempts:max_attempts ~key ~rid
  | Del (key, rid) -> remove_aux t ~attempts:max_attempts ~key ~rid

let apply_ops_to_entries entries ops =
  List.fold_left
    (fun es op ->
      match op with
      | Add (key, rid) -> insert_entry es key rid
      | Del (key, rid) -> remove_entry es key rid)
    entries ops

(* Split an overflowing leaf, installing all merged entries at once: CAS
   the left half over the old cell, store the right half as a fresh node,
   and push the separator into the ancestors.  Returns [false] when the
   CAS lost (the caller re-routes the batch). *)
let split_leaf t id ~token entries' ~high_key ~next =
  let mid = split_point (Array.length entries') in
  let right_entries = Array.sub entries' mid (Array.length entries' - mid) in
  let sep = right_entries.(0) in
  let right_id = store_new_node t (Leaf { entries = right_entries; high_key; next }) in
  let left =
    Leaf { entries = Array.sub entries' 0 mid; high_key = Some sep; next = Some right_id }
  in
  Hashtbl.remove t.decoded id;
  if cas_node t id ~token left then begin
    insert_sep t ~attempts:max_attempts ~child_level:0 ~sep ~right_id (ancestors_of t sep);
    true
  end
  else begin
    drop_node t right_id;
    false
  end

let batch_rounds = 4

let rec batch_round ~rounds groups =
  match List.filter (fun (_, ops) -> ops <> []) groups with
  | [] -> ()
  | groups when rounds <= 0 ->
      List.iter (fun (t, ops) -> List.iter (apply_single t) ops) groups
  | groups -> (
      match shared_kv groups with
      | None -> ()
      | Some kv ->
          (* Route every op to a leaf through the cached inner levels; a
             routing failure marks the tree's cached path as stale. *)
          let work =
            List.map
              (fun (t, ops) ->
                let by_leaf = Hashtbl.create 8 in
                let miss = ref [] in
                List.iter
                  (fun op ->
                    match leaf_id_for t (batch_target op) (root_id t) with
                    | id ->
                        Hashtbl.replace by_leaf id
                          (op :: Option.value ~default:[] (Hashtbl.find_opt by_leaf id))
                    | exception Retry -> miss := op :: !miss)
                  ops;
                let retry = ref (List.rev !miss) in
                let stale = ref (!miss <> []) in
                (t, by_leaf, retry, stale))
              groups
          in
          (* One multi-get for every target leaf of every tree. *)
          let items =
            List.concat_map
              (fun (t, by_leaf, retry, stale) ->
                Hashtbl.fold
                  (fun id ops acc -> (t, id, List.rev ops, retry, stale) :: acc)
                  by_leaf [])
              work
          in
          let cells = Kv.Client.multi_get kv (List.map (fun (t, id, _, _, _) -> node_key t id) items) in
          let cas_jobs = ref [] in
          let split_jobs = ref [] in
          List.iter2
            (fun (t, id, leaf_ops, retry, stale) cell ->
              match cell with
              | None ->
                  stale := true;
                  retry := !retry @ leaf_ops
              | Some (data, token) -> (
                  match memo_node t id ~data ~token with
                  | Inner _ ->
                      stale := true;
                      retry := !retry @ leaf_ops
                  | Leaf { entries; high_key; next } ->
                      (* The routed leaf may have split since the cache
                         was filled: ops beyond its high key belong to a
                         right sibling and must be re-routed. *)
                      let fits, beyond =
                        List.partition (fun op -> below_high (batch_target op) high_key) leaf_ops
                      in
                      if beyond <> [] then begin
                        stale := true;
                        retry := !retry @ beyond
                      end;
                      if fits <> [] then begin
                        let entries' = apply_ops_to_entries entries fits in
                        if entries' == entries || entries' = entries then ()
                        else if Array.length entries' <= max_leaf_entries then
                          cas_jobs :=
                            ( t, id, fits,
                              Leaf { entries = entries'; high_key; next },
                              Kv.Op.Put_if
                                ( node_key t id, Some token,
                                  encode_node (Leaf { entries = entries'; high_key; next }) ) )
                            :: !cas_jobs
                        else if Array.length entries' <= 2 * max_leaf_entries then
                          split_jobs := (t, id, token, entries', high_key, next, fits, retry) :: !split_jobs
                        else
                          (* A degenerate bulk load into one leaf: the
                             per-entry path splits as often as needed. *)
                          List.iter (apply_single t) fits
                      end))
            items cells;
          (* One conditional multi-write covering every tree's leaves. *)
          (match List.rev !cas_jobs with
          | [] -> ()
          | jobs ->
              let results = Kv.Client.multi_write kv (List.map (fun (_, _, _, _, op) -> op) jobs) in
              List.iter2
                (fun (t, id, leaf_ops, node', _) result ->
                  match result with
                  | Kv.Op.Token token -> Hashtbl.replace t.decoded id (token, node')
                  | _ ->
                      (* Lost the LL/SC race: the routing is usually still
                         valid, so only the leaf is re-fetched next round. *)
                      Hashtbl.remove t.decoded id;
                      let retry =
                        let (_, _, _, r, _) =
                          List.find (fun (t', id', _, _, _) -> t' == t && id' = id) items
                        in
                        r
                      in
                      retry := !retry @ leaf_ops)
                jobs results);
          List.iter
            (fun (t, id, token, entries', high_key, next, fits, retry) ->
              if not (split_leaf t id ~token entries' ~high_key ~next) then retry := !retry @ fits)
            (List.rev !split_jobs);
          List.iter (fun (t, _, _, stale) -> if !stale then invalidate_cache t) work;
          batch_round ~rounds:(rounds - 1)
            (List.map (fun (t, _, retry, _) -> (t, !retry)) work))

let insert_many_grouped groups =
  batch_round ~rounds:batch_rounds
    (List.map (fun (t, entries) -> (t, List.map (fun e -> Add e) entries)) groups)

let insert_many t ~entries = insert_many_grouped [ (t, entries) ]

let remove_many t ~entries =
  batch_round ~rounds:batch_rounds [ (t, List.map (fun e -> Del e) entries) ]

(* --- bulk construction --------------------------------------------------------- *)

(* Chop [items] into chunks of at most [size], at least half-full where
   possible (the last two chunks are rebalanced). *)
let chunk ~size items =
  let rec go acc current n = function
    | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
    | item :: rest ->
        if n = size then go (List.rev current :: acc) [ item ] 1 rest
        else go acc (item :: current) (n + 1) rest
  in
  go [] [] 0 items

let bulk_cells ~name ~entries =
  let entries =
    List.sort_uniq
      (fun (k1, r1) (k2, r2) ->
        match String.compare k1 k2 with 0 -> Int.compare r1 r2 | c -> c)
      entries
  in
  let next_id = ref 0 in
  let alloc () =
    incr next_id;
    !next_id
  in
  let cells = ref [] in
  let emit id node = cells := (Keys.index_node ~index:name ~node_id:id, encode_node node) :: !cells in
  (* Build one level of leaves; returns (first entry, node id) per node. *)
  let first_of group = match group with e :: _ -> e | [] -> ("", 0) in
  let build_leaves entries =
    let groups = chunk ~size:(max_leaf_entries / 2 * 3 / 2) entries in
    let ids = List.map (fun group -> (alloc (), group)) groups in
    let rec link = function
      | [] -> []
      | [ (id, group) ] ->
          emit id (Leaf { entries = Array.of_list group; high_key = None; next = None });
          [ (first_of group, id) ]
      | (id, group) :: ((next_id_, next_group) :: _ as rest) ->
          emit id
            (Leaf
               { entries = Array.of_list group; high_key = Some (first_of next_group); next = Some next_id_ });
          (first_of group, id) :: link rest
    in
    link ids
  in
  let rec build_inner ~level children =
    (* children: (first entry, node id), in order. *)
    match children with
    | [] -> assert false
    | [ (_, id) ] -> id
    | _ :: _ ->
        let groups = chunk ~size:(max_inner_entries / 2 * 3 / 2) children in
        let ids = List.map (fun group -> (alloc (), group)) groups in
        let rec link = function
          | [] -> []
          | [ (id, group) ] ->
              let seps = List.filteri (fun i _ -> i > 0) (List.map fst group) in
              emit id
                (Inner
                   {
                     seps = Array.of_list seps;
                     children = Array.of_list (List.map snd group);
                     high_key = None;
                     next = None;
                     level;
                   });
              [ (first_of (List.map fst group), id) ]
          | (id, group) :: ((next_id_, next_group) :: _ as rest) ->
              let seps = List.filteri (fun i _ -> i > 0) (List.map fst group) in
              emit id
                (Inner
                   {
                     seps = Array.of_list seps;
                     children = Array.of_list (List.map snd group);
                     high_key = Some (first_of (List.map fst next_group));
                     next = Some next_id_;
                     level;
                   });
              (first_of (List.map fst group), id) :: link rest
        in
        build_inner ~level:(level + 1) (link ids)
  in
  let root =
    match entries with
    | [] ->
        let id = alloc () in
        emit id (Leaf { entries = [||]; high_key = None; next = None });
        id
    | _ :: _ -> build_inner ~level:1 (build_leaves entries)
  in
  let root_cell =
    let buf = Stdlib.Buffer.create 8 in
    Codec.put_int buf root;
    (Keys.index_root ~index:name, Stdlib.Buffer.contents buf)
  in
  let counter_cell =
    (Keys.index_node_counter ~index:name, Tell_kv.Storage_node.encode_counter !next_id)
  in
  root_cell :: counter_cell :: !cells

(* --- invariants (check-harness / test hook) ----------------------------------- *)

let check t =
  let violations = ref [] in
  let note id fmt =
    Printf.ksprintf
      (fun s -> violations := Printf.sprintf "%s node %d: %s" (name t) id s :: !violations)
      fmt
  in
  let pp (key, rid) = Printf.sprintf "(%S,%d)" key rid in
  let rec check_node id ~lo ~hi ~depth =
    let node, _ = load_node t id in
    match node with
    | Leaf { entries; high_key; _ } ->
        (match depth with
        | Some d when d <> 0 -> note id "leaf at level %d (expected 0)" d
        | _ -> ());
        Array.iteri
          (fun i e ->
            (match lo with
            | Some l when e < l -> note id "entry %s below lower bound %s" (pp e) (pp l)
            | _ -> ());
            (match hi with
            | Some h when e >= h -> note id "entry %s above upper bound %s" (pp e) (pp h)
            | _ -> ());
            (match high_key with
            | Some h when e >= h -> note id "entry %s above high key %s" (pp e) (pp h)
            | _ -> ());
            if i > 0 && not (entries.(i - 1) <= e) then
              note id "entries out of order: %s before %s" (pp entries.(i - 1)) (pp e))
          entries
    | Inner { seps; children; level; _ } ->
        (match depth with
        | Some d when d <> level -> note id "level tag %d (expected %d)" level d
        | _ -> ());
        if level < 1 then note id "inner node at level %d" level;
        if Array.length children <> Array.length seps + 1 then
          note id "%d children for %d separators" (Array.length children) (Array.length seps);
        Array.iteri
          (fun i s ->
            if i > 0 && not (seps.(i - 1) < s) then
              note id "separators out of order: %s before %s" (pp seps.(i - 1)) (pp s))
          seps;
        Array.iteri
          (fun i child ->
            if i <= Array.length seps then begin
              let lo' = if i = 0 then lo else Some seps.(i - 1) in
              let hi' = if i >= Array.length seps then hi else Some seps.(i) in
              check_node child ~lo:lo' ~hi:hi' ~depth:(Some (level - 1))
            end)
          children
  in
  check_node (root_id t) ~lo:None ~hi:None ~depth:None;
  List.rev !violations

let check_invariants t =
  match check t with
  | [] -> ()
  | violations -> invalid_arg ("Btree.check_invariants: " ^ String.concat "; " violations)
