(* Fail-over for processing nodes and commit managers (§4.4).

   Processing nodes are crash-stop: when the management node detects a PN
   failure it starts a recovery process that discovers the failed node's
   in-flight transactions from the transaction log and rolls their
   partially applied updates back.  The lowest active version number acts
   as a rolling checkpoint: log entries below it cannot belong to an
   active transaction.

   A failure "detected" through a network partition may be false: the
   node can still be alive behind the cut, writing.  Recovery therefore
   fences before it rolls back — it bumps the cluster epoch and installs
   the failed nodes' endpoints as fenced on every storage node, so any
   write a zombie still lands after the fence bounces.  Only then is it
   sound to treat the log scan as covering everything the node did.

   The management node guarantees at most one recovery process at a time;
   a single process can handle several failed nodes (§4.4.1). *)

module Sim = Tell_sim
module Kv = Tell_kv

type t = {
  engine : Sim.Engine.t;
  cluster : Kv.Cluster.t;
  kv : Kv.Client.t;
  cm : Commit_manager.t;
  lock : Sim.Mutex.t;  (* at most one recovery pass at a time (§4.4.1) *)
  mutable recovered_txns : int;
  mutable fences_installed : int;
}

let create cluster ~cm =
  let group = Kv.Cluster.mgmt_group cluster in
  let engine = Kv.Cluster.engine cluster in
  {
    engine;
    cluster;
    kv = Kv.Client.create cluster ~group;
    cm;
    lock = Sim.Mutex.create engine;
    recovered_txns = 0;
    fences_installed = 0;
  }

let recovered_txns t = t.recovered_txns
let fences_installed t = t.fences_installed

(* Roll back one logged, uncommitted transaction: remove its version from
   every record in the write set, then report the abort so snapshots can
   advance past its tid. *)
let roll_back t (entry : Txlog.entry) =
  List.iter (fun key -> Rollback.remove_version t.kv ~key ~version:entry.tid) entry.write_set;
  History.note_rolled_back ~tid:entry.tid;
  Txlog.append t.kv { entry with committed = false };
  (try Commit_manager.set_aborted t.cm ~tid:entry.tid ()
   with Kv.Op.Unavailable _ -> ());
  t.recovered_txns <- t.recovered_txns + 1

(* Recover every uncommitted transaction of the given failed processing
   nodes.  Scans the log tail backwards from the highest known tid down to
   the lav (§4.4.1). *)
let recover_processing_nodes t ~failed_pn_ids =
  (* The management node runs at most one recovery process at a time
     (§4.4.1); a second request queues behind the current pass.  Waiting
     matters under degraded networks: a pass can spend milliseconds in
     client retries, and the caller's failed nodes may not be the ones the
     running pass was started for. *)
  Sim.Mutex.with_lock t.lock (fun () ->
      (* Fence first (zombie protection): bump the epoch and refuse, on
         every storage node, further writes carrying the failed nodes'
         old epochs.  The log scan below is only complete if nothing can
         land after it starts — a falsely-suspected node behind a
         partition would otherwise keep writing into state we are about
         to declare rolled back. *)
      (match failed_pn_ids with
      | [] -> ()
      | ids ->
          ignore
            (Kv.Cluster.fence_senders t.cluster
               ~senders:(List.map (Printf.sprintf "pn%d") ids));
          t.fences_installed <- t.fences_installed + List.length ids);
      let lav = Commit_manager.current_lav t.cm in
      let entries = Txlog.scan t.kv ~min_tid:lav in
      let entries = List.sort (fun (a : Txlog.entry) b -> Int.compare b.tid a.tid) entries in
      List.iter
        (fun (entry : Txlog.entry) ->
          if List.mem entry.pn_id failed_pn_ids then
            if not entry.committed then roll_back t entry
            else
              (* The entry is flagged but the PN may have died before its
                 notifier reported the commit.  Re-deliver it so the tid
                 does not linger in the manager's active set and wedge
                 the lav ([set_committed] is idempotent). *)
              try Commit_manager.set_committed t.cm ~tid:entry.tid ()
              with Kv.Op.Unavailable _ -> ())
        entries)

(* Stand up a replacement commit manager (§4.4.3): restore its state from
   the published peer states and the transaction-log tail.  The dead
   instance is fenced first: if it is not dead but partitioned, its next
   store write (range refill, state publication) bounces and it
   self-fences, so two managers never serve the same identity. *)
let replace_commit_manager cluster ~dead ~fresh_id ~peers =
  if dead >= 0 then
    ignore
      (Kv.Cluster.fence_senders cluster ~senders:[ Printf.sprintf "cm%d" dead ]);
  let cm = Commit_manager.create cluster ~id:fresh_id ~peers () in
  (* If log recovery trips over a concurrent storage fail-over
     (Unavailable after retries), tear the half-recovered instance down —
     [create] already started its sync fiber, which must not keep
     publishing a partial state — and let the caller stand up another. *)
  (match Commit_manager.recover cm with
  | () -> ()
  | exception e ->
      Commit_manager.crash cm;
      raise e);
  cm
