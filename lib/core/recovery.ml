(* Fail-over for processing nodes and commit managers (§4.4).

   Processing nodes are crash-stop: when the management node detects a PN
   failure it starts a recovery process that discovers the failed node's
   in-flight transactions from the transaction log and rolls their
   partially applied updates back.  The lowest active version number acts
   as a rolling checkpoint: log entries below it cannot belong to an
   active transaction.

   The management node guarantees at most one recovery process at a time;
   a single process can handle several failed nodes (§4.4.1). *)

module Sim = Tell_sim
module Kv = Tell_kv

type t = {
  engine : Sim.Engine.t;
  kv : Kv.Client.t;
  cm : Commit_manager.t;
  mutable running : bool;
  mutable recovered_txns : int;
}

let create cluster ~cm =
  let group = Kv.Cluster.mgmt_group cluster in
  {
    engine = Kv.Cluster.engine cluster;
    kv = Kv.Client.create cluster ~group;
    cm;
    running = false;
    recovered_txns = 0;
  }

let recovered_txns t = t.recovered_txns

(* Roll back one logged, uncommitted transaction: remove its version from
   every record in the write set, then report the abort so snapshots can
   advance past its tid. *)
let roll_back t (entry : Txlog.entry) =
  List.iter (fun key -> Rollback.remove_version t.kv ~key ~version:entry.tid) entry.write_set;
  Txlog.append t.kv { entry with committed = false };
  (try Commit_manager.set_aborted t.cm ~tid:entry.tid
   with Kv.Op.Unavailable _ -> ());
  t.recovered_txns <- t.recovered_txns + 1

(* Recover every uncommitted transaction of the given failed processing
   nodes.  Scans the log tail backwards from the highest known tid down to
   the lav (§4.4.1). *)
let recover_processing_nodes t ~failed_pn_ids =
  (* The management node runs at most one recovery process at a time
     (Â§4.4.1); a second request queues behind the current pass.  Waiting
     matters under degraded networks: a pass can spend milliseconds in
     client retries, and the caller's failed nodes may not be the ones the
     running pass was started for. *)
  while t.running do
    Sim.Engine.sleep t.engine 100_000
  done;
  t.running <- true;
  Fun.protect
    ~finally:(fun () -> t.running <- false)
    (fun () ->
      let lav = Commit_manager.current_lav t.cm in
      let entries = Txlog.scan t.kv ~min_tid:lav in
      let entries = List.sort (fun (a : Txlog.entry) b -> Int.compare b.tid a.tid) entries in
      List.iter
        (fun (entry : Txlog.entry) ->
          if List.mem entry.pn_id failed_pn_ids then
            if not entry.committed then roll_back t entry
            else
              (* The entry is flagged but the PN may have died before its
                 notifier reported the commit.  Re-deliver it so the tid
                 does not linger in the manager's active set and wedge
                 the lav ([set_committed] is idempotent). *)
              try Commit_manager.set_committed t.cm ~tid:entry.tid
              with Kv.Op.Unavailable _ -> ())
        entries)

(* Stand up a replacement commit manager (§4.4.3): restore its state from
   the published peer states and the transaction-log tail. *)
let replace_commit_manager cluster ~dead ~fresh_id ~peers =
  ignore dead;
  let cm = Commit_manager.create cluster ~id:fresh_id ~peers () in
  (* If log recovery trips over a concurrent storage fail-over
     (Unavailable after retries), tear the half-recovered instance down —
     [create] already started its sync fiber, which must not keep
     publishing a partial state — and let the caller stand up another. *)
  (match Commit_manager.recover cm with
  | () -> ()
  | exception e ->
      Commit_manager.crash cm;
      raise e);
  cm
