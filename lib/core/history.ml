type event =
  | Begin of { tid : int; pn_id : int; snapshot : Version_set.t }
  | Read of { tid : int; key : string; version : int; intermediate : bool }
  | Write of { tid : int; key : string; version : int; tombstone : bool }
  | Commit of { tid : int }
  | Abort of { tid : int }
  | Rolled_back of { tid : int }
  | Node_event of { pn_id : int; what : string }

(* One global recorder, newest event first.  A single ref read when off:
   the hooks sit on the transaction hot paths and the bench gate runs
   with recording disabled. *)
type recorder = { mutable events : event list }

let current : recorder option ref = ref None

let start () = current := Some { events = [] }

let stop () =
  match !current with
  | None -> []
  | Some r ->
      current := None;
      List.rev r.events

let recording () = !current <> None

let record ev =
  match !current with None -> () | Some r -> r.events <- ev :: r.events

let note_begin ~tid ~pn_id ~snapshot =
  match !current with
  | None -> ()
  | Some r -> r.events <- Begin { tid; pn_id; snapshot } :: r.events

let note_read ~tid ~key ~version =
  match !current with
  | None -> ()
  | Some r -> r.events <- Read { tid; key; version; intermediate = false } :: r.events

let note_write ~tid ~key ~version ~tombstone =
  match !current with
  | None -> ()
  | Some r -> r.events <- Write { tid; key; version; tombstone } :: r.events

let note_commit ~tid = record (Commit { tid })
let note_abort ~tid = record (Abort { tid })
let note_rolled_back ~tid = record (Rolled_back { tid })
let note_node ~pn_id ~what = record (Node_event { pn_id; what })

(* --- dump format ------------------------------------------------------------------ *)

let encode_snapshot vs =
  let buf = Buffer.create 32 in
  Buffer.add_string buf (string_of_int (Version_set.base vs));
  List.iter (fun v -> Buffer.add_char buf '+'; Buffer.add_string buf (string_of_int v))
    (Version_set.above vs);
  Buffer.contents buf

let decode_snapshot s =
  match String.split_on_char '+' s with
  | [] -> Version_set.empty
  | base :: above ->
      List.fold_left
        (fun vs v -> Version_set.add vs (int_of_string v))
        (Version_set.of_base (int_of_string base))
        above

let encode_line = function
  | Begin { tid; pn_id; snapshot } ->
      Printf.sprintf "B %d %d %s" tid pn_id (encode_snapshot snapshot)
  | Read { tid; key; version; intermediate } ->
      Printf.sprintf "R %d %d %d %S" tid version (if intermediate then 1 else 0) key
  | Write { tid; key; version; tombstone } ->
      Printf.sprintf "W %d %d %d %S" tid version (if tombstone then 1 else 0) key
  | Commit { tid } -> Printf.sprintf "C %d" tid
  | Abort { tid } -> Printf.sprintf "A %d" tid
  | Rolled_back { tid } -> Printf.sprintf "X %d" tid
  | Node_event { pn_id; what } -> Printf.sprintf "N %d %s" pn_id what

let decode_line line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then None
  else
    try
      match line.[0] with
      | 'B' ->
          Scanf.sscanf line "B %d %d %s" (fun tid pn_id vs ->
              Some (Begin { tid; pn_id; snapshot = decode_snapshot vs }))
      | 'R' ->
          Scanf.sscanf line "R %d %d %d %S" (fun tid version i key ->
              Some (Read { tid; key; version; intermediate = i <> 0 }))
      | 'W' ->
          Scanf.sscanf line "W %d %d %d %S" (fun tid version tomb key ->
              Some (Write { tid; key; version; tombstone = tomb <> 0 }))
      | 'C' -> Scanf.sscanf line "C %d" (fun tid -> Some (Commit { tid }))
      | 'A' -> Scanf.sscanf line "A %d" (fun tid -> Some (Abort { tid }))
      | 'X' -> Scanf.sscanf line "X %d" (fun tid -> Some (Rolled_back { tid }))
      | 'N' ->
          Scanf.sscanf line "N %d %s" (fun pn_id what ->
              Some (Node_event { pn_id; what }))
      | _ -> failwith ("History.decode_line: unknown tag in " ^ line)
    with Scanf.Scan_failure _ | End_of_file | Failure _ ->
      failwith ("History.decode_line: malformed line " ^ line)
