(** Processing-node buffering strategies (§5.5).

    Reads of data records from the transaction layer flow through a
    {!pool}; the pool decides whether a buffered copy may serve a given
    snapshot or whether the store must be consulted:

    - {!Transaction_buffer}: no PN-wide state — every read goes to the
      store (the per-transaction cache lives in the transaction itself).
    - {!Shared_record_buffer}: an LRU of records tagged with a validity
      version set [B]; a transaction with snapshot [V_tx ⊆ B] hits.
      Entries are (re)tagged with [V_max], the snapshot of the most
      recently started transaction on this PN.
    - {!Shared_vs_buffer}: additionally keeps one version-set cell per
      {e cache unit} of records in the store; a miss first refetches the
      small cell and revalidates before refetching the record.  Writers
      grow the unit cell with an LL/SC read-modify-write union, so
      "cell unchanged" soundly implies "record unchanged". *)

type strategy =
  | Transaction_buffer
  | Shared_record_buffer of { capacity : int }
  | Shared_vs_buffer of { capacity : int; unit_size : int }

val strategy_name : strategy -> string

type pool

val create :
  Tell_kv.Client.t -> strategy -> vmax:(unit -> Version_set.t) -> pool

val strategy : pool -> strategy

val read :
  pool -> snapshot:Version_set.t -> table:string -> rid:int -> (Record.t * int) option
(** [read pool ~snapshot ~table ~rid] returns the full multi-version
    record and its LL/SC token, from the buffer when valid for [snapshot],
    from the store otherwise; [None] if the record does not exist. *)

val read_many :
  pool -> snapshot:Version_set.t -> (string * int) list -> (Record.t * int) option list
(** Batched {!read} over [(table, rid)] pairs: at most one store
    multi-get per miss class (records under TB/SB; unit cells then
    records under SBVS) instead of one get per record, with each
    strategy's hit/validity semantics preserved.  Results are in input
    order. *)

val note_applied :
  pool -> table:string -> rid:int -> record:Record.t -> token:int -> tid:int -> unit
(** Write-through hook called after a transaction's update was applied
    successfully: refresh the buffered copy (tagged [V_max ∪ {tid}]) and,
    under {!Shared_vs_buffer}, grow the unit's version-set cell. *)

val invalidate : pool -> table:string -> rid:int -> unit

val decode_record : pool -> key:string -> data:string -> token:int -> Record.t
(** Token-keyed decode memoisation shared with the scan path: parsing an
    unchanged cell twice is pure waste.  Not a data cache — callers still
    fetch from the store. *)

(** {1 Statistics} *)

val hits : pool -> int
val misses : pool -> int
val extra_requests : pool -> int
(** Version-set cell traffic of {!Shared_vs_buffer}. *)
