(* Asynchronous tail of the commit pipeline (§4.2–4.3).

   Once a transaction's writes are applied its fate is decided, so the
   log flag and the commit-manager notification tolerate delay: a delayed
   decided-set only keeps the snapshot slightly behind, which at worst
   raises the abort rate (§4.2).  Each processing node therefore owns one
   notifier fiber that collects the outcomes of concurrent committers and
   flushes them once per window: first one [multi_write] flagging all log
   entries, then one batched RPC per commit manager.  The flag-first
   order per tid is preserved — the commit manager never learns about a
   commit whose log entry is still unflagged, so recovery (which trusts
   the flag) and the manager can never disagree about a decided tid.

   Under a partition the flush degrades instead of losing decisions: a
   window that cannot reach the store or a live commit manager is
   re-queued and re-flushed after the retry timeout (flag writes are
   idempotent, and decisions are idempotent at the manager), so a healed
   link eventually delivers every outcome.  The deferral is only safe
   because the committer keeps its tid claimed until the flag lands (the
   [on_settled] hook): the tid-range reclamation sweep arbitrates
   unclaimed undecided tids from the log, and an unflagged entry reads as
   "aborted" — without the claim a partition-delayed flag would let the
   sweep roll back an acknowledged commit.  A flush refused with
   [Fenced] means this node was declared dead while partitioned — the
   outcomes now belong to recovery, so they are dropped and the owner is
   told it is a zombie via [on_fenced].

   The fiber runs in the PN's group: a PN crash kills it and drops the
   queue, leaving exactly the applied-but-unflagged log entries that
   recovery rolls back (see [Recovery.recover_processing_nodes]). *)

module Sim = Tell_sim
module Kv = Tell_kv

type item = {
  cm : Commit_manager.t;
  tid : int;
  entry : Txlog.entry option;  (* [Some e]: flag [e] in the log before notifying *)
  committed : bool;
  enqueued_at : int;
  on_settled : unit -> unit;
      (* Fired (idempotently) once the outcome is arbitrable without this
         node: the log flag landed, or a fence handed the outcome to
         recovery.  [Txn] uses it to release the PN's tid claim — the
         claim is what keeps the reclamation sweep from reading the
         still-unflagged entry as "aborted" and rolling back a commit
         whose flag is merely delayed behind a partition. *)
}

type t = {
  engine : Sim.Engine.t;
  kv : Kv.Client.t;
  flush_window_ns : int;
  note : ops:int -> int -> unit;  (* per-item pipeline latency (ns) *)
  on_fenced : unit -> unit;  (* a flush bounced: the owner is a zombie *)
  mutable queue : item list;  (* newest first *)
  mutable in_flight : unit Sim.Ivar.t option;  (* single-flight flush *)
  mutable flushed : int;
  mutable redelivered : int;  (* items re-queued after a failed flush *)
}

let pending t = List.length t.queue
let flushed t = t.flushed
let redelivered t = t.redelivered

(* Put [items] (oldest first) back at the old end of the queue, ahead of
   anything enqueued since the flush started. *)
let requeue t items =
  t.redelivered <- t.redelivered + List.length items;
  t.queue <- t.queue @ List.rev items

let do_flush t items =
  let src = Kv.Client.endpoint t.kv in
  (* Flag first: one conditional-free multi-write covering every
     read-write transaction's log entry. *)
  match
    match List.filter_map (fun i -> i.entry) items with
    | [] -> ()
    | entries -> Txlog.mark_committed_many t.kv entries
  with
  | exception Kv.Op.Unavailable _ ->
      (* Store unreachable (partition, crash storm).  Nothing is lost:
         flag writes are idempotent unconditional puts, so the whole
         window is re-flushed once the retry timeout has passed. *)
      requeue t items
  | exception Kv.Op.Fenced _ ->
      (* Declared dead while partitioned: recovery has rolled these
         outcomes back (or will decide them from the log).  Drop them
         and tell the owner. *)
      List.iter (fun i -> i.on_settled ()) items;
      t.on_fenced ()
  | () -> (
      (* The flags are durable: from here on the log arbitrates these
         outcomes correctly even without this node, so the owners may
         drop their claims. *)
      List.iter
        (fun i -> match i.entry with Some _ -> i.on_settled () | None -> ())
        items;
      (* Then one batched RPC per commit manager. *)
      let by_cm = ref [] in
      List.iter
        (fun item ->
          match List.find_opt (fun (cm, _) -> cm == item.cm) !by_cm with
          | Some (_, group) -> group := item :: !group
          | None -> by_cm := (item.cm, ref [ item ]) :: !by_cm)
        items;
      let delivered = ref [] in
      List.iter
        (fun (cm, group) ->
          let committed, aborted = List.partition (fun i -> i.committed) !group in
          match
            Commit_manager.set_decided_batch cm ~src
              ~committed:(List.map (fun i -> i.tid) committed)
              ~aborted:(List.map (fun i -> i.tid) aborted)
              ()
          with
          | () -> delivered := !group @ !delivered
          | exception Kv.Op.Unavailable _ ->
              if Commit_manager.alive cm then
                (* The manager is up but the link dropped the RPC (or its
                   reply — decisions are idempotent, so a duplicate
                   delivery is harmless): retry after the timeout. *)
                requeue t (List.rev !group)
              else
                (* The manager died mid-window.  Flagged entries are
                   durable, so its replacement re-learns the commits from
                   the log tail ([Commit_manager.recover]); unflagged
                   outcomes are re-decided by recovery. *)
                ()
          | exception Kv.Op.Fenced _ -> t.on_fenced ())
        (List.rev !by_cm);
      let finished = Sim.Engine.now t.engine in
      List.iter
        (fun i ->
          t.flushed <- t.flushed + 1;
          t.note ~ops:(match i.entry with Some _ -> 2 | None -> 1) (finished - i.enqueued_at))
        !delivered)

(* Flush everything enqueued before the call.  A flush in flight only
   covers the items present when it started, so later callers wait for it
   and then flush the remainder themselves.  A failed flush re-queues its
   items, so the loop keeps flushing until the queue is empty — each
   failed pass consumes at least a retry timeout of virtual time, so
   under a transient partition this terminates at the heal (and under a
   fence the queue is discarded). *)
let rec drain t =
  match t.in_flight with
  | Some flush ->
      Sim.Ivar.read flush;
      drain t
  | None -> (
      match t.queue with
      | [] -> ()
      | _ :: _ ->
          let items = List.rev t.queue in
          t.queue <- [];
          let flush = Sim.Ivar.create t.engine in
          t.in_flight <- Some flush;
          Fun.protect
            ~finally:(fun () ->
              t.in_flight <- None;
              Sim.Ivar.fill flush ())
            (fun () -> do_flush t items);
          drain t)

let enqueue t ~cm ~tid ?entry ?(on_settled = fun () -> ()) ~committed () =
  t.queue <-
    { cm; tid; entry; committed; enqueued_at = Sim.Engine.now t.engine; on_settled }
    :: t.queue

let discard t = t.queue <- []

let create engine ~group ~kv ~flush_window_ns ?(on_fenced = fun () -> ()) ~note () =
  let t =
    {
      engine;
      kv;
      flush_window_ns;
      note;
      on_fenced;
      queue = [];
      in_flight = None;
      flushed = 0;
      redelivered = 0;
    }
  in
  Sim.Engine.spawn engine ~group (fun () ->
      while true do
        Sim.Engine.sleep engine t.flush_window_ns;
        drain t
      done);
  t
