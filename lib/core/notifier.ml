(* Asynchronous tail of the commit pipeline (§4.2–4.3).

   Once a transaction's writes are applied its fate is decided, so the
   log flag and the commit-manager notification tolerate delay: a delayed
   decided-set only keeps the snapshot slightly behind, which at worst
   raises the abort rate (§4.2).  Each processing node therefore owns one
   notifier fiber that collects the outcomes of concurrent committers and
   flushes them once per window: first one [multi_write] flagging all log
   entries, then one batched RPC per commit manager.  The flag-first
   order per tid is preserved — the commit manager never learns about a
   commit whose log entry is still unflagged, so recovery (which trusts
   the flag) and the manager can never disagree about a decided tid.

   The fiber runs in the PN's group: a PN crash kills it and drops the
   queue, leaving exactly the applied-but-unflagged log entries that
   recovery rolls back (see [Recovery.recover_processing_nodes]). *)

module Sim = Tell_sim
module Kv = Tell_kv

type item = {
  cm : Commit_manager.t;
  tid : int;
  entry : Txlog.entry option;  (* [Some e]: flag [e] in the log before notifying *)
  committed : bool;
  enqueued_at : int;
}

type t = {
  engine : Sim.Engine.t;
  kv : Kv.Client.t;
  flush_window_ns : int;
  note : ops:int -> int -> unit;  (* per-item pipeline latency (ns) *)
  mutable queue : item list;  (* newest first *)
  mutable in_flight : unit Sim.Ivar.t option;  (* single-flight flush *)
  mutable flushed : int;
}

let pending t = List.length t.queue
let flushed t = t.flushed

let do_flush t items =
  (* Flag first: one conditional-free multi-write covering every
     read-write transaction's log entry. *)
  (match List.filter_map (fun i -> i.entry) items with
  | [] -> ()
  | entries -> Txlog.mark_committed_many t.kv entries);
  (* Then one batched RPC per (live) commit manager. *)
  let by_cm = ref [] in
  List.iter
    (fun item ->
      match List.find_opt (fun (cm, _) -> cm == item.cm) !by_cm with
      | Some (_, group) -> group := item :: !group
      | None -> by_cm := (item.cm, ref [ item ]) :: !by_cm)
    items;
  List.iter
    (fun (cm, group) ->
      let committed, aborted = List.partition (fun i -> i.committed) !group in
      try
        Commit_manager.set_decided_batch cm
          ~committed:(List.map (fun i -> i.tid) committed)
          ~aborted:(List.map (fun i -> i.tid) aborted)
      with Kv.Op.Unavailable _ ->
        (* The manager died mid-window.  Flagged entries are durable, so
           its replacement re-learns the commits from the log tail
           ([Commit_manager.recover]); unflagged outcomes are re-decided
           by recovery. *)
        ())
    (List.rev !by_cm);
  let finished = Sim.Engine.now t.engine in
  List.iter
    (fun i ->
      t.flushed <- t.flushed + 1;
      t.note ~ops:(match i.entry with Some _ -> 2 | None -> 1) (finished - i.enqueued_at))
    items

(* Flush everything enqueued before the call.  A flush in flight only
   covers the items present when it started, so later callers wait for it
   and then flush the remainder themselves. *)
let rec drain t =
  match t.in_flight with
  | Some flush ->
      Sim.Ivar.read flush;
      drain t
  | None -> (
      match t.queue with
      | [] -> ()
      | _ :: _ ->
          let items = List.rev t.queue in
          t.queue <- [];
          let flush = Sim.Ivar.create t.engine in
          t.in_flight <- Some flush;
          Fun.protect
            ~finally:(fun () ->
              t.in_flight <- None;
              Sim.Ivar.fill flush ())
            (fun () -> do_flush t items))

let enqueue t ~cm ~tid ?entry ~committed () =
  t.queue <-
    { cm; tid; entry; committed; enqueued_at = Sim.Engine.now t.engine } :: t.queue

let create engine ~group ~kv ~flush_window_ns ~note =
  let t = { engine; kv; flush_window_ns; note; queue = []; in_flight = None; flushed = 0 } in
  Sim.Engine.spawn engine ~group (fun () ->
      while true do
        Sim.Engine.sleep engine t.flush_window_ns;
        drain t
      done);
  t
