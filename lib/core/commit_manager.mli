(** The commit manager (§4.2): a lightweight service that hands out
    system-wide unique transaction ids, snapshot descriptors, and the
    lowest active version number (lav).

    Transaction ids come from an atomically incremented counter in the
    shared store, acquired in continuous ranges so that the counter is not
    a bottleneck.  Several commit managers can run in parallel: they
    publish their state (decided-transaction sets and local lav) to the
    store at a fixed synchronisation interval and merge each other's
    publications, so every manager serves a globally consistent — at most
    interval-delayed — snapshot.  Operating on a delayed snapshot is
    correct (it can only raise the abort rate, §4.2).

    The snapshot descriptor is a {!Version_set.t}: base version [b] (that
    and all earlier transactions are decided) plus the set [N] of newly
    committed ids above [b].  The base may advance through {e aborted}
    ids: their updates have been rolled back before [set_aborted], so
    treating them as visible is harmless. *)

type t

type start_reply = {
  tid : int;
  snapshot : Version_set.t;
  lav : int;  (** versions [<= lav] are visible to every active transaction *)
}

val create :
  Tell_kv.Cluster.t ->
  id:int ->
  ?peers:int list ->
  ?range_size:int ->
  ?sync_interval_ns:int ->
  unit ->
  t
(** [peers] lists the ids of the other commit managers whose published
    state this one merges.  The synchronisation fiber starts immediately
    (1 ms interval by default, as in §6.3.3). *)

val id : t -> int
val alive : t -> bool
val crash : t -> unit

val endpoint : t -> string
(** Link-endpoint name ("cm<id>") of this manager on the simulated
    network. *)

val was_fenced : t -> bool
(** True once this instance stopped because its lease was revoked: a
    store write bounced {!Tell_kv.Op.Fenced}, meaning the management
    node replaced it while it was partitioned.  A fenced manager is
    dead ([alive t = false]) and never serves again. *)

(** {1 Remote interface used by processing nodes}

    Each call models one network round trip to the manager plus its
    service time, executed by the calling fiber.  Raises
    {!Tell_kv.Op.Unavailable} when the manager has crashed.

    [src] names the caller's link endpoint: when given, the request and
    reply travel the simulated network as identity-carrying messages
    subject to the fault plan (partitions, loss), and a dropped message
    surfaces as {!Tell_kv.Op.Unavailable} after the client timeout.
    Without it the legacy always-delivered path is used. *)

val start : t -> ?src:string -> from_group:Tell_sim.Engine.Group.t -> unit -> start_reply

val start_many :
  t -> ?src:string -> from_group:Tell_sim.Engine.Group.t -> count:int -> unit -> start_reply list
(** One RPC starting [count] transactions at once — the coalesced form of
    {!start} used by the per-PN begin window.  Each reply carries its own
    tid; all replies share the snapshot computed at service time (a
    slightly delayed snapshot is correct under SI, §4.2).  Raises
    [Invalid_argument] when [count <= 0]. *)

val set_committed : t -> ?src:string -> tid:int -> unit -> unit
val set_aborted : t -> ?src:string -> tid:int -> unit -> unit

val set_decided_batch : t -> ?src:string -> committed:int list -> aborted:int list -> unit -> unit
(** One RPC deciding many transactions at once — the coalesced form of
    {!set_committed}/{!set_aborted} used by the per-PN notifier.  A no-op
    when both lists are empty. *)

(** {1 Introspection and recovery} *)

val current_snapshot : t -> Version_set.t
val current_lav : t -> int
val active_count : t -> int

val range_span : t -> int * int
(** The manager's current tid range [(start, end))], handed-out part
    included.  The management node's reclamation sweep treats every tid
    inside a live manager's span as spoken for. *)

(** Release active transactions whose originating fiber group is dead,
    recovering each decision from the log (flagged entry = commit,
    otherwise abort), and return how many were released.  Called by
    [Database.recover_crashed_pns] after the recovery log pass. *)
val release_dead_actives : t -> int

val release_group_actives : t -> group:Tell_sim.Engine.Group.t -> int
(** Like {!release_dead_actives}, but for one specific owner group,
    whether or not the engine considers it dead yet.  Used when a
    processing node is {e declared} dead (fenced) while its fibers may
    still be running behind a partition: its undecided transactions must
    resolve from the log, not wait on fibers that will be poisoned. *)

val recover : t -> unit
(** Rebuild state after taking over from a failed manager (§4.4.3): reads
    the tid counter, the peers' published states, and the tail of the
    transaction log. *)
