(** Top-level façade: a Tell database deployment inside a simulation.

    Owns the storage cluster, the commit-manager group, and the processing
    nodes, and offers convenience wrappers for transactional work and
    ad-hoc SQL.  Mirrors Figure 3: PNs and commit managers can be added
    (elasticity) or crashed (fail-over) at any time. *)

type t

val create :
  Tell_sim.Engine.t ->
  ?kv_config:Tell_kv.Cluster.config ->
  ?n_commit_managers:int ->
  ?cm_sync_interval_ns:int ->
  ?cm_range_size:int ->
  unit ->
  t

val engine : t -> Tell_sim.Engine.t
val cluster : t -> Tell_kv.Cluster.t
val commit_managers : t -> Commit_manager.t list

val add_pn :
  t ->
  ?cores:int ->
  ?cost:Pn.cost_model ->
  ?buffer:Buffer_pool.strategy ->
  ?notify_flush_window_ns:int ->
  ?begin_window_ns:int ->
  unit ->
  Pn.t
(** Elastically add a processing node (no data movement — §2.1). *)

val pns : t -> Pn.t list
val add_commit_manager : t -> Commit_manager.t

val replace_commit_manager : t -> dead:Commit_manager.t -> Commit_manager.t
(** Stand up a replacement for a crashed manager under the same id
    (§4.4.3): it recovers its state from the published peer states and
    the transaction-log tail, and takes the dead instance's place in
    this database's manager list.  Raises {!Tell_kv.Op.Unavailable} if
    recovery cannot read the store (retry once the storage fail-over
    settles). *)

val crash_pn : t -> Pn.t -> unit
val crash_storage_node : t -> int -> unit
val recover_crashed_pns : t -> int
(** Run the management-node recovery process over all crashed PNs;
    returns the number of transactions rolled back.  Also releases the
    active tids of any transaction owner that has died since the last
    pass — including zombies that poisoned themselves — so they cannot
    wedge the lav. *)

val declare_pn_dead : t -> Pn.t -> int
(** The false-suspicion path: treat [pn] as failed on a detector's
    say-so {e without} killing it (it may be alive behind a partition).
    Fences the node's epoch on every storage node, rolls back its
    logged uncommitted transactions, and releases its active tids; a
    surviving zombie bounces off the fence on its next write and
    poisons itself ({!Pn.poison}).  Returns the number of transactions
    rolled back.  Must run inside a fiber. *)

val release_dead_actives : t -> unit
(** Release dead transaction owners' tids from every live commit
    manager (the sweep [recover_crashed_pns] runs, exposed for drains
    that must not start a recovery pass). *)

val tables : t -> Schema.table list
(** All table descriptors currently registered in the store. *)

val gc : t -> Gc_task.t
(** The lazy garbage collector (management side). *)

(** {1 Transactions} *)

val with_txn : Pn.t -> (Txn.t -> 'a) -> 'a
(** Begin, run, commit; aborts (without re-raising masking) on exception.
    Raises {!Txn.Conflict} when the commit loses a write-write race. *)

val with_txn_retry : ?attempts:int -> Pn.t -> (Txn.t -> 'a) -> 'a
(** Like {!with_txn} but restarts the whole body on {!Txn.Conflict}. *)

(** {1 SQL} *)

val exec : Pn.t -> string -> Sql_plan.result
(** Parse and execute one statement in an auto-commit transaction. *)

val exec_in : Txn.t -> string -> Sql_plan.result

val rows : Sql_plan.result -> Value.t array list
(** Convenience extractor; empty for non-queries. *)
