(** Latch-free distributed B+tree (§5.3).

    Every tree node is one key-value pair in the shared store; node
    updates are synchronised exclusively with LL/SC conditional writes and
    retried on conflict, so no latches exist anywhere and system-wide
    progress is guaranteed.  Nodes carry B-link-style [high_key]/[next]
    pointers (Lehman-Yao): a traversal that lands on a node whose range
    has moved simply walks right, which makes readers correct even while a
    split by another processing node is mid-flight.

    Following §5.3.1, inner nodes are cached on the processing node; leaf
    nodes are always fetched from the store.  When a fetched leaf's range
    contradicts the cached parents (the leaf has split), the cached path
    is invalidated and refreshed.

    Entries are [(key, rid)] pairs ordered lexicographically; duplicate
    attribute keys are allowed (the rid disambiguates), and the tree is
    version-unaware (§5.3.2) — visibility filtering happens in the
    transaction layer after the record is read. *)

type t

val create : Tell_kv.Client.t -> name:string -> unit
(** Idempotently initialise the tree (empty root) in the store. *)

val attach : Tell_kv.Client.t -> name:string -> t
(** A per-processing-node handle with its own inner-node cache. *)

val name : t -> string

val insert : t -> key:string -> rid:int -> unit
val remove : t -> key:string -> rid:int -> unit

val insert_many : t -> entries:(string * int) list -> unit
(** Insert a batch of entries with (at most) a couple of batched store
    round trips: the cached inner levels route every entry to its leaf,
    the leaves are fetched with one multi-get, and each leaf receives one
    LL/SC conditional write covering all its entries.  Entries whose leaf
    went stale or conflicted are re-routed in a fresh round; entries whose
    leaf would split fall back to per-entry traversals.  Equivalent to
    calling {!insert} per entry. *)

val remove_many : t -> entries:(string * int) list -> unit
(** Batched {!remove}; same strategy as {!insert_many}. *)

val insert_many_grouped : (t * (string * int) list) list -> unit
(** {!insert_many} over several trees at once.  All trees must be
    attached to the same store client: the groups share the leaf
    multi-get and the conditional multi-write, so one commit's index
    maintenance across all its trees costs ~2 batched round trips
    total. *)

val lookup : t -> key:string -> int list
(** All rids stored under exactly [key], ascending. *)

val lookup_many : t -> keys:string list -> (string * int list) list
(** Point lookups for many keys with (at most) one batched store round
    trip: the cached inner levels route every key to its leaf, the leaves
    are fetched together, and only keys whose leaf turned out stale fall
    back to individual traversals.  Results are in input order. *)

val lookup_many_grouped : (t * string list) list -> (string * int list) list list
(** [lookup_many] generalised across several trees attached to the same
    store client: all routed leaves of all groups are fetched in one
    multi-get, so a transaction's point lookups across many indexes cost
    one batched round trip total.  The result mirrors the input shape. *)

val range : t -> lo:string -> hi:string -> (string * int) list
(** Entries with [lo <= key < hi], in key order. *)

val range_limit : t -> lo:string -> hi:string -> limit:int -> (string * int) list

val cache_size : t -> int
val invalidate_cache : t -> unit

val bulk_cells : name:string -> entries:(string * int) list -> (string * string) list
(** Build a complete, balanced tree from sorted [(key, rid)] entries as a
    list of [(store key, cell value)] pairs — including the root pointer
    and the node-id counter — ready to be installed with
    [Tell_kv.Cluster.poke].  The bulk-load path for benchmark populations. *)

(**/**)

val check : t -> string list
(** Walk the whole tree and collect structural violations — entry/separator
    ordering, bound containment, level tags, child arity — as
    human-readable strings ([[]] when sound).  Full separator entries are
    (key, rid) pairs; comparisons never drop the rid.  Expensive;
    simulation-time only (the [tell_check] harness and tests). *)

val check_invariants : t -> unit
(** {!check}, raising [Invalid_argument] on the first violation set. *)
