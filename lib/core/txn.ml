module Kv = Tell_kv

exception Conflict of string
exception Finished

type status = Running | Committed | Aborted

type isolation = Snapshot_isolation | Serializable

type cached = { record : Record.t; token : int }

type write = {
  w_table : string;
  w_rid : int;
  mutable w_payload : Record.payload;
  w_base : cached option;  (* None: insert, the key must be absent *)
  mutable w_index_adds : (string * string) list;  (* (index name, encoded key) *)
}

type t = {
  pn : Pn.t;
  cm : Commit_manager.t;
  tid : int;
  isolation : isolation;
  snapshot : Version_set.t;
  lav : int;
  cache : (string, cached option) Hashtbl.t;  (* record key -> store state *)
  read_tokens : (string, int option) Hashtbl.t;
      (* Serializable mode: LL/SC token of every record at first read
         (None = the record was absent), re-validated at commit. *)
  writes : (string, write) Hashtbl.t;
  mutable write_order : string list;  (* newest first *)
  mutable async_reads : (string * int) list;
      (* point reads registered by [read_async] awaiting their shared
         batched fetch (newest first) *)
  mutable status : status;
}

type read_future = { rf_table : string; rf_rid : int }

(* Observation hook for the check harness: fired once per successful
   commit, after the status flips but before the asynchronous notifier
   tail.  Zero-cost when unset; never suspends. *)
type commit_probe =
  tid:int -> pn_id:int -> snapshot:Version_set.t -> write_set:string list -> unit

let commit_probe : commit_probe option ref = ref None
let set_commit_probe probe = commit_probe := probe

(* Test-only mutation knob for the histcheck battery (DESIGN.md §7): when
   set, both conflict checks are deliberately broken — the begin-time
   invisible-version abort is skipped and a failed commit-time LL/SC is
   "resolved" by merging the lost version over whatever won the race.
   The resulting histories must be rejected by the SI anomaly checker
   (lost update / G-SI); a checker that accepts them is itself broken.
   Never set outside tests. *)
let weaken_conflict_detection = ref false
let unsafe_set_weaken_conflict_detection flag = weaken_conflict_detection := flag

(* History capture (opt-in, see History): the version a read resolved to
   under this transaction's snapshot.  Version 0 stands for both the
   bulk-load version and an absent record — indistinguishable to a
   snapshot, both are "the initial version". *)
let note_observed t ~key state =
  if History.recording () then
    History.note_read ~tid:t.tid ~key
      ~version:
        (match state with
        | None -> 0
        | Some { record; _ } -> (
            match Record.latest_visible record ~visible:(fun v -> Version_set.mem t.snapshot v) with
            | Some v -> v.Record.version
            | None -> 0))

let fire_commit_probe t ~write_set =
  match !commit_probe with
  | None -> ()
  | Some probe -> probe ~tid:t.tid ~pn_id:(Pn.id t.pn) ~snapshot:t.snapshot ~write_set

let begin_txn ?(isolation = Snapshot_isolation) pn =
  (* A crashed node refuses connections.  Without this, a client holding
     a stale connection would register an active transaction with the
     commit manager and then hang forever on the dead node's CPU queue —
     an undecidable tid that wedges every snapshot base. *)
  if not (Pn.alive pn) then raise (Kv.Op.Unavailable (Printf.sprintf "pn%d" (Pn.id pn)));
  (* Flush this PN's pending commit notifications first: a transaction
     must see every commit that returned on its own PN (read your own
     node's writes), so their tids have to reach the commit manager
     before we fetch a snapshot from it. *)
  Notifier.drain (Pn.notifier pn);
  (* The drain may have discovered we are a fenced zombie (a flush
     bounced and poisoned the node): refuse like a crashed node. *)
  if not (Pn.alive pn) then raise (Kv.Op.Unavailable (Printf.sprintf "pn%d" (Pn.id pn)));
  (* Start through the PN's begin-window coalescer: concurrent begins on
     this node share one manager round trip.  The window's leader claims
     every handed-out tid before any waiter resumes, so from here until
     the commit/abort decision the reclamation sweep treats it as live
     (the re-claim below is an idempotent no-op kept for clarity). *)
  let cm, reply = Pn.begin_start pn in
  Pn.claim_tid pn reply.tid;
  Pn.note_started_snapshot pn reply.snapshot;
  History.note_begin ~tid:reply.tid ~pn_id:(Pn.id pn) ~snapshot:reply.snapshot;
  {
    pn;
    cm;
    tid = reply.tid;
    isolation;
    snapshot = reply.snapshot;
    lav = reply.lav;
    cache = Hashtbl.create 32;
    read_tokens = Hashtbl.create 32;
    writes = Hashtbl.create 8;
    write_order = [];
    async_reads = [];
    status = Running;
  }

let tid t = t.tid
let isolation t = t.isolation
let snapshot t = t.snapshot
let lav t = t.lav
let status t = t.status
let pn t = t.pn
let write_set_size t = Hashtbl.length t.writes

let check_running t = match t.status with Running -> () | Committed | Aborted -> raise Finished

let visible t v = Version_set.mem t.snapshot v

(* Fetch a record through the buffering strategy, caching it for the rest
   of this transaction (the "transaction buffer" of §5.5.1 is always on). *)
let note_read_token t key state =
  if t.isolation = Serializable && not (Hashtbl.mem t.read_tokens key) then
    Hashtbl.replace t.read_tokens key
      (match state with Some { token; _ } -> Some token | None -> None)

let fetch t ~table ~rid =
  let key = Keys.record ~table ~rid in
  match Hashtbl.find_opt t.cache key with
  | Some state -> state
  | None ->
      Pn.charge t.pn (Pn.cost t.pn).cpu_per_read_ns;
      let state =
        match Buffer_pool.read (Pn.pool t.pn) ~snapshot:t.snapshot ~table ~rid with
        | Some (record, token) -> Some { record; token }
        | None -> None
      in
      Hashtbl.replace t.cache key state;
      note_read_token t key state;
      state

let payload_to_tuple = function Record.Tuple tuple -> Some tuple | Record.Tombstone -> None

let read t ~table ~rid =
  check_running t;
  let key = Keys.record ~table ~rid in
  match Hashtbl.find_opt t.writes key with
  | Some w -> payload_to_tuple w.w_payload
  | None -> (
      let state = fetch t ~table ~rid in
      note_observed t ~key state;
      match state with
      | None -> None
      | Some { record; _ } -> (
          match Record.latest_visible record ~visible:(visible t) with
          | Some { payload; _ } -> payload_to_tuple payload
          | None -> None))

let read_record t ~table ~rid =
  check_running t;
  Option.map (fun c -> c.record) (fetch t ~table ~rid)

let visible_tuple t record =
  match Record.latest_visible record ~visible:(visible t) with
  | Some { payload = Record.Tuple tuple; _ } -> Some tuple
  | Some { payload = Record.Tombstone; _ } | None -> None

(* Shared batched-fetch core of every fused read path: one
   [Buffer_pool.read_many] (itself at most one store multi-get per miss
   class) covering every listed record not already in the write buffer or
   the transaction cache.  Returns how many records were fetched through
   the pool.  The batch crosses a suspension point, so callers must treat
   the whole call as one step of the single-flight rule (CLAUDE.md): no
   shared mutable state may be read before it and updated after it. *)
let fetch_many t pairs =
  let seen = Hashtbl.create 16 in
  let missing =
    List.filter
      (fun (table, rid) ->
        let key = Keys.record ~table ~rid in
        if Hashtbl.mem t.writes key || Hashtbl.mem t.cache key || Hashtbl.mem seen key then
          false
        else begin
          Hashtbl.replace seen key ();
          true
        end)
      pairs
  in
  match missing with
  | [] -> 0
  | _ :: _ ->
      let states = Buffer_pool.read_many (Pn.pool t.pn) ~snapshot:t.snapshot missing in
      List.iter2
        (fun (table, rid) state ->
          let key = Keys.record ~table ~rid in
          let state = Option.map (fun (record, token) -> { record; token }) state in
          Hashtbl.replace t.cache key state;
          note_read_token t key state)
        missing states;
      List.length missing

(* Resolve a record already buffered by [fetch_many] (or by an earlier
   read/write), with exactly [read]'s per-key semantics: the transaction's
   own write wins without an observation event; otherwise the cached store
   state is observed and filtered through the snapshot. *)
let resolve_cached t ~table ~rid =
  let key = Keys.record ~table ~rid in
  match Hashtbl.find_opt t.writes key with
  | Some w -> payload_to_tuple w.w_payload
  | None -> (
      let state = Option.join (Hashtbl.find_opt t.cache key) in
      note_observed t ~key state;
      match state with None -> None | Some { record; _ } -> visible_tuple t record)

let note_read_phase t ~fetched t0 =
  if fetched > 0 then
    Pn.note_commit_phase t.pn ~phase:"read" ~ops:fetched
      (Tell_sim.Engine.now (Pn.engine t.pn) - t0)

let read_batch t ~table ~rids =
  check_running t;
  Pn.charge t.pn (List.length rids * (Pn.cost t.pn).cpu_per_read_ns / 4);
  let t0 = Tell_sim.Engine.now (Pn.engine t.pn) in
  let fetched = fetch_many t (List.map (fun rid -> (table, rid)) rids) in
  note_read_phase t ~fetched t0;
  List.filter_map
    (fun rid -> Option.map (fun tuple -> (rid, tuple)) (resolve_cached t ~table ~rid))
    rids

let read_async t ~table ~rid =
  check_running t;
  let key = Keys.record ~table ~rid in
  if not (Hashtbl.mem t.writes key || Hashtbl.mem t.cache key) then
    t.async_reads <- (table, rid) :: t.async_reads;
  { rf_table = table; rf_rid = rid }

let await t fut =
  check_running t;
  (match t.async_reads with
  | [] -> ()
  | pending ->
      (* First await flushes every registered read in one batched round:
         clear the register before the fetch suspends so a re-entrant
         registration is not lost. *)
      t.async_reads <- [];
      let t0 = Tell_sim.Engine.now (Pn.engine t.pn) in
      let fetched = fetch_many t (List.rev pending) in
      note_read_phase t ~fetched t0);
  Pn.charge t.pn ((Pn.cost t.pn).cpu_per_read_ns / 4);
  resolve_cached t ~table:fut.rf_table ~rid:fut.rf_rid

let pending_rows t ~table =
  Hashtbl.fold
    (fun _ w acc ->
      match (w.w_table = table, w.w_payload) with
      | true, Record.Tuple tuple -> (w.w_rid, tuple) :: acc
      | true, Record.Tombstone | false, _ -> acc)
    t.writes []

(* §4.1, first conflict scenario: a version applied by a transaction that
   is not in our snapshot means a concurrent writer got there first. *)
(* First-committer-wins, plus tid-order discipline: tids come from
   per-manager ranges, so a transaction can hold a tid {e below} a version
   some faster transaction (served by the other manager's range) already
   committed to this record.  Its update would sort under that version and
   be shadowed for every future reader ([Record.latest_visible] takes the
   highest visible tid), silently losing the write.  Such writers must
   abort and retry with a fresh — necessarily higher — tid.  The
   read-to-apply race is closed by the LL/SC token: any version applied
   after this check bumps the cell token and fails the commit-time
   [Put_if]. *)
let assert_no_invisible_version t record ~table ~rid =
  if
    (not !weaken_conflict_detection)
    && List.exists
         (fun v -> (not (visible t v)) || v > t.tid)
         (Record.version_numbers record)
  then begin
    t.status <- Aborted;
    History.note_abort ~tid:t.tid;
    Pn.release_tid t.pn t.tid;
    Notifier.enqueue (Pn.notifier t.pn) ~cm:t.cm ~tid:t.tid ~committed:false ();
    raise (Conflict (Printf.sprintf "%s/%d has a newer version" table rid))
  end

let index_entries_for t ~table tuple =
  let schema = Pn.schema t.pn ~table in
  List.map
    (fun (idx : Schema.index) ->
      let key = Codec.encode_key (Schema.key_of_tuple ~columns:idx.idx_columns tuple) in
      (idx.idx_name, key))
    (Schema.all_indexes schema)

let record_write t ~table ~rid ~payload ~base ~index_adds =
  let key = Keys.record ~table ~rid in
  History.note_write ~tid:t.tid ~key ~version:t.tid
    ~tombstone:(match payload with Record.Tombstone -> true | Record.Tuple _ -> false);
  match Hashtbl.find_opt t.writes key with
  | Some w ->
      w.w_payload <- payload;
      w.w_index_adds <-
        List.filter (fun e -> not (List.mem e w.w_index_adds)) index_adds @ w.w_index_adds
  | None ->
      Hashtbl.replace t.writes key
        { w_table = table; w_rid = rid; w_payload = payload; w_base = base; w_index_adds = index_adds };
      t.write_order <- key :: t.write_order

let update t ~table ~rid tuple =
  check_running t;
  Pn.charge t.pn (Pn.cost t.pn).cpu_per_write_ns;
  let schema = Pn.schema t.pn ~table in
  Schema.validate_tuple schema tuple;
  let key = Keys.record ~table ~rid in
  match Hashtbl.find_opt t.writes key with
  | Some w ->
      (* Second update of the same record: modify the buffered version. *)
      let index_adds =
        List.filter
          (fun e -> not (List.mem e w.w_index_adds))
          (index_entries_for t ~table tuple)
      in
      History.note_write ~tid:t.tid ~key ~version:t.tid ~tombstone:false;
      w.w_payload <- Record.Tuple tuple;
      w.w_index_adds <- index_adds @ w.w_index_adds
  | None -> (
      let state = fetch t ~table ~rid in
      note_observed t ~key state;
      match state with
      | None -> raise (Schema.Schema_error (Printf.sprintf "update of absent record %s/%d" table rid))
      | Some ({ record; _ } as base) ->
          assert_no_invisible_version t record ~table ~rid;
          let old_tuple =
            match Record.latest_visible record ~visible:(visible t) with
            | Some { payload = Record.Tuple old; _ } -> Some old
            | Some { payload = Record.Tombstone; _ } | None -> None
          in
          let new_entries = index_entries_for t ~table tuple in
          let index_adds =
            match old_tuple with
            | None -> new_entries
            | Some old ->
                let old_entries = index_entries_for t ~table old in
                List.filter (fun e -> not (List.mem e old_entries)) new_entries
          in
          record_write t ~table ~rid ~payload:(Record.Tuple tuple) ~base:(Some base) ~index_adds)

let insert t ~table tuple =
  check_running t;
  Pn.charge t.pn (Pn.cost t.pn).cpu_per_write_ns;
  let schema = Pn.schema t.pn ~table in
  Schema.validate_tuple schema tuple;
  let rid = Pn.alloc_rid t.pn ~table in
  record_write t ~table ~rid ~payload:(Record.Tuple tuple) ~base:None
    ~index_adds:(index_entries_for t ~table tuple);
  rid

let delete t ~table ~rid =
  check_running t;
  Pn.charge t.pn (Pn.cost t.pn).cpu_per_write_ns;
  let key = Keys.record ~table ~rid in
  match Hashtbl.find_opt t.writes key with
  | Some w ->
      History.note_write ~tid:t.tid ~key ~version:t.tid ~tombstone:true;
      w.w_payload <- Record.Tombstone
  | None -> (
      let state = fetch t ~table ~rid in
      note_observed t ~key state;
      match state with
      | None -> ()
      | Some ({ record; _ } as base) ->
          assert_no_invisible_version t record ~table ~rid;
          record_write t ~table ~rid ~payload:Record.Tombstone ~base:(Some base) ~index_adds:[])

(* --- index access ------------------------------------------------------------- *)

let own_index_entries t ~index ~lo ~hi =
  Hashtbl.fold
    (fun _ w acc ->
      List.fold_left
        (fun acc (idx, key) ->
          if idx = index && lo <= key && key < hi then (key, w.w_rid) :: acc else acc)
        acc w.w_index_adds)
    t.writes []

let index_range t ~index ~lo ~hi =
  check_running t;
  let shared = Btree.range (Pn.btree t.pn ~index) ~lo ~hi in
  let own = own_index_entries t ~index ~lo ~hi in
  let cmp (k1, r1) (k2, r2) =
    match String.compare k1 k2 with 0 -> Int.compare r1 r2 | c -> c
  in
  List.sort_uniq cmp (own @ shared)

let index_lookup t ~index ~key =
  List.map snd (index_range t ~index ~lo:key ~hi:(key ^ "\x00"))

let index_read_many t ~index ~keys =
  check_running t;
  let shared = Btree.lookup_many (Pn.btree t.pn ~index) ~keys in
  List.map2
    (fun key (_, rids) ->
      let own = List.map snd (own_index_entries t ~index ~lo:key ~hi:(key ^ "\x00")) in
      (key, List.sort_uniq Int.compare (own @ rids)))
    keys shared

(* Fused index→record point reads — §5.1's request batching applied to
   the read side: route every key through its tree's cached inner levels
   and fetch all leaves in one batched round ([Btree.lookup_many_grouped]
   across every index touched), then fetch every resolved record through
   the buffer pool in a second ([fetch_many]).  Per-key semantics — write
   buffer and transaction-cache hits, pending index insertions, read
   tokens, history recording, first-rid selection — match the sequential
   [index_lookup] + [read] pair exactly. *)
let read_by_pk_multi t reqs =
  check_running t;
  Pn.charge t.pn (List.length reqs * (Pn.cost t.pn).cpu_per_read_ns / 4);
  let t0 = Tell_sim.Engine.now (Pn.engine t.pn) in
  (* Group the lookups per index so every tree shares the leaf round. *)
  let groups = ref [] in
  List.iter
    (fun (_, index, key) ->
      match List.assoc_opt index !groups with
      | Some keys -> keys := key :: !keys
      | None -> groups := (index, ref [ key ]) :: !groups)
    reqs;
  let groups = List.rev_map (fun (index, keys) -> (index, List.rev !keys)) !groups in
  let looked_up =
    Btree.lookup_many_grouped
      (List.map (fun (index, keys) -> (Pn.btree t.pn ~index, keys)) groups)
  in
  let shared_rids = Hashtbl.create 16 in
  List.iter2
    (fun (index, _) results ->
      List.iter (fun (key, rids) -> Hashtbl.replace shared_rids (index, key) rids) results)
    groups looked_up;
  let resolved =
    List.map
      (fun (table, index, key) ->
        let shared = Option.value ~default:[] (Hashtbl.find_opt shared_rids (index, key)) in
        let own = List.map snd (own_index_entries t ~index ~lo:key ~hi:(key ^ "\x00")) in
        match List.sort_uniq Int.compare (own @ shared) with
        | [] -> None
        | rid :: _ -> Some (table, rid))
      reqs
  in
  let fetched = fetch_many t (List.filter_map Fun.id resolved) in
  note_read_phase t ~fetched t0;
  List.map
    (function
      | None -> None
      | Some (table, rid) ->
          Option.map (fun tuple -> (rid, tuple)) (resolve_cached t ~table ~rid))
    resolved

let read_by_pk_many t ~table ~index ~keys =
  read_by_pk_multi t (List.map (fun key -> (table, index, key)) keys)

let gc_index_entry t ~index ~key ~rid =
  Btree.remove (Pn.btree t.pn ~index) ~key ~rid

(* --- commit / abort ------------------------------------------------------------- *)

let finish_abort t reason =
  t.status <- Aborted;
  History.note_abort ~tid:t.tid;
  Pn.release_tid t.pn t.tid;
  Notifier.enqueue (Pn.notifier t.pn) ~cm:t.cm ~tid:t.tid ~committed:false ();
  raise (Conflict reason)

let apply_writes t writes =
  (* One conditional write per record, batched per storage node. *)
  let ops =
    List.map
      (fun (key, w) ->
        let base_record, base_token =
          match w.w_base with
          | Some { record; token } -> (record, Some token)
          | None -> (Record.empty, None)
        in
        (* Eager record GC (§5.4) piggy-backs on the write-back. *)
        let compacted, _removed = Record.gc base_record ~lav:t.lav in
        let new_record = Record.add_version compacted ~version:t.tid w.w_payload in
        (key, w, Kv.Op.Put_if (key, base_token, Record.encode new_record), new_record))
      writes
  in
  let results = Kv.Client.multi_write (Pn.kv t.pn) (List.map (fun (_, _, op, _) -> op) ops) in
  let outcomes = List.map2 (fun (key, w, _, record) result -> (key, w, record, result)) ops results in
  let conflicted =
    List.filter_map
      (fun (key, _, _, result) -> match result with Kv.Op.Conflict -> Some key | _ -> None)
      outcomes
  in
  match conflicted with
  | _ :: _ when !weaken_conflict_detection ->
      (* Mutation mode: a broken conflict detector would blindly merge the
         losing version over whatever won the race instead of aborting.
         The buffer pool is deliberately not told — this path only exists
         to hand the histcheck battery a real lost update. *)
      List.iter
        (fun (key, w, _, result) ->
          match result with
          | Kv.Op.Conflict ->
              let rec force () =
                let merged =
                  match Kv.Client.get (Pn.kv t.pn) key with
                  | None -> (None, Record.add_version Record.empty ~version:t.tid w.w_payload)
                  | Some (data, token) ->
                      (Some token, Record.add_version (Record.decode data) ~version:t.tid w.w_payload)
                in
                match
                  Kv.Client.put_if (Pn.kv t.pn) key (fst merged) (Record.encode (snd merged))
                with
                | `Ok _ -> ()
                | `Conflict -> force ()
              in
              force ()
          | _ -> ())
        outcomes;
      `Applied
  | [] ->
      List.iter
        (fun (_, w, record, result) ->
          match result with
          | Kv.Op.Token token ->
              Buffer_pool.note_applied (Pn.pool t.pn) ~table:w.w_table ~rid:w.w_rid ~record
                ~token ~tid:t.tid
          | _ -> ())
        outcomes;
      `Applied
  | _ :: _ ->
      (* Roll back the updates that did land (§4.3, 4b).  The whole
         write set is swept, not just the [Token] outcomes: an op whose
         first attempt applied but whose reply was lost to a fail-over
         reports [Conflict] on the retry, yet its version is in the
         store.  [remove_version] is idempotent, so sweeping is safe. *)
      List.iter
        (fun (key, _, _, _) -> Rollback.remove_version (Pn.kv t.pn) ~key ~version:t.tid)
        outcomes;
      `Conflict

(* Serializable mode (OCC): every record read but not written must be
   unchanged at commit time.  Validation happens after our own writes are
   applied; of two racing transactions with overlapping read/write sets at
   least one observes the other's applied write and aborts. *)
let validate_read_set t =
  let keys =
    Hashtbl.fold
      (fun key token acc -> if Hashtbl.mem t.writes key then acc else (key, token) :: acc)
      t.read_tokens []
  in
  match keys with
  | [] -> true
  | _ :: _ ->
      let current = Kv.Client.multi_get (Pn.kv t.pn) (List.map fst keys) in
      List.for_all2
        (fun (_, seen) now ->
          match (seen, now) with
          | None, None -> true
          | Some token, Some (_, token') -> token = token'
          | None, Some _ | Some _, None -> false)
        keys current

(* Batched index maintenance: group the commit's index entries per tree
   and hand all groups to one [Btree.insert_many_grouped] call, which
   shares its two batched store round trips across every tree instead of
   paying one full descent per entry. *)
let maintain_indexes t writes =
  let by_index = Hashtbl.create 4 in
  List.iter
    (fun (_, w) ->
      List.iter
        (fun (index, key) ->
          Hashtbl.replace by_index index
            ((key, w.w_rid) :: Option.value ~default:[] (Hashtbl.find_opt by_index index)))
        w.w_index_adds)
    writes;
  Btree.insert_many_grouped
    (Hashtbl.fold
       (fun index entries acc -> (Pn.btree t.pn ~index, List.rev entries) :: acc)
       by_index [])

let commit_applied t ~entry ~writes ~now ~t_apply =
  match apply_writes t writes with
  | `Conflict -> finish_abort t "store-conditional failed"
  | `Applied ->
      Pn.note_commit_phase t.pn ~phase:"apply" ~ops:(List.length writes) (now () - t_apply);
      if t.isolation = Serializable && not (validate_read_set t) then begin
        (* A record we depended on changed: undo our applied writes. *)
        List.iter
          (fun (key, _) -> Rollback.remove_version (Pn.kv t.pn) ~key ~version:t.tid)
          writes;
        finish_abort t "serializable read validation failed"
      end
      else begin
        let t_index = now () in
        maintain_indexes t writes;
        let n_entries =
          List.fold_left (fun acc (_, w) -> acc + List.length w.w_index_adds) 0 writes
        in
        Pn.note_commit_phase t.pn ~phase:"index" ~ops:n_entries (now () - t_index);
        (* The synchronous pipeline ends here (§4.3 step 4a is done):
           flagging the log entry and telling the commit manager are
           deferred to the PN's notifier, which coalesces them with
           the outcomes of concurrent committers.  A delayed
           decided-set can only raise the abort rate (§4.2) — but the
           tid stays claimed until the flag lands: to everyone reading
           the log this commit is indistinguishable from an abort until
           then, and the reclamation sweep arbitrates any unclaimed
           undecided tid exactly that way.  Releasing here would let a
           partition-delayed flush turn an acknowledged commit into a
           rolled-back one. *)
        t.status <- Committed;
        History.note_commit ~tid:t.tid;
        let pn = t.pn and tid = t.tid in
        fire_commit_probe t ~write_set:entry.Txlog.write_set;
        Notifier.enqueue (Pn.notifier t.pn) ~cm:t.cm ~tid:t.tid ~entry
          ~on_settled:(fun () -> Pn.release_tid pn tid)
          ~committed:true ()
      end

let commit t =
  check_running t;
  Pn.charge t.pn (Pn.cost t.pn).cpu_per_commit_ns;
  let writes =
    List.rev_map (fun key -> (key, Hashtbl.find t.writes key)) t.write_order
  in
  match writes with
  | [] ->
      t.status <- Committed;
      History.note_commit ~tid:t.tid;
      Pn.release_tid t.pn t.tid;
      fire_commit_probe t ~write_set:[];
      Notifier.enqueue (Pn.notifier t.pn) ~cm:t.cm ~tid:t.tid ~committed:true ()
  | _ :: _ -> (
      (* Try-commit (§4.3, step 3): log first, then apply. *)
      let entry =
        {
          Txlog.tid = t.tid;
          pn_id = Pn.id t.pn;
          timestamp = Tell_sim.Engine.now (Pn.engine t.pn);
          write_set = List.map fst writes;
          committed = false;
        }
      in
      let now () = Tell_sim.Engine.now (Pn.engine t.pn) in
      try
        let t_log = now () in
        Txlog.append (Pn.kv t.pn) entry;
        Pn.note_commit_phase t.pn ~phase:"log" ~ops:1 (now () - t_log);
        let t_apply = now () in
        commit_applied t ~entry ~writes ~now ~t_apply
      with
      | Conflict _ | Finished | Tell_sim.Engine.Cancelled as e ->
          (* Conflict: finish_abort already cleaned up.  Cancelled: the
             PN died mid-commit; its fiber must not touch the store
             (recovery owns the rollback). *)
          raise e
      | Kv.Op.Fenced _ as e ->
          (* This PN was declared dead while partitioned: the storage
             nodes fence its epoch, so the write bounced.  Recovery has
             already swept (or will decide from the log) everything this
             transaction applied — a rollback from here would bounce off
             the same fence.  Stop being a member and surface the error. *)
          t.status <- Aborted;
          History.note_abort ~tid:t.tid;
          Pn.release_tid t.pn t.tid;
          Pn.poison t.pn;
          raise e
      | e ->
          (* The store became unavailable mid-commit (fail-over in
             progress, client retries exhausted).  The conditional
             writes that did land must not outlive the unflagged log
             entry, or a later reader sees versions of a transaction
             that was never decided.  [remove_version] is idempotent,
             so sweep the whole write set; by the time these (fresh)
             client calls run their own retries, the directory has
             usually been repaired. *)
          (try
             List.iter
               (fun (key, _) -> Rollback.remove_version (Pn.kv t.pn) ~key ~version:t.tid)
               writes
           with Kv.Op.Fenced _ ->
             (* Fenced mid-sweep: recovery owns the rest of it. *)
             Pn.poison t.pn);
          t.status <- Aborted;
          History.note_abort ~tid:t.tid;
          Pn.release_tid t.pn t.tid;
          if Pn.alive t.pn then
            Notifier.enqueue (Pn.notifier t.pn) ~cm:t.cm ~tid:t.tid ~committed:false ();
          raise e)

let abort t =
  check_running t;
  t.status <- Aborted;
  History.note_abort ~tid:t.tid;
  Pn.release_tid t.pn t.tid;
  Notifier.enqueue (Pn.notifier t.pn) ~cm:t.cm ~tid:t.tid ~committed:false ()
