(** Transactions: distributed snapshot isolation with LL/SC conflict
    detection (§4.1, §4.3).

    Life-cycle: {!begin_txn} fetches (tid, snapshot, lav) from a commit
    manager; reads see exactly the versions the snapshot admits; updates
    are buffered on the processing node; {!commit} writes a transaction-log
    entry, applies every buffered update with one store-conditional per
    record (batched per storage node), rolls everything back and aborts on
    the first failed conditional, and otherwise maintains the indexes,
    flags the log entry, and reports to the commit manager.

    Write-write conflicts are detected in two ways, mirroring §4.1: a
    version that is invisible to the snapshot observed at {!update} time
    raises {!Conflict} immediately (the other writer applied first), and
    anything applied after our read fails the LL/SC at commit. *)

type t

exception Conflict of string
(** The transaction lost a write-write race and has been aborted (all its
    applied updates were rolled back, the commit manager was notified). *)

exception Finished
(** Raised when operating on a committed or aborted transaction. *)

type status = Running | Committed | Aborted

type isolation =
  | Snapshot_isolation  (** the paper's protocol (§4.1) *)
  | Serializable
      (** §4.1 lists serializable SI as future work; this mode provides it
          by re-validating the read set at commit (OCC style): the commit
          aborts if any record read (and not written) changed since it was
          read.  Two transactions racing on overlapping read/write sets
          cannot both pass — each validates after its own writes applied —
          so SI's write-skew anomaly cannot commit. *)

val begin_txn : ?isolation:isolation -> Pn.t -> t
val tid : t -> int
val isolation : t -> isolation
val snapshot : t -> Version_set.t
val lav : t -> int
val status : t -> status
val pn : t -> Pn.t

(** {1 Data operations} *)

val read : t -> table:string -> rid:int -> Value.t array option
(** The tuple visible under this snapshot; [None] if absent or deleted.
    Sees the transaction's own buffered writes. *)

val read_record : t -> table:string -> rid:int -> Record.t option
(** All stored versions (no visibility filter) — used by index garbage
    collection; does not include buffered writes. *)

val read_batch : t -> table:string -> rids:int list -> (int * Value.t array) list
(** Visible tuples for many rids with at most one (per storage node)
    round trip — the scan path.  Goes through the shared buffer pool
    ({!Buffer_pool.read_many}), the transaction's own cache and its
    buffered writes.  Missing/invisible rids are omitted. *)

val read_by_pk_multi :
  t -> (string * string * string) list -> (int * Value.t array) option list
(** Fused index→record point reads (§5.1 request batching on the read
    side).  For each [(table, index, encoded_key)] request, resolve the
    first (lowest) rid stored under exactly the key — shared B+tree
    entries merged with this transaction's pending index insertions — and
    read the record it names.  All index leaves are fetched in one
    batched round (shared across every index touched) and all resolved
    records in a second, instead of one traversal plus one record get per
    request.  [None] when the key has no entry or the record is invisible
    under the snapshot; results are in request order.  Observably
    equivalent to [index_lookup] + [read] per request (same rows, same
    read tokens, same recorded history). *)

val read_by_pk_many :
  t -> table:string -> index:string -> keys:string list -> (int * Value.t array) option list
(** {!read_by_pk_multi} over one table/index pair. *)

val index_read_many : t -> index:string -> keys:string list -> (string * int list) list
(** Batched exact-key lookups: all rids stored under each key (ascending,
    own pending insertions merged), the leaves fetched in one batched
    round via [Btree.lookup_many].  Results are in input order. *)

type read_future

val read_async : t -> table:string -> rid:int -> read_future
(** Register a point read without fetching it.  The fetch happens on the
    next {!await} of {e any} future of this transaction, which flushes
    every pending registration in one batched round — so independent
    reads issued back-to-back by one fiber land in the same client
    batching lane instead of paying sequential round trips. *)

val await : t -> read_future -> Value.t array option
(** Resolve a registered read (flushing pending registrations first);
    semantics per key are exactly {!read}. *)

val pending_rows : t -> table:string -> (int * Value.t array) list
(** This transaction's own buffered inserts/updates for [table] (deletes
    excluded) — merged into sequential scans. *)

val insert : t -> table:string -> Value.t array -> int
(** Allocates a rid, buffers the insert, returns the rid. *)

val update : t -> table:string -> rid:int -> Value.t array -> unit
(** Buffers a full-tuple replacement.  Raises {!Conflict} if a version
    invisible to the snapshot already exists. *)

val delete : t -> table:string -> rid:int -> unit

(** {1 Index access} *)

val index_range : t -> index:string -> lo:string -> hi:string -> (string * int) list
(** Entries with [lo <= key < hi] from the shared B+tree, merged with this
    transaction's own pending index insertions. *)

val index_lookup : t -> index:string -> key:string -> int list

val gc_index_entry : t -> index:string -> key:string -> rid:int -> unit
(** Lazy index GC during reads (§5.4): drop the entry if no stored version
    of the record carries [key] anymore. *)

(** {1 Termination} *)

val commit : t -> unit
(** Raises {!Conflict} on write-write conflict (the transaction is then
    aborted); idempotent-safe against double calls via {!Finished}. *)

(** {1 Observation (check harness)} *)

type commit_probe =
  tid:int -> pn_id:int -> snapshot:Version_set.t -> write_set:string list -> unit

val set_commit_probe : commit_probe option -> unit
(** Install a global hook fired once per successful {!commit} — after the
    status flips, before the asynchronous notifier tail — with the
    transaction's tid, its processing node, the snapshot it ran under and
    the record keys it wrote (empty for read-only commits).  The probe
    must not suspend.  Used by the [tell_check] invariant checker;
    zero-cost when unset.  Global state: install/uninstall around each
    harness run. *)

val abort : t -> unit
(** Manual abort: nothing was applied, only the commit manager is told. *)

val write_set_size : t -> int

val unsafe_set_weaken_conflict_detection : bool -> unit
(** Test-only mutation knob for the histcheck battery (DESIGN.md §7):
    when on, the begin-time invisible-version check is skipped and a
    failed commit-time store-conditional is "resolved" by merging the
    losing version over the winner instead of aborting — i.e. conflict
    detection is deliberately broken so lost updates commit.  The SI
    anomaly checker must reject the resulting histories.  Global state;
    never enable outside tests, and always reset in a [Fun.protect]. *)
