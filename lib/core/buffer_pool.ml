module Kv = Tell_kv

type strategy =
  | Transaction_buffer
  | Shared_record_buffer of { capacity : int }
  | Shared_vs_buffer of { capacity : int; unit_size : int }

let strategy_name = function
  | Transaction_buffer -> "TB"
  | Shared_record_buffer _ -> "SB"
  | Shared_vs_buffer { unit_size; _ } -> Printf.sprintf "SBVS%d" unit_size

type entry = {
  mutable record : Record.t;
  mutable token : int;
  mutable validity : Version_set.t;  (* B *)
  mutable last_used : int;  (* LRU clock *)
}

type pool = {
  kv : Kv.Client.t;
  strategy : strategy;
  vmax : unit -> Version_set.t;
  entries : (string, entry) Hashtbl.t;  (* record key -> entry *)
  units : (string, Version_set.t) Hashtbl.t;  (* cached unit cells (SBVS) *)
  decode_memo : (string, int * Record.t) Hashtbl.t;
      (* key -> (LL/SC token, decoded record): pure parse memoisation —
         every strategy still performs its store fetches; only re-decoding
         an unchanged cell is skipped.  Records are immutable. *)
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable extra_requests : int;
}

let create kv strategy ~vmax =
  {
    kv;
    strategy;
    vmax;
    entries = Hashtbl.create 1024;
    units = Hashtbl.create 256;
    decode_memo = Hashtbl.create 4096;
    clock = 0;
    hits = 0;
    misses = 0;
    extra_requests = 0;
  }

let strategy t = t.strategy
let hits t = t.hits
let misses t = t.misses
let extra_requests t = t.extra_requests

let capacity_of = function
  | Transaction_buffer -> 0
  | Shared_record_buffer { capacity } -> capacity
  | Shared_vs_buffer { capacity; _ } -> capacity

let unit_key ~table ~rid ~unit_size = Keys.version_set ~table ~unit_id:(rid / unit_size)

let touch t entry =
  t.clock <- t.clock + 1;
  entry.last_used <- t.clock

(* Cheap LRU: when over capacity, evict the stalest ~1/8 of sampled
   entries.  Exact LRU would need an intrusive list; sampling is what
   production caches (e.g. Redis) do and keeps the hot path O(1). *)
let maybe_evict t =
  let capacity = capacity_of t.strategy in
  if capacity > 0 && Hashtbl.length t.entries > capacity then begin
    let victims = ref [] in
    let n = ref 0 in
    let threshold = t.clock - (capacity / 2) in
    Hashtbl.iter
      (fun key entry ->
        if !n < capacity / 8 && entry.last_used < threshold then begin
          victims := key :: !victims;
          incr n
        end)
      t.entries;
    (match !victims with
    | [] ->
        (* Everything is recent: drop arbitrary entries to bound memory. *)
        let dropped = ref 0 in
        Hashtbl.iter
          (fun key _ -> if !dropped < capacity / 8 then begin
               victims := key :: !victims;
               incr dropped
             end)
          t.entries
    | _ :: _ -> ());
    List.iter (Hashtbl.remove t.entries) !victims
  end

let decode_memo_cap = 16_384

let decode_record t ~key ~data ~token =
  match Hashtbl.find_opt t.decode_memo key with
  | Some (cached_token, record) when cached_token = token -> record
  | _ ->
      let record = Record.decode data in
      if Hashtbl.length t.decode_memo >= decode_memo_cap then Hashtbl.reset t.decode_memo;
      Hashtbl.replace t.decode_memo key (token, record);
      record

let fetch_from_store t ~key =
  match Kv.Client.get t.kv key with
  | None -> None
  | Some (data, token) -> Some (decode_record t ~key ~data ~token, token)

let install t ~key ~record ~token ~validity =
  (match Hashtbl.find_opt t.entries key with
  | Some entry ->
      entry.record <- record;
      entry.token <- token;
      entry.validity <- validity;
      touch t entry
  | None ->
      let entry = { record; token; validity; last_used = 0 } in
      touch t entry;
      Hashtbl.replace t.entries key entry);
  maybe_evict t

(* Fetch from the store and install tagged with V_max: all transactions in
   V_max committed before this fetch, so V_max is a sound validity set. *)
let refetch t ~key =
  let validity = t.vmax () in
  match fetch_from_store t ~key with
  | None ->
      Hashtbl.remove t.entries key;
      None
  | Some (record, token) ->
      install t ~key ~record ~token ~validity;
      Some (record, token)

let read_tb t ~key =
  t.misses <- t.misses + 1;
  fetch_from_store t ~key

let read_sb t ~snapshot ~key =
  match Hashtbl.find_opt t.entries key with
  | Some entry when Version_set.subset snapshot entry.validity ->
      t.hits <- t.hits + 1;
      touch t entry;
      Some (entry.record, entry.token)
  | Some _ | None ->
      t.misses <- t.misses + 1;
      refetch t ~key

let read_sbvs t ~snapshot ~key ~cell_key =
  match Hashtbl.find_opt t.entries key with
  | Some entry when Version_set.subset snapshot entry.validity ->
      t.hits <- t.hits + 1;
      touch t entry;
      Some (entry.record, entry.token)
  | Some entry ->
      (* The cache might be outdated: fetch the unit's version-set cell
         first; if it equals the entry's tag, no write touched the unit
         since the record was tagged and the copy is still valid. *)
      t.extra_requests <- t.extra_requests + 1;
      (match Kv.Client.get t.kv cell_key with
      | Some (cell, _) ->
          let remote = Version_set.decode cell in
          if Version_set.equal remote entry.validity then begin
            t.hits <- t.hits + 1;
            touch t entry;
            Some (entry.record, entry.token)
          end
          else begin
            t.misses <- t.misses + 1;
            (* Order matters: the record is fetched after the cell, so a
               copy tagged [remote] shows every write the cell accounts. *)
            match fetch_from_store t ~key with
            | None ->
                Hashtbl.remove t.entries key;
                None
            | Some (record, token) ->
                install t ~key ~record ~token ~validity:remote;
                Some (record, token)
          end
      | None ->
          t.misses <- t.misses + 1;
          refetch t ~key)
  | None ->
      t.misses <- t.misses + 1;
      refetch t ~key

let read t ~snapshot ~table ~rid =
  let key = Keys.record ~table ~rid in
  match t.strategy with
  | Transaction_buffer -> read_tb t ~key
  | Shared_record_buffer _ -> read_sb t ~snapshot ~key
  | Shared_vs_buffer { unit_size; _ } ->
      read_sbvs t ~snapshot ~key ~cell_key:(unit_key ~table ~rid ~unit_size)

(* Batched read: one store multi-get per miss class instead of one get
   per record, preserving each strategy's semantics exactly.  TB always
   fetches; SB serves entries whose validity covers the snapshot and
   refetches the rest tagged with one V_max computed before the batch
   fetch (every transaction in it committed before any fetch, so it is a
   sound validity for the whole batch); SBVS re-validates stale entries
   against their unit cells — all cells in one round first, then all
   records that still need fetching, so a record tagged with a remote
   cell shows every write the cell accounts.  Results are in input
   order; duplicate keys are the caller's concern (harmless here). *)
let read_many t ~snapshot pairs =
  match pairs with
  | [] -> []
  | _ :: _ -> (
      let keyed = List.map (fun (table, rid) -> (Keys.record ~table ~rid, table, rid)) pairs in
      match t.strategy with
      | Transaction_buffer ->
          t.misses <- t.misses + List.length keyed;
          let replies = Kv.Client.multi_get t.kv (List.map (fun (k, _, _) -> k) keyed) in
          List.map2
            (fun (key, _, _) reply ->
              Option.map (fun (data, token) -> (decode_record t ~key ~data ~token, token)) reply)
            keyed replies
      | Shared_record_buffer _ ->
          let classified =
            List.map
              (fun (key, _, _) ->
                match Hashtbl.find_opt t.entries key with
                | Some entry when Version_set.subset snapshot entry.validity ->
                    t.hits <- t.hits + 1;
                    touch t entry;
                    `Hit (entry.record, entry.token)
                | Some _ | None ->
                    t.misses <- t.misses + 1;
                    `Fetch key)
              keyed
          in
          let misses = List.filter_map (function `Fetch k -> Some k | `Hit _ -> None) classified in
          let fetched = Hashtbl.create 16 in
          (match misses with
          | [] -> ()
          | _ :: _ ->
              let validity = t.vmax () in
              let replies = Kv.Client.multi_get t.kv misses in
              List.iter2
                (fun key reply ->
                  match reply with
                  | None ->
                      Hashtbl.remove t.entries key;
                      Hashtbl.replace fetched key None
                  | Some (data, token) ->
                      let record = decode_record t ~key ~data ~token in
                      install t ~key ~record ~token ~validity;
                      Hashtbl.replace fetched key (Some (record, token)))
                misses replies);
          List.map
            (function
              | `Hit hit -> Some hit
              | `Fetch key -> Option.join (Hashtbl.find_opt fetched key))
            classified
      | Shared_vs_buffer { unit_size; _ } ->
          let classified =
            List.map
              (fun (key, table, rid) ->
                match Hashtbl.find_opt t.entries key with
                | Some entry when Version_set.subset snapshot entry.validity ->
                    t.hits <- t.hits + 1;
                    touch t entry;
                    `Hit (entry.record, entry.token)
                | Some entry -> `Check (key, entry, unit_key ~table ~rid ~unit_size)
                | None ->
                    t.misses <- t.misses + 1;
                    `Fetch (key, None))
              keyed
          in
          (* Round 1: unit cells of every stale entry. *)
          let checks = List.filter_map (function `Check c -> Some c | _ -> None) classified in
          let check_results = Hashtbl.create 8 in
          (match checks with
          | [] -> ()
          | _ :: _ ->
              t.extra_requests <- t.extra_requests + List.length checks;
              let cell_replies =
                Kv.Client.multi_get t.kv (List.map (fun (_, _, ck) -> ck) checks)
              in
              List.iter2
                (fun (key, entry, _) reply ->
                  match reply with
                  | Some (cell, _) ->
                      let remote = Version_set.decode cell in
                      if Version_set.equal remote entry.validity then begin
                        t.hits <- t.hits + 1;
                        touch t entry;
                        Hashtbl.replace check_results key (`Hit (entry.record, entry.token))
                      end
                      else begin
                        t.misses <- t.misses + 1;
                        Hashtbl.replace check_results key (`Fetch (Some remote))
                      end
                  | None ->
                      t.misses <- t.misses + 1;
                      Hashtbl.replace check_results key (`Fetch None))
                checks cell_replies);
          let resolved =
            List.map
              (function
                | `Hit hit -> `Hit hit
                | `Fetch (key, validity) -> `Fetch (key, validity)
                | `Check (key, _, _) -> (
                    match Hashtbl.find_opt check_results key with
                    | Some (`Hit hit) -> `Hit hit
                    | Some (`Fetch validity) -> `Fetch (key, validity)
                    | None -> `Fetch (key, None)))
              classified
          in
          (* Round 2: every record still needing a fetch. *)
          let to_fetch =
            List.filter_map (function `Fetch f -> Some f | `Hit _ -> None) resolved
          in
          let fetched = Hashtbl.create 16 in
          (match to_fetch with
          | [] -> ()
          | _ :: _ ->
              let vmax_validity = t.vmax () in
              let replies = Kv.Client.multi_get t.kv (List.map fst to_fetch) in
              List.iter2
                (fun (key, validity) reply ->
                  match reply with
                  | None ->
                      Hashtbl.remove t.entries key;
                      Hashtbl.replace fetched key None
                  | Some (data, token) ->
                      let record = decode_record t ~key ~data ~token in
                      let validity = Option.value validity ~default:vmax_validity in
                      install t ~key ~record ~token ~validity;
                      Hashtbl.replace fetched key (Some (record, token)))
                to_fetch replies);
          List.map
            (function
              | `Hit hit -> Some hit
              | `Fetch (key, _) -> Option.join (Hashtbl.find_opt fetched key))
            resolved)

(* Grow the unit cell with an LL/SC union loop so that it never shrinks:
   monotonicity is what makes the [B' = B] fast path above sound. *)
let rec grow_unit_cell t ~cell_key ~tid ~attempts =
  if attempts <= 0 then ()
  else begin
    t.extra_requests <- t.extra_requests + 1;
    match Kv.Client.get t.kv cell_key with
    | None -> (
        let fresh = Version_set.add (t.vmax ()) tid in
        match Kv.Client.put_if t.kv cell_key None (Version_set.encode fresh) with
        | `Ok _ -> Hashtbl.replace t.units cell_key fresh
        | `Conflict -> grow_unit_cell t ~cell_key ~tid ~attempts:(attempts - 1))
    | Some (cell, token) -> (
        let merged = Version_set.add (Version_set.union (Version_set.decode cell) (t.vmax ())) tid in
        match Kv.Client.put_if t.kv cell_key (Some token) (Version_set.encode merged) with
        | `Ok _ -> Hashtbl.replace t.units cell_key merged
        | `Conflict -> grow_unit_cell t ~cell_key ~tid ~attempts:(attempts - 1))
  end

let note_applied t ~table ~rid ~record ~token ~tid =
  match t.strategy with
  | Transaction_buffer -> ()
  | Shared_record_buffer _ ->
      let key = Keys.record ~table ~rid in
      let validity = Version_set.add (t.vmax ()) tid in
      install t ~key ~record ~token ~validity
  | Shared_vs_buffer { unit_size; _ } ->
      let key = Keys.record ~table ~rid in
      let cell_key = unit_key ~table ~rid ~unit_size in
      grow_unit_cell t ~cell_key ~tid ~attempts:8;
      let validity =
        match Hashtbl.find_opt t.units cell_key with
        | Some cell -> cell
        | None -> Version_set.add (t.vmax ()) tid
      in
      install t ~key ~record ~token ~validity

let invalidate t ~table ~rid = Hashtbl.remove t.entries (Keys.record ~table ~rid)
