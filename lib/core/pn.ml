module Sim = Tell_sim
module Kv = Tell_kv

type cost_model = {
  cpu_per_read_ns : int;
  cpu_per_write_ns : int;
  cpu_per_commit_ns : int;
  cpu_per_statement_ns : int;
}

let default_cost_model =
  { cpu_per_read_ns = 2_000; cpu_per_write_ns = 3_000; cpu_per_commit_ns = 10_000; cpu_per_statement_ns = 3_000 }

(* How long a commit outcome may sit in the notifier before the flush
   fiber pushes it out.  Calibration rationale in DESIGN.md §3b: short
   enough to stay well under the commit managers' 1 ms sync interval
   (the decided-set delay budget of §4.2), long enough to coalesce the
   outcomes of concurrent committers into one batch. *)
let default_notify_flush_window_ns = 100_000

(* How long the first beginner of a window waits for company before the
   shared [start_many] round trip to the commit manager.  Calibration
   rationale in DESIGN.md §3b: the window trades a bounded added begin
   latency (and a snapshot up to one window stale, which SI tolerates —
   §4.2, at worst a higher abort rate) for one manager RPC per window
   instead of per transaction.  Kept equal to the notify window: both sit
   well under the managers' 1 ms sync interval, so the extra staleness
   vanishes in the §4.2 delay budget.  [calibrate.exe begin] sweeps it. *)
let default_begin_window_ns = 100_000

type rid_range = { mutable next : int; mutable stop : int (* exclusive *) }

type t = {
  cluster : Kv.Cluster.t;
  engine : Sim.Engine.t;
  id : int;
  group : Sim.Engine.Group.t;
  cpu : Sim.Resource.t;
  kv : Kv.Client.t;
  cost : cost_model;
  mutable commit_managers : Commit_manager.t array;
  mutable cm_cursor : int;
  mutable pool : Buffer_pool.pool option;
  buffer_strategy : Buffer_pool.strategy;
  mutable vmax : Version_set.t;
  rid_ranges : (string, rid_range) Hashtbl.t;
  btrees : (string, Btree.t) Hashtbl.t;
  schemas : (string, Schema.table) Hashtbl.t;
  commit_stats : Sim.Stats.Breakdown.t;
  mutable notifier : Notifier.t option;
  begin_window_ns : int;
  mutable begin_window :
    (Commit_manager.t * Commit_manager.start_reply) Sim.Ivar.t list ref option;
      (* open begin window: ivars of the waiters (newest first), or [None]
         when no window is collecting *)
  mutable begins : int;  (* begin_txn calls served *)
  mutable begin_rpcs : int;  (* manager start RPCs actually issued *)
  claimed_tids : (int, unit) Hashtbl.t;
      (* in-flight transactions on this node; the reclamation sweep never
         touches a tid a live node claims *)
  mutable alive : bool;
  mutable fenced : bool;
      (* declared dead by the management node while this PN was (or
         appeared) partitioned: its epoch is fenced on every storage
         node, so it must stop — a poisoned zombie never serves again *)
}

let commit_phases = [ "begin"; "read"; "log"; "apply"; "index"; "notify" ]

let rid_range_size = 64

(* Zombie termination: this node healed from a partition only to find it
   was declared dead — its writes bounce off the epoch fence, and
   recovery has already rolled its in-flight work back.  Crash-stop is
   the only sound reaction: discard undelivered outcomes (recovery owns
   those tids) and kill every fiber.  Idempotent. *)
let poison t =
  if t.alive then begin
    History.note_node ~pn_id:t.id ~what:"poison";
    t.fenced <- true;
    t.alive <- false;
    (match t.notifier with Some n -> Notifier.discard n | None -> ());
    Sim.Engine.Group.kill t.group
  end

let create cluster ~id ?(cores = 4) ?(cost = default_cost_model)
    ?(buffer = Buffer_pool.Transaction_buffer)
    ?(notify_flush_window_ns = default_notify_flush_window_ns)
    ?(begin_window_ns = default_begin_window_ns) ~commit_managers () =
  let engine = Kv.Cluster.engine cluster in
  let label = Printf.sprintf "pn%d" id in
  let group = Sim.Engine.make_group engine label in
  let t =
    {
      cluster;
      engine;
      id;
      group;
      cpu = Sim.Resource.create engine ~servers:cores label;
      kv = Kv.Client.create cluster ~group;
      cost;
      commit_managers = Array.of_list commit_managers;
      cm_cursor = id;
      pool = None;
      buffer_strategy = buffer;
      vmax = Version_set.empty;
      rid_ranges = Hashtbl.create 16;
      btrees = Hashtbl.create 16;
      schemas = Hashtbl.create 16;
      commit_stats = Sim.Stats.Breakdown.create commit_phases;
      notifier = None;
      begin_window_ns;
      begin_window = None;
      begins = 0;
      begin_rpcs = 0;
      claimed_tids = Hashtbl.create 64;
      alive = true;
      fenced = false;
    }
  in
  t.pool <- Some (Buffer_pool.create t.kv buffer ~vmax:(fun () -> t.vmax));
  t.notifier <-
    Some
      (Notifier.create engine ~group ~kv:t.kv ~flush_window_ns:notify_flush_window_ns
         ~on_fenced:(fun () -> poison t)
         ~note:(fun ~ops ns -> Sim.Stats.Breakdown.add ~ops t.commit_stats ~phase:"notify" ns)
         ());
  t

let id t = t.id
let group t = t.group
let claim_tid t tid = Hashtbl.replace t.claimed_tids tid ()
let release_tid t tid = Hashtbl.remove t.claimed_tids tid
let claims t ~tid = Hashtbl.mem t.claimed_tids tid
let kv t = t.kv
let cluster t = t.cluster
let engine t = t.engine
let cost t = t.cost
let alive t = t.alive

let pool t =
  match t.pool with Some p -> p | None -> invalid_arg "Pn.pool: not initialised"

let notifier t =
  match t.notifier with Some n -> n | None -> invalid_arg "Pn.notifier: not initialised"

let crash t =
  History.note_node ~pn_id:t.id ~what:"crash";
  t.alive <- false;
  Sim.Engine.Group.kill t.group

let was_fenced t = t.fenced
let endpoint t = Kv.Client.endpoint t.kv

(* Swap a replaced commit manager for its successor in this PN's routing
   table (physical identity: the dead instance object, not its id, which
   the replacement reuses). *)
let replace_commit_manager t ~dead ~fresh =
  t.commit_managers <-
    Array.map (fun cm -> if cm == dead then fresh else cm) t.commit_managers

let charge t demand = Sim.Resource.use t.cpu ~demand

let commit_stats t = t.commit_stats

let note_commit_phase t ~phase ?(ops = 0) ns =
  Sim.Stats.Breakdown.add ~ops t.commit_stats ~phase ns

let commit_manager t =
  let n = Array.length t.commit_managers in
  if n = 0 then invalid_arg "Pn.commit_manager: none configured";
  let rec pick attempts =
    if attempts = 0 then t.commit_managers.(t.cm_cursor mod n)
    else begin
      let cm = t.commit_managers.(t.cm_cursor mod n) in
      if Commit_manager.alive cm then cm
      else begin
        t.cm_cursor <- t.cm_cursor + 1;
        pick (attempts - 1)
      end
    end
  in
  pick n

(* Begin-window coalescer — the notify-side Notifier's mirror image on
   the begin side.  The first beginner opens a window and becomes its
   leader: it sleeps [begin_window_ns], closes the window {e before}
   suspending on the manager RPC (arrivals from then on open a fresh
   window), issues one [start_many] for the whole batch, claims every
   handed-out tid before any waiter can resume (from the claim to the
   decision the reclamation sweep must treat the tid as live — and
   nothing can suspend between the replies landing and the claims), and
   distributes the replies.  Concurrent beginners within the window just
   park on an ivar.  All transactions of a window share the snapshot
   computed at RPC service time; each gets its own tid.  If the RPC
   fails (manager crashed or unreachable mid-window) every waiter gets
   the exception and no tid was ever claimed or learned, so nothing
   leaks for the reclamation sweep. *)
let begin_start t =
  t.begins <- t.begins + 1;
  if t.begin_window_ns <= 0 then begin
    (* Coalescing disabled: the direct path. *)
    let cm = commit_manager t in
    t.begin_rpcs <- t.begin_rpcs + 1;
    let reply = Commit_manager.start cm ~src:(endpoint t) ~from_group:t.group () in
    claim_tid t reply.Commit_manager.tid;
    (cm, reply)
  end
  else
    match t.begin_window with
    | Some waiters ->
        let iv = Sim.Ivar.create t.engine in
        waiters := iv :: !waiters;
        Sim.Ivar.read iv
    | None ->
        let iv = Sim.Ivar.create t.engine in
        let waiters = ref [ iv ] in
        t.begin_window <- Some waiters;
        let opened = Sim.Engine.now t.engine in
        (try
           Sim.Engine.sleep t.engine t.begin_window_ns;
           t.begin_window <- None;
           let batch = List.rev !waiters in
           let n = List.length batch in
           let cm = commit_manager t in
           t.begin_rpcs <- t.begin_rpcs + 1;
           match
             Commit_manager.start_many cm ~src:(endpoint t) ~from_group:t.group ~count:n ()
           with
           | replies ->
               List.iter
                 (fun (reply : Commit_manager.start_reply) -> claim_tid t reply.tid)
                 replies;
               List.iter2 (fun iv reply -> Sim.Ivar.fill iv (cm, reply)) batch replies;
               note_commit_phase t ~phase:"begin" ~ops:n (Sim.Engine.now t.engine - opened)
           | exception e ->
               (* Manager crashed or unreachable mid-window: every waiter
                  sees the failure; no tid was claimed. *)
               List.iter (fun w -> Sim.Ivar.fill_exn w e) batch
         with e ->
           (* The leader itself died in the window (its group was killed)
              or failed before the RPC: close the window and fail every
              waiter not yet answered.  A waiter whose own group is still
              alive sees the node-begin failure, not our cancellation. *)
           (match t.begin_window with
           | Some w when w == waiters -> t.begin_window <- None
           | Some _ | None -> ());
           let failure =
             match e with Sim.Engine.Cancelled -> Kv.Op.Unavailable (endpoint t) | e -> e
           in
           List.iter
             (fun w -> if not (Sim.Ivar.is_filled w) then Sim.Ivar.fill_exn w failure)
             !waiters;
           raise e);
        Sim.Ivar.read iv

let begin_stats t = (t.begins, t.begin_rpcs)

let note_started_snapshot t snapshot =
  if Version_set.base snapshot >= Version_set.base t.vmax then t.vmax <- snapshot

let vmax t = t.vmax

let alloc_rid t ~table =
  let range =
    match Hashtbl.find_opt t.rid_ranges table with
    | Some r -> r
    | None ->
        let r = { next = 1; stop = 1 } in
        Hashtbl.replace t.rid_ranges table r;
        r
  in
  if range.next >= range.stop then begin
    let top = Kv.Client.increment t.kv (Keys.rid_counter ~table) rid_range_size in
    range.next <- top - rid_range_size + 1;
    range.stop <- top + 1
  end;
  let rid = range.next in
  range.next <- rid + 1;
  rid

let max_rid t ~table =
  match Kv.Client.get t.kv (Keys.rid_counter ~table) with
  | Some (data, _) when String.length data = 8 -> Int64.to_int (String.get_int64_le data 0)
  | Some _ | None -> 0

let btree t ~index =
  match Hashtbl.find_opt t.btrees index with
  | Some handle -> handle
  | None ->
      let handle = Btree.attach t.kv ~name:index in
      Hashtbl.replace t.btrees index handle;
      handle

let schema t ~table =
  match Hashtbl.find_opt t.schemas table with
  | Some s -> s
  | None -> (
      match Kv.Client.get t.kv (Keys.schema ~table) with
      | Some (data, _) ->
          let s = Schema.decode_table data in
          Hashtbl.replace t.schemas table s;
          s
      | None -> raise (Schema.Schema_error (Printf.sprintf "unknown table %s" table)))

let forget_schema t ~table = Hashtbl.remove t.schemas table
