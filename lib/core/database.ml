module Sim = Tell_sim
module Kv = Tell_kv

type t = {
  engine : Sim.Engine.t;
  cluster : Kv.Cluster.t;
  mutable cms : Commit_manager.t list;
  mutable pns : Pn.t list;
  mutable crashed_pns : Pn.t list;
  mutable next_pn_id : int;
  mutable next_cm_id : int;
  cm_sync_interval_ns : int;
  cm_range_size : int;
  recovery : Recovery.t Lazy.t;
  gc : Gc_task.t Lazy.t;
}

let create engine ?(kv_config = Kv.Cluster.default_config) ?(n_commit_managers = 1)
    ?(cm_sync_interval_ns = 1_000_000) ?(cm_range_size = 64) () =
  let cluster = Kv.Cluster.create engine kv_config in
  Kv.Cluster.start_failure_detector cluster;
  (* §5.2 extension: selection/projection push-down into storage nodes. *)
  Kv.Cluster.set_pushdown_evaluator cluster Pushdown.evaluator;
  let peer_ids = List.init n_commit_managers (fun i -> i) in
  let cms =
    List.map
      (fun id ->
        Commit_manager.create cluster ~id ~peers:peer_ids ~range_size:cm_range_size
          ~sync_interval_ns:cm_sync_interval_ns ())
      peer_ids
  in
  let rec t =
    {
      engine;
      cluster;
      cms;
      pns = [];
      crashed_pns = [];
      next_pn_id = 0;
      next_cm_id = n_commit_managers;
      cm_sync_interval_ns;
      cm_range_size;
      recovery =
        lazy
          (match t.cms with
          | cm :: _ -> Recovery.create t.cluster ~cm
          | [] -> invalid_arg "Database: no commit manager");
      gc =
        lazy
          (match t.cms with
          | cm :: _ ->
              Gc_task.create t.cluster ~cm ~group:(Kv.Cluster.mgmt_group t.cluster)
          | [] -> invalid_arg "Database: no commit manager");
    }
  in
  t

let engine t = t.engine
let cluster t = t.cluster
let commit_managers t = t.cms
let pns t = t.pns

let add_pn t ?cores ?cost ?buffer ?notify_flush_window_ns () =
  let pn =
    Pn.create t.cluster ~id:t.next_pn_id ?cores ?cost ?buffer ?notify_flush_window_ns
      ~commit_managers:t.cms ()
  in
  t.next_pn_id <- t.next_pn_id + 1;
  t.pns <- t.pns @ [ pn ];
  pn

let add_commit_manager t =
  let id = t.next_cm_id in
  t.next_cm_id <- id + 1;
  let peers = id :: List.map Commit_manager.id t.cms in
  let cm =
    Commit_manager.create t.cluster ~id ~peers ~range_size:t.cm_range_size
      ~sync_interval_ns:t.cm_sync_interval_ns ()
  in
  Commit_manager.recover cm;
  t.cms <- t.cms @ [ cm ];
  cm

let crash_pn t pn =
  Pn.crash pn;
  t.pns <- List.filter (fun p -> Pn.id p <> Pn.id pn) t.pns;
  t.crashed_pns <- pn :: t.crashed_pns

let crash_storage_node t sn_id = Kv.Cluster.crash_node t.cluster sn_id

let recover_crashed_pns t =
  match t.crashed_pns with
  | [] -> 0
  | crashed ->
      let recovery = Lazy.force t.recovery in
      let before = Recovery.recovered_txns recovery in
      Recovery.recover_processing_nodes recovery ~failed_pn_ids:(List.map Pn.id crashed);
      t.crashed_pns <- [];
      Recovery.recovered_txns recovery - before

let tables t =
  match t.pns with
  | [] -> []
  | pn :: _ ->
      let cells = Kv.Client.scan_all (Pn.kv pn) ~prefix:"s/" in
      List.map (fun (_, data, _) -> Schema.decode_table data) cells

let gc t = Lazy.force t.gc

let with_txn pn f =
  let txn = Txn.begin_txn pn in
  match f txn with
  | result ->
      if Txn.status txn = Txn.Running then Txn.commit txn;
      (* [Txn.commit] returns once the updates are applied; the log flag
         and the commit-manager notification run in the PN's notifier.
         Callers of [with_txn] expect a durable, globally visible commit
         on return (the crash-recovery tests rely on it), so flush the
         asynchronous tail before handing the result back. *)
      Notifier.drain (Pn.notifier pn);
      result
  | exception e ->
      (match e with
      | Txn.Conflict _ -> ()  (* commit already aborted the transaction *)
      | _ -> if Txn.status txn = Txn.Running then ( try Txn.abort txn with _ -> () ));
      (try Notifier.drain (Pn.notifier pn) with _ -> ());
      raise e

let with_txn_retry ?(attempts = 16) pn f =
  let rec go n =
    match with_txn pn f with
    | result -> result
    | exception Txn.Conflict _ when n > 1 -> go (n - 1)
  in
  go attempts

let exec_in txn sql = Sql_plan.execute_string txn sql

let exec pn sql =
  let statement = Sql_parser.parse sql in
  match statement with
  | Sql_ast.Create_table _ | Sql_ast.Create_index _ ->
      (* DDL is not transactional: execute directly. *)
      let txn = Txn.begin_txn pn in
      let result = Sql_plan.execute txn statement in
      Txn.commit txn;
      Notifier.drain (Pn.notifier pn);
      result
  | _ -> with_txn pn (fun txn -> Sql_plan.execute txn statement)

let rows = function
  | Sql_plan.Rows { rows; _ } -> rows
  | Sql_plan.Affected _ | Sql_plan.Created -> []
