module Sim = Tell_sim
module Kv = Tell_kv

type t = {
  engine : Sim.Engine.t;
  cluster : Kv.Cluster.t;
  mutable cms : Commit_manager.t list;
  mutable pns : Pn.t list;
  mutable crashed_pns : Pn.t list;
  mutable next_pn_id : int;
  mutable next_cm_id : int;
  cm_sync_interval_ns : int;
  cm_range_size : int;
  recovery : Recovery.t Lazy.t;
  gc : Gc_task.t Lazy.t;
}



(* Tid-range reclamation (§4.4.3).  Every handed-out tid must eventually
   be decided or snapshot bases stop advancing — and with them version GC
   and every manager's visibility floor.  Two leaks survive the normal
   paths: a crashed manager's reserved-but-unhanded range tail (nobody
   else knows it existed), and a tid whose transaction died together with
   both its manager and its node.  The management node sweeps for them: a
   tid below the counter top that is undecided, outside every live
   manager's current range span and claimed by no live processing node
   can never be decided by anyone else.  The transaction log arbitrates
   exactly like PN recovery does: flagged entry = committed, anything
   else = aborted.  A tid is only reclaimed after it was eligible in two
   consecutive rounds, because a freshly assigned tid is unclaimed while
   the manager's reply is still in flight (bounded by one network delay,
   far below the sweep interval).

   The claim check is load-bearing for partitions, not just for in-flight
   handouts: a committed transaction keeps its tid claimed until the
   notifier lands the log flag (Notifier [on_settled]).  A partition can
   delay that flag for many sweep rounds, during which the log still
   reads "aborted" — without the claim the sweep would roll back an
   acknowledged commit (and the later flag would advertise a committed
   transaction whose versions are gone).

   An unflagged log entry is rolled back here, before the abort decision
   is published: deciding first would advance snapshot bases past the
   tid, making its half-applied versions visible to every future reader
   — and hiding the entry from the PN-recovery log scan, which starts at
   the lav. *)
let start_tid_reclamation t =
  let mgmt = Kv.Cluster.mgmt_group t.cluster in
  let kv = Kv.Client.create t.cluster ~group:mgmt in
  let suspects = Hashtbl.create 64 in
  Sim.Engine.spawn t.engine ~group:mgmt (fun () ->
      while true do
        Sim.Engine.sleep t.engine 1_000_000;
        match List.filter Commit_manager.alive t.cms with
        | [] -> ()
        | (cm :: _) as live_cms -> (
            try
            let vs = Commit_manager.current_snapshot cm in
            let base = Version_set.base vs in
            let top = Kv.Client.increment kv Keys.tid_counter 0 in
            let spans = List.map Commit_manager.range_span live_cms in
            let committed = ref [] and aborted = ref [] in
            for tid = base + 1 to top do
              if
                (not (Version_set.mem vs tid))
                && (not (List.exists (fun (a, b) -> tid >= a && tid < b) spans))
                && not (List.exists (fun pn -> Pn.claims pn ~tid) t.pns)
              then
                if Hashtbl.mem suspects tid then begin
                  Hashtbl.remove suspects tid;
                  match Txlog.find kv ~tid with
                  | Some (entry : Txlog.entry) when entry.committed ->
                      committed := tid :: !committed
                  | Some entry ->
                      List.iter
                        (fun key -> Rollback.remove_version kv ~key ~version:tid)
                        entry.write_set;
                      History.note_rolled_back ~tid;
                      aborted := tid :: !aborted
                  | None ->
                      History.note_rolled_back ~tid;
                      aborted := tid :: !aborted
                end
                else Hashtbl.replace suspects tid ()
              else Hashtbl.remove suspects tid
            done;
            if !committed <> [] || !aborted <> [] then
              List.iter
                (fun cm ->
                  try
                    Commit_manager.set_decided_batch cm ~src:Kv.Cluster.mgmt_endpoint
                      ~committed:!committed ~aborted:!aborted ()
                  with Kv.Op.Unavailable _ -> ())
                live_cms
            with Kv.Op.Unavailable _ ->
              (* The store is unreachable (a management-node link is cut or
                 a fail-over is in flight): skip this round, the suspect
                 table keeps its state for the next one. *)
              ())
      done)

let create engine ?(kv_config = Kv.Cluster.default_config) ?(n_commit_managers = 1)
    ?(cm_sync_interval_ns = 1_000_000) ?(cm_range_size = 64) () =
  let cluster = Kv.Cluster.create engine kv_config in
  Kv.Cluster.start_failure_detector cluster;
  (* §5.2 extension: selection/projection push-down into storage nodes. *)
  Kv.Cluster.set_pushdown_evaluator cluster Pushdown.evaluator;
  let peer_ids = List.init n_commit_managers (fun i -> i) in
  let cms =
    List.map
      (fun id ->
        Commit_manager.create cluster ~id ~peers:peer_ids ~range_size:cm_range_size
          ~sync_interval_ns:cm_sync_interval_ns ())
      peer_ids
  in
  let rec t =
    {
      engine;
      cluster;
      cms;
      pns = [];
      crashed_pns = [];
      next_pn_id = 0;
      next_cm_id = n_commit_managers;
      cm_sync_interval_ns;
      cm_range_size;
      recovery =
        lazy
          (match t.cms with
          | cm :: _ -> Recovery.create t.cluster ~cm
          | [] -> invalid_arg "Database: no commit manager");
      gc =
        lazy
          (match t.cms with
          | cm :: _ ->
              Gc_task.create t.cluster ~cm ~group:(Kv.Cluster.mgmt_group t.cluster)
          | [] -> invalid_arg "Database: no commit manager");
    }
  in
  start_tid_reclamation t;
  t

let engine t = t.engine
let cluster t = t.cluster
let commit_managers t = t.cms
let pns t = t.pns

let add_pn t ?cores ?cost ?buffer ?notify_flush_window_ns ?begin_window_ns () =
  let pn =
    Pn.create t.cluster ~id:t.next_pn_id ?cores ?cost ?buffer ?notify_flush_window_ns
      ?begin_window_ns ~commit_managers:t.cms ()
  in
  t.next_pn_id <- t.next_pn_id + 1;
  t.pns <- t.pns @ [ pn ];
  pn

let add_commit_manager t =
  let id = t.next_cm_id in
  t.next_cm_id <- id + 1;
  let peers = id :: List.map Commit_manager.id t.cms in
  let cm =
    Commit_manager.create t.cluster ~id ~peers ~range_size:t.cm_range_size
      ~sync_interval_ns:t.cm_sync_interval_ns ()
  in
  Commit_manager.recover cm;
  t.cms <- t.cms @ [ cm ];
  cm

(* The replacement takes over the dead manager's identity — its id and
   published-state slot — so surviving peers resume merging its decisions
   and the reclamation sweep keeps watching it (§4.4.3). *)
let replace_commit_manager t ~dead =
  let fresh =
    Recovery.replace_commit_manager t.cluster ~dead:(Commit_manager.id dead)
      ~fresh_id:(Commit_manager.id dead)
      ~peers:(List.map Commit_manager.id t.cms)
  in
  t.cms <- List.map (fun cm -> if cm == dead then fresh else cm) t.cms;
  (* Re-point every processing node's routing table: the PNs hold the
     dead instance by physical identity, and a node that kept calling it
     would see permanent [Unavailable] on a manager id that is healthy
     again. *)
  List.iter (fun pn -> Pn.replace_commit_manager pn ~dead ~fresh) t.pns;
  fresh

let crash_pn t pn =
  Pn.crash pn;
  t.pns <- List.filter (fun p -> Pn.id p <> Pn.id pn) t.pns;
  t.crashed_pns <- pn :: t.crashed_pns

let crash_storage_node t sn_id = Kv.Cluster.crash_node t.cluster sn_id

(* Release the tids of dead transaction owners from every live manager's
   active table: fibers killed by a crash or poison can never decide
   their tids through the normal path, and an undecided active wedges
   the lav.  (A dead manager's own sweep must wait for its replacement:
   its kv client can no longer run.) *)
let release_dead_actives t =
  List.iter
    (fun cm ->
      if Commit_manager.alive cm then ignore (Commit_manager.release_dead_actives cm))
    t.cms

let recover_crashed_pns t =
  let recovery = Lazy.force t.recovery in
  let before = Recovery.recovered_txns recovery in
  (match t.crashed_pns with
  | [] -> ()
  | crashed ->
      Recovery.recover_processing_nodes recovery
        ~failed_pn_ids:(List.map Pn.id crashed);
      t.crashed_pns <- []);
  (* Run the sweep even when no crash is pending: a zombie poisoned since
     the last pass (fenced, then killed by its own bounce) leaves dead-
     group actives behind without ever passing through [crash_pn]. *)
  release_dead_actives t;
  Recovery.recovered_txns recovery - before

(* Declare a processing node dead on a failure detector's say-so —
   without killing it.  This is the false-suspicion path: the node may be
   alive behind a partition.  The recovery pass fences its epoch on every
   storage node {e before} rolling its transactions back, so writes the
   zombie still has in flight bounce ([Fenced]) instead of landing in
   state we just declared recovered; the zombie poisons itself on the
   first bounce.  Returns the number of transactions rolled back. *)
let declare_pn_dead t pn =
  t.pns <- List.filter (fun p -> p != pn) t.pns;
  let recovery = Lazy.force t.recovery in
  let before = Recovery.recovered_txns recovery in
  Recovery.recover_processing_nodes recovery ~failed_pn_ids:[ Pn.id pn ];
  (* The declared node's fibers may still be running behind the cut, so
     the dead-group sweep does not cover its undecided actives: release
     them by owner group — the log arbitrates, exactly as for a crash. *)
  List.iter
    (fun cm ->
      if Commit_manager.alive cm then
        ignore (Commit_manager.release_group_actives cm ~group:(Pn.group pn)))
    t.cms;
  Recovery.recovered_txns recovery - before

let tables t =
  match t.pns with
  | [] -> []
  | pn :: _ ->
      let cells = Kv.Client.scan_all (Pn.kv pn) ~prefix:"s/" in
      List.map (fun (_, data, _) -> Schema.decode_table data) cells

let gc t = Lazy.force t.gc

let with_txn pn f =
  let txn = Txn.begin_txn pn in
  match f txn with
  | result ->
      if Txn.status txn = Txn.Running then Txn.commit txn;
      (* [Txn.commit] returns once the updates are applied; the log flag
         and the commit-manager notification run in the PN's notifier.
         Callers of [with_txn] expect a durable, globally visible commit
         on return (the crash-recovery tests rely on it), so flush the
         asynchronous tail before handing the result back. *)
      Notifier.drain (Pn.notifier pn);
      result
  | exception e ->
      (match e with
      | Txn.Conflict _ -> ()  (* commit already aborted the transaction *)
      | _ -> if Txn.status txn = Txn.Running then ( try Txn.abort txn with _ -> () ));
      (try Notifier.drain (Pn.notifier pn) with _ -> ());
      raise e

let with_txn_retry ?(attempts = 16) pn f =
  let rec go n =
    match with_txn pn f with
    | result -> result
    | exception Txn.Conflict _ when n > 1 -> go (n - 1)
  in
  go attempts

let exec_in txn sql = Sql_plan.execute_string txn sql

let exec pn sql =
  let statement = Sql_parser.parse sql in
  match statement with
  | Sql_ast.Create_table _ | Sql_ast.Create_index _ ->
      (* DDL is not transactional: execute directly. *)
      let txn = Txn.begin_txn pn in
      let result = Sql_plan.execute txn statement in
      Txn.commit txn;
      Notifier.drain (Pn.notifier pn);
      result
  | _ -> with_txn pn (fun txn -> Sql_plan.execute txn statement)

let rows = function
  | Sql_plan.Rows { rows; _ } -> rows
  | Sql_plan.Affected _ | Sql_plan.Created -> []
