(** The transaction log (§4.3 step 3, §4.4.1): an ordered map of entries
    in the shared store, keyed by tid.  A transaction appends its entry —
    processing-node id, timestamp, write set — before applying any update
    and flags it on commit; recovery rolls back unflagged entries of
    failed processing nodes, scanning no further back than the lav (the
    rolling checkpoint). *)

type entry = {
  tid : int;
  pn_id : int;
  timestamp : int;
  write_set : string list;  (** record keys *)
  committed : bool;
}

val encode : entry -> string
(** Byte 0 is the commit flag, so readers can test it without a full
    decode (the commit-manager recovery path relies on this). *)

val decode : tid:int -> string -> entry
val append : Tell_kv.Client.t -> entry -> unit
val mark_committed : Tell_kv.Client.t -> entry -> unit

(** Flag a batch of entries with one multi-write: one request per storage
    node touched rather than one per entry. *)
val mark_committed_many : Tell_kv.Client.t -> entry list -> unit

val find : Tell_kv.Client.t -> tid:int -> entry option
val scan : Tell_kv.Client.t -> min_tid:int -> entry list
val truncate_below : Tell_kv.Client.t -> min_tid:int -> unit
