(* Transaction log (§4.3 step 3, §4.4.1).

   An ordered map of entries in the shared store, keyed by tid.  Before a
   transaction applies any update it appends an entry with its processing
   node id, a timestamp, and the write set (the list of updated record
   keys); on success a commit flag is set.  The recovery process iterates
   the log backwards from the highest tid to the lav and rolls back
   partially applied transactions of failed processing nodes.

   Entry layout: byte 0 is the commit flag so that readers (including the
   commit-manager recovery path) can test it without a full decode. *)

module Kv = Tell_kv

type entry = {
  tid : int;
  pn_id : int;
  timestamp : int;
  write_set : string list;  (* record keys *)
  committed : bool;
}

let encode e =
  let buf = Buffer.create 128 in
  Buffer.add_char buf (if e.committed then '\x01' else '\x00');
  Codec.put_int buf e.pn_id;
  Codec.put_int buf e.timestamp;
  Codec.put_int buf (List.length e.write_set);
  List.iter (Codec.put_string buf) e.write_set;
  Buffer.contents buf

let decode ~tid s =
  let committed = s.[0] = '\x01' in
  let pn_id, pos = Codec.get_int s 1 in
  let timestamp, pos = Codec.get_int s pos in
  let n, pos = Codec.get_int s pos in
  let pos = ref pos in
  let write_set =
    List.init n (fun _ ->
        let key, p = Codec.get_string s !pos in
        pos := p;
        key)
  in
  { tid; pn_id; timestamp; write_set; committed }

let append kv entry = Kv.Client.put kv (Keys.log_entry ~tid:entry.tid) (encode entry)

let mark_committed kv entry = Kv.Client.put kv (Keys.log_entry ~tid:entry.tid) (encode { entry with committed = true })

let mark_committed_many kv entries =
  match entries with
  | [] -> ()
  | _ ->
      ignore
        (Kv.Client.multi_write kv
           (List.map
              (fun e -> Kv.Op.Put (Keys.log_entry ~tid:e.tid, encode { e with committed = true }))
              entries))

let find kv ~tid =
  match Kv.Client.get kv (Keys.log_entry ~tid) with
  | Some (data, _) -> Some (decode ~tid data)
  | None -> None

let scan kv ~min_tid =
  let raw = Kv.Client.scan_all kv ~prefix:Keys.log_prefix in
  List.filter_map
    (fun (key, data, _) ->
      let tid = Keys.tid_of_log_key key in
      if tid >= min_tid then Some (decode ~tid data) else None)
    raw

let truncate_below kv ~min_tid =
  let raw = Kv.Client.scan_all kv ~prefix:Keys.log_prefix in
  List.iter
    (fun (key, _, _) ->
      if Keys.tid_of_log_key key < min_tid then
        ignore (Kv.Client.remove_if kv key None))
    raw
