module Sim = Tell_sim
module Kv = Tell_kv
module ISet = Set.Make (Int)

type start_reply = { tid : int; snapshot : Version_set.t; lav : int }

type t = {
  cluster : Kv.Cluster.t;
  engine : Sim.Engine.t;
  id : int;
  peers : int list;
  group : Sim.Engine.Group.t;
  cpu : Sim.Resource.t;
  kv : Kv.Client.t;
  range_size : int;
  sync_interval_ns : int;
  retire_after_ns : int;
  mutable range_start : int;  (* first tid of the current range *)
  mutable range_next : int;
  mutable range_end : int;  (* exclusive *)
  mutable range_acquired_at : int;
  mutable range_refill : unit Sim.Ivar.t option;
  mutable decided_base : int;
  decided : (int, bool) Hashtbl.t;  (* tid > decided_base -> committed? *)
  mutable committed_above : ISet.t;
  mutable cached_snapshot : Version_set.t option;
  active : (int, int * Sim.Engine.Group.t) Hashtbl.t;
      (* tid -> (snapshot base at start, originating PN's fiber group) *)
  mutable peer_lavs : (int, int) Hashtbl.t;
  mutable alive : bool;
  mutable fenced : bool;
      (* this instance's lease over its tid range was revoked: a
         replacement took over its identity while it was partitioned *)
}

let make cluster ~id ?(peers = []) ?(range_size = 64) ?(sync_interval_ns = 1_000_000) () =
  let engine = Kv.Cluster.engine cluster in
  let label = Printf.sprintf "cm%d" id in
  let group = Sim.Engine.make_group engine label in
  let t =
    {
      cluster;
      engine;
      id;
      peers = List.filter (fun p -> p <> id) peers;
      group;
      cpu = Sim.Resource.create engine ~servers:2 label;
      kv = Kv.Client.create cluster ~group;
      range_size;
      sync_interval_ns;
      retire_after_ns = 4 * sync_interval_ns;
      range_start = 1;
      range_next = 1;
      range_end = 1;
      range_acquired_at = 0;
      range_refill = None;
      decided_base = 0;
      decided = Hashtbl.create 256;
      committed_above = ISet.empty;
      cached_snapshot = None;
      active = Hashtbl.create 64;
      peer_lavs = Hashtbl.create 4;
      alive = true;
      fenced = false;
    }
  in
  (* Until a peer has published its state, its lav is unknown: treat it
     as 0, not as absent.  Otherwise [global_lav] overestimates during
     the gap (it would ignore a peer whose oldest active transaction
     still holds a low snapshot base) and eager record GC could compact
     versions that transaction can still read.  Initialising to 0 also
     makes the advertised lav monotone: late peer news can only raise
     it. *)
  List.iter (fun p -> Hashtbl.replace t.peer_lavs p 0) t.peers;
  t

let id t = t.id
let alive t = t.alive
let was_fenced t = t.fenced

let crash t =
  t.alive <- false;
  Sim.Engine.Group.kill t.group

(* The manager's lease over its tid range is the epoch fence on its own
   store writes: when the management node replaces it, every store write
   it attempts — extending its range, publishing its state — bounces
   [Fenced].  On the first bounce the instance must stop acting as a
   manager (the replacement owns its identity now); a zombie that kept
   handing out tids from its stale range would race the replacement. *)
let self_fence t =
  if t.alive then begin
    t.fenced <- true;
    t.alive <- false;
    Sim.Engine.Group.kill t.group
  end

(* --- snapshot bookkeeping ------------------------------------------------ *)

let invalidate t = t.cached_snapshot <- None

let advance_base t =
  let advanced = ref false in
  while Hashtbl.mem t.decided (t.decided_base + 1) do
    Hashtbl.remove t.decided (t.decided_base + 1);
    t.decided_base <- t.decided_base + 1;
    t.committed_above <- ISet.remove t.decided_base t.committed_above;
    advanced := true
  done;
  if !advanced then invalidate t

let mark_decided t ~tid ~committed =
  if tid > t.decided_base && not (Hashtbl.mem t.decided tid) then begin
    Hashtbl.replace t.decided tid committed;
    if committed then t.committed_above <- ISet.add tid t.committed_above;
    invalidate t;
    advance_base t
  end

let snapshot_of_state t =
  match t.cached_snapshot with
  | Some s -> s
  | None ->
      let s =
        ISet.fold
          (fun tid acc -> Version_set.add acc tid)
          t.committed_above
          (Version_set.of_base t.decided_base)
      in
      t.cached_snapshot <- Some s;
      s

let local_lav t =
  Hashtbl.fold (fun _ (b, _) acc -> min b acc) t.active t.decided_base

let global_lav t =
  Hashtbl.fold (fun _ lav acc -> min lav acc) t.peer_lavs (local_lav t)

(* --- tid ranges ----------------------------------------------------------- *)

let acquire_range t =
  let top = Kv.Client.increment t.kv Keys.tid_counter t.range_size in
  t.range_start <- top - t.range_size + 1;
  t.range_next <- t.range_start;
  t.range_end <- top + 1;
  t.range_acquired_at <- Sim.Engine.now t.engine

(* Acquiring a range suspends on a store round trip, so concurrent
   [start] calls must not each fetch their own range (the overwritten
   ranges would hold every snapshot's base back forever): the first caller
   refills, the others wait on the refill ivar and retry. *)
let rec next_tid t =
  if t.range_next < t.range_end then begin
    let tid = t.range_next in
    t.range_next <- tid + 1;
    tid
  end
  else begin
    match t.range_refill with
    | Some refill ->
        Sim.Ivar.read refill;
        next_tid t
    | None ->
        let refill = Sim.Ivar.create t.engine in
        t.range_refill <- Some refill;
        Fun.protect
          ~finally:(fun () ->
            t.range_refill <- None;
            Sim.Ivar.fill refill ())
          (fun () -> acquire_range t);
        next_tid t
  end

(* Give back the unassigned tail of a stale range by declaring those tids
   aborted: otherwise an idle commit manager blocks every snapshot's base
   from advancing past its reserved range. *)
let retire_stale_range t =
  if
    t.range_next < t.range_end
    && Sim.Engine.now t.engine - t.range_acquired_at > t.retire_after_ns
  then begin
    for tid = t.range_next to t.range_end - 1 do
      mark_decided t ~tid ~committed:false
    done;
    t.range_next <- t.range_end
  end

(* --- state publication and merge (§4.2) ----------------------------------- *)

let encode_state t =
  let buf = Buffer.create 256 in
  Codec.put_int buf t.decided_base;
  Codec.put_int buf (Hashtbl.length t.decided);
  Hashtbl.iter
    (fun tid committed ->
      Codec.put_int buf tid;
      Buffer.add_char buf (if committed then '\x01' else '\x00'))
    t.decided;
  Codec.put_int buf (local_lav t);
  Buffer.contents buf

let decode_state s =
  let base, pos = Codec.get_int s 0 in
  let n, pos = Codec.get_int s pos in
  let pos = ref pos in
  let decided =
    List.init n (fun _ ->
        let tid, p = Codec.get_int s !pos in
        let committed = s.[p] = '\x01' in
        pos := p + 1;
        (tid, committed))
  in
  let lav, _ = Codec.get_int s !pos in
  (base, decided, lav)

let merge_peer_state t ~peer ~state =
  let peer_base, decided, peer_lav = decode_state state in
  if peer_base > t.decided_base then begin
    (* Everything up to the peer's base is decided; commit status of the
       skipped ids is irrelevant because aborted updates were rolled back
       before being reported. *)
    t.decided_base <- peer_base;
    let stale = Hashtbl.fold (fun tid _ acc -> if tid <= peer_base then tid :: acc else acc) t.decided [] in
    List.iter (Hashtbl.remove t.decided) stale;
    t.committed_above <- ISet.filter (fun v -> v > peer_base) t.committed_above;
    invalidate t
  end;
  List.iter (fun (tid, committed) -> mark_decided t ~tid ~committed) decided;
  Hashtbl.replace t.peer_lavs peer peer_lav

let publish_state t = Kv.Client.put t.kv (Keys.commit_manager_state ~cm_id:t.id) (encode_state t)

let pull_peer_states t =
  match t.peers with
  | [] -> ()
  | peers ->
      let keys = List.map (fun p -> Keys.commit_manager_state ~cm_id:p) peers in
      let replies = Kv.Client.multi_get t.kv keys in
      List.iter2
        (fun peer reply ->
          match reply with
          | Some (state, _token) -> merge_peer_state t ~peer ~state
          | None -> ())
        peers replies

let start_sync_fiber t =
  Sim.Engine.spawn t.engine ~group:t.group (fun () ->
      while t.alive do
        Sim.Engine.sleep t.engine t.sync_interval_ns;
        retire_stale_range t;
        try
          publish_state t;
          pull_peer_states t
        with
        | Kv.Op.Unavailable _ ->
            (* Partitioned from the store: skip this round and try again —
               peers tolerate a stale published state (it only delays
               snapshot advance). *)
            ()
        | Kv.Op.Fenced _ ->
            (* Our lease is gone: a replacement owns this identity. *)
            self_fence t
      done)

(* --- remote interface ------------------------------------------------------ *)

let endpoint t = Printf.sprintf "cm%d" t.id

(* [src]: the caller's link endpoint.  With it, the request and reply
   travel as identity-carrying messages subject to the network fault
   plan (cuts, loss); without it the legacy reliable-transfer path is
   used (tests and local callers).  [on_reply_lost] runs when the call
   executed but its reply was dropped — the manager's chance to
   compensate for a result the caller will never learn. *)
let rpc t ?src ?on_reply_lost ~demand f =
  let net = Kv.Cluster.net t.cluster in
  let timeout_ns = (Kv.Cluster.config t.cluster).client_timeout_ns in
  let unavailable () =
    Sim.Engine.sleep t.engine timeout_ns;
    raise (Kv.Op.Unavailable (endpoint t))
  in
  (match src with
  | None -> Sim.Net.transfer net ~bytes:48
  | Some src -> (
      match Sim.Net.send net ~src ~dst:(endpoint t) ~bytes:48 with
      | `Delivered -> ()
      | `Dropped -> unavailable ()));
  if not t.alive then unavailable ();
  Sim.Resource.use t.cpu ~demand;
  let reply = f () in
  (match src with
  | None -> Sim.Net.transfer net ~bytes:64
  | Some src -> (
      match Sim.Net.send net ~src:(endpoint t) ~dst:src ~bytes:64 with
      | `Delivered -> ()
      | `Dropped ->
          (* The manager processed the call but the reply was lost: the
             caller sees a timeout.  Decisions are idempotent, so the
             caller's re-send is safe. *)
          (match on_reply_lost with Some g -> g reply | None -> ());
          unavailable ()));
  reply

let start t ?src ~from_group () =
  rpc t ?src ~demand:900
    ~on_reply_lost:(fun (reply : start_reply) ->
      (* The caller never learned its tid, so nobody will ever decide or
         even claim it — an orphaned active entry would hold the lav (and
         with it every snapshot base and version GC) back forever.  In a
         real deployment a handout lease expires; here the manager sees
         the drop and aborts the tid on the spot. *)
      Hashtbl.remove t.active reply.tid;
      mark_decided t ~tid:reply.tid ~committed:false)
    (fun () ->
      match next_tid t with
      | tid ->
          let snapshot = snapshot_of_state t in
          Hashtbl.replace t.active tid (Version_set.base snapshot, from_group);
          { tid; snapshot; lav = global_lav t }
      | exception Kv.Op.Fenced _ ->
          (* The range refill bounced: this instance was replaced while
             partitioned.  Fence ourselves and answer like a dead node. *)
          self_fence t;
          raise (Kv.Op.Unavailable (endpoint t)))

(* The begin-window coalescer's form of {!start}: one RPC starting a
   whole window of transactions.  Every transaction in the batch gets
   its own tid but they share the snapshot computed once at service
   time — for the early arrivals that is a slightly delayed snapshot,
   which SI tolerates (§4.2): at worst the abort rate rises. *)
let start_many t ?src ~from_group ~count () =
  if count <= 0 then invalid_arg "Commit_manager.start_many: count must be positive";
  rpc t ?src
    ~demand:(900 + (120 * (count - 1)))
    ~on_reply_lost:(fun (replies : start_reply list) ->
      (* As in {!start}: the caller never learned any of these tids, so
         abort the whole batch on the spot rather than hold the lav. *)
      List.iter
        (fun (reply : start_reply) ->
          Hashtbl.remove t.active reply.tid;
          mark_decided t ~tid:reply.tid ~committed:false)
        replies)
    (fun () ->
      let tids = ref [] in
      (try
         for _ = 1 to count do
           tids := next_tid t :: !tids
         done
       with Kv.Op.Fenced _ ->
         (* The range refill bounced mid-batch: this instance was
            replaced while partitioned.  Tids already drawn stay
            undecided outside every live manager's span, so the
            reclamation sweep collects them; fence ourselves and answer
            like a dead node. *)
         self_fence t;
         raise (Kv.Op.Unavailable (endpoint t)));
      let snapshot = snapshot_of_state t in
      let lav = global_lav t in
      let base = Version_set.base snapshot in
      List.rev_map
        (fun tid ->
          Hashtbl.replace t.active tid (base, from_group);
          { tid; snapshot; lav })
        !tids)

let set_committed t ?src ~tid () =
  rpc t ?src ~demand:350 (fun () ->
      Hashtbl.remove t.active tid;
      mark_decided t ~tid ~committed:true)

let set_aborted t ?src ~tid () =
  rpc t ?src ~demand:350 (fun () ->
      Hashtbl.remove t.active tid;
      mark_decided t ~tid ~committed:false)

let set_decided_batch t ?src ~committed ~aborted () =
  let n = List.length committed + List.length aborted in
  if n > 0 then
    (* Marginal decisions are much cheaper than the first: the message
       dominates, each extra tid is a table update. *)
    rpc t ?src ~demand:(350 + (80 * (n - 1))) (fun () ->
        let decide ~committed tid =
          Hashtbl.remove t.active tid;
          mark_decided t ~tid ~committed
        in
        List.iter (decide ~committed:true) committed;
        List.iter (decide ~committed:false) aborted)

(* --- introspection / recovery ---------------------------------------------- *)

let current_snapshot t = snapshot_of_state t
let current_lav t = global_lav t
let active_count t = Hashtbl.length t.active

(* Discard active transactions whose originating fiber group is dead,
   recovering each one's decision from the log (§4.4.1): a flagged entry
   is a commit that died between flagging and notifying; anything else —
   unflagged (recovery rolled it back) or never logged (it applied
   nothing) — is an abort.  Without this sweep the dead node's tids
   wedge the lav, and with it snapshot-base advance and record GC,
   forever. *)
(* The whole current range, handed-out part included: the reclamation
   sweep must not touch tids this live manager may still decide through
   the normal notification path. *)
let range_span t = (t.range_start, t.range_end)

let release_actives_matching t pred =
  let doomed =
    Hashtbl.fold
      (fun tid (_, group) acc -> if pred group then tid :: acc else acc)
      t.active []
  in
  List.iter
    (fun tid ->
      Hashtbl.remove t.active tid;
      let committed =
        match Txlog.find t.kv ~tid with
        | Some (entry : Txlog.entry) -> entry.committed
        | None -> false
      in
      mark_decided t ~tid ~committed)
    (List.sort Int.compare doomed);
  List.length doomed

let release_dead_actives t =
  release_actives_matching t (fun group -> not (Sim.Engine.Group.alive group))

(* Release the actives of one specific (fenced) owner group, whether or
   not the engine considers the group dead yet: once the owner is
   declared dead its undecided transactions must resolve from the log,
   exactly as in the dead-group sweep. *)
let release_group_actives t ~group =
  release_actives_matching t (fun g -> g == group)

let recover t =
  (* Last used tid: the shared counter is authoritative. *)
  (match Kv.Client.get t.kv Keys.tid_counter with
  | Some _ -> ()
  | None -> ());
  (* Bootstrap from every published manager state, own included. *)
  let published = Kv.Client.scan_all t.kv ~prefix:Keys.commit_manager_prefix in
  List.iter
    (fun (key, state, _token) ->
      let peer = int_of_string (String.sub key 5 (String.length key - 5)) in
      if peer <> t.id then merge_peer_state t ~peer ~state
      else begin
        let base, decided, _lav = decode_state state in
        if base > t.decided_base then t.decided_base <- base;
        List.iter (fun (tid, committed) -> mark_decided t ~tid ~committed) decided
      end)
    published;
  (* Replay the transaction-log tail: entries above our base tell us about
     commits the dead manager acknowledged after its last publication. *)
  let log = Kv.Client.scan_all t.kv ~prefix:Keys.log_prefix in
  List.iter
    (fun (key, entry, _token) ->
      let tid = Keys.tid_of_log_key key in
      if tid > t.decided_base && String.length entry > 0 then
        if entry.[0] = '\x01' then mark_decided t ~tid ~committed:true)
    log;
  invalidate t

let create cluster ~id ?peers ?range_size ?sync_interval_ns () =
  let t = make cluster ~id ?peers ?range_size ?sync_interval_ns () in
  start_sync_fiber t;
  t
