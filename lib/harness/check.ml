(* Deterministic fault-injection and schedule-exploration harness
   (the library behind bin/tell_check.exe).

   One run = one short TPC-C workload on a small Tell deployment, driven
   entirely by the virtual clock, with faults — PN / SN / commit-manager
   crashes, latency spikes, network partitions (symmetric and one-way),
   lossy links, false-suspicion declarations — fired at seed-derived
   virtual instants and, optionally, the engine's same-instant event
   order shuffled by a seeded tie-break.  After the workload quiesces, a
   battery of invariants is checked on the final state.  Everything is a
   pure function of (seed, scenario): a failing run reproduces with
   [tell_check --seed N --scenario S].

   Invariants per run (see DESIGN.md §6):
   - TPC-C consistency conditions (Consistency.check_all);
   - unique transaction ids across all commits (a duplicate betrays a
     broken tid-range refill, cf. the Commit_manager.next_tid guard);
   - snapshot-isolation write-write safety: no two committed transactions
     with intersecting write sets may be mutually invisible;
   - monotone commit-manager state: lav and snapshot base never decrease;
   - B+tree structural soundness of every index (Btree.check);
   - log/notification audit: every flagged log entry is decided in a
     freshly recovered commit manager's snapshot; unflagged entries left
     no version residue (rollbacks completed) — for entries logged by a
     fenced node this is the zombie-fencing invariant: no fenced-epoch
     write may survive the declaration; every acknowledged commit of a
     never-crashed PN ends flagged;
   - replication health: every partition ends with >= rf live replicas;
   - partition hygiene: no named cut is still installed at audit time;
   - snapshot liveness: after quiescing, every live manager's snapshot
     base catches up past the highest committed tid (a wedged base
     betrays leaked, undecidable tids — the failure mode the management
     node's tid-reclamation sweep exists to heal). *)

module Sim = Tell_sim
module Kv = Tell_kv
open Tell_core
module Tpcc = Tell_tpcc

(* --- scenarios ------------------------------------------------------------------ *)

type scenario =
  | No_fault
  | Sn_crash  (** storage node crashes under load; detector repairs *)
  | Pn_crash  (** processing node crashes mid-commit; recovery rolls back *)
  | Cm_failover  (** a commit manager dies; a replacement recovers its state *)
  | Latency_spike  (** interconnect degradation windows *)
  | Chaos  (** all of the above composed *)
  | Pn_cut  (** transient symmetric partition of one PN; heals, no declaration *)
  | Pn_cm_asym
      (** one-way cut: commit-manager replies to one PN are lost while its
          store traffic flows; the node is falsely declared dead mid-cut —
          the zombie keeps writing and must bounce off the epoch fence *)
  | Flaky  (** probabilistic drop/duplication window on one PN<->SN link *)
  | Recovery_partition
      (** an SN crash plus a management-node<->SN cut overlapping the PN
          recovery pass: fencing and the log scan ride their retry budgets *)
  | Zombie
      (** full partition of one PN, declared dead behind the cut, heals as
          a zombie: its first post-heal write must bounce and poison it *)

let all_scenarios =
  [
    No_fault;
    Sn_crash;
    Pn_crash;
    Cm_failover;
    Latency_spike;
    Chaos;
    Pn_cut;
    Pn_cm_asym;
    Flaky;
    Recovery_partition;
    Zombie;
  ]

let scenario_name = function
  | No_fault -> "none"
  | Sn_crash -> "sn-crash"
  | Pn_crash -> "pn-crash"
  | Cm_failover -> "cm-failover"
  | Latency_spike -> "latency"
  | Chaos -> "chaos"
  | Pn_cut -> "pn-cut"
  | Pn_cm_asym -> "pn-cm-asym"
  | Flaky -> "flaky"
  | Recovery_partition -> "recovery-partition"
  | Zombie -> "zombie"

let scenario_of_string s =
  List.find_opt (fun sc -> scenario_name sc = String.lowercase_ascii s) all_scenarios

(* The --quick CI matrix: the three composite crash scenarios (chaos
   subsumes latency / cm-failover events) plus the partition scenarios —
   symmetric and asymmetric cuts, lossy links, and zombie fencing.  The
   full sweep additionally runs the single-fault scenarios. *)
let quick_scenarios =
  [ Sn_crash; Pn_crash; Chaos; Pn_cut; Pn_cm_asym; Flaky; Recovery_partition; Zombie ]

type outcome = {
  o_seed : int;
  o_scenario : scenario;
  o_committed : int;
  o_aborted : int;
  o_violations : string list;
  o_counters : (string * int) list;
      (** deterministic run fingerprint, compared by --deterministic-audit *)
  o_history : History.event list;
      (** the recorded transaction history the SI anomaly checker ran
          over — dumped by [tell_check --history-dump] *)
}

(* --- deployment constants -------------------------------------------------------- *)

let n_sns = 4
let rf = 2
let n_pns = 2
let n_cms = 2
let n_terminals = 8
let warehouses = 2
let t_stop = 38_000_000 (* stop issuing transactions *)
let t_drain = 44_000_000 (* quiesce: drain notifiers, recover PNs *)
let t_audit = 48_000_000 (* run the invariant battery *)
let t_end = 250_000_000 (* virtual horizon (audit walks take virtual time) *)

type probe = {
  p_tid : int;
  p_pn : int;
  p_snapshot : Version_set.t;
  p_writes : string list;
}

(* --- one run --------------------------------------------------------------------- *)

(* [weaken] turns on the test-only broken-conflict-detection knob
   (mutation battery, DESIGN.md §7): the run then commits lost updates on
   purpose and the history checker — invariant 9 — must say so. *)
let run_one ~seed ~scenario ?(perturb = true) ?(weaken = false) () =
  let engine = Sim.Engine.create () in
  if perturb then
    Sim.Engine.set_tie_break engine (Some (Sim.Rng.make ((seed * 48271) + 7)));
  let fault_rng = Sim.Rng.make ((seed * 1_000_003) + 17) in
  let scale = Tpcc.Spec.sim_scale ~warehouses in
  let kv_config =
    {
      Kv.Cluster.default_config with
      n_storage_nodes = n_sns;
      replication_factor = rf;
      seed;
    }
  in
  let db = Database.create engine ~kv_config ~n_commit_managers:n_cms () in
  let cluster = Database.cluster db in
  let pns = List.init n_pns (fun _ -> Database.add_pn db ()) in
  let _ = Tpcc.Loader.load cluster ~scale ~seed:(seed + 1) in
  let tell = Tpcc.Tell_engine.create db ~pns ~scale in
  (* Record the transaction history of everything after the bulk load
     (loaded rows are version 0, which the checker treats as initial). *)
  History.start ();
  Txn.unsafe_set_weaken_conflict_detection weaken;

  let committed = ref 0 in
  let aborted = ref 0 in
  let user_aborts = ref 0 in
  let unavailable = ref 0 in
  let rolled_back = ref 0 in
  let stopped = ref false in
  let violations = ref [] in
  let note fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  let probes = ref [] in
  let crashed_pn_ids = ref [] in
  (* PNs declared dead behind a partition (fenced, maybe still running as
     zombies) — their ids also join [crashed_pn_ids], since from the
     cluster's point of view a declaration is a crash. *)
  let fenced_pns = ref [] in
  let fenced_bounces = ref 0 in
  (* Commit managers the monitor watches: the initial ones plus any
     replacement stood up by a fail-over scenario. *)
  let cms = ref (Database.commit_managers db) in
  let net = Kv.Cluster.net cluster in

  Txn.set_commit_probe
    (Some
       (fun ~tid ~pn_id ~snapshot ~write_set ->
         probes := { p_tid = tid; p_pn = pn_id; p_snapshot = snapshot; p_writes = write_set }
                   :: !probes));

  (* Terminals run in their PN's group, like threads on the node: a PN
     crash cancels them mid-transaction — exactly the partially-applied
     states recovery must handle.  A client retries on [Unavailable]
     (e.g. its commit manager died mid-RPC). *)
  let workload_rng = Sim.Rng.make (seed + 2) in
  let next_terminal = ref 0 in
  let pn_index pn = if pn == List.nth pns 0 then 0 else 1 in
  let spawn_terminal pn =
    (* [Tell_engine.connect] routes terminal_id mod n_pns onto the frozen
       PN list, so pick the next id whose residue lands on [pn] — a
       re-manned terminal must not reconnect to the node that died. *)
    let rec fresh_id () =
      let id = !next_terminal in
      incr next_terminal;
      if id mod n_pns = pn_index pn then id else fresh_id ()
    in
    let terminal_id = fresh_id () in
    let term_rng = Sim.Rng.split workload_rng in
    Sim.Engine.spawn engine ~group:(Pn.group pn) (fun () ->
        let conn = Tpcc.Tell_engine.connect tell ~terminal_id in
        let home_w = (terminal_id mod scale.warehouses) + 1 in
        while not !stopped do
          let input = Tpcc.Spec.gen_txn term_rng ~scale ~mix:Tpcc.Spec.standard_mix ~home_w in
          match Tpcc.Tell_engine.execute conn input with
          | Tpcc.Engine_intf.Committed -> incr committed
          | Tpcc.Engine_intf.Aborted _ -> incr aborted
          | Tpcc.Engine_intf.User_abort -> incr user_aborts
          | exception Kv.Op.Unavailable _ ->
              incr unavailable;
              Sim.Engine.sleep engine 50_000
          | exception Kv.Op.Fenced _ ->
              (* The node was declared dead while we ran: the write bounced
                 off the epoch fence and the PN has poisoned itself.  The
                 sleep suspends this fiber so the poison's group-kill can
                 cancel it. *)
              incr fenced_bounces;
              Sim.Engine.sleep engine 50_000
        done)
  in
  let pn_arr = Array.of_list pns in
  for i = 0 to n_terminals - 1 do
    spawn_terminal pn_arr.(i mod n_pns)
  done;

  (* Monitor: commit-manager lav and snapshot base must never decrease
     (per manager instance; a replacement starts a fresh history). *)
  let monitor_state : (Commit_manager.t * int ref * int ref) list ref = ref [] in
  Sim.Engine.spawn engine (fun () ->
      while Sim.Engine.now engine < t_audit do
        Sim.Engine.sleep engine 500_000;
        List.iter
          (fun cm ->
            if Commit_manager.alive cm then begin
              let entry =
                match List.find_opt (fun (c, _, _) -> c == cm) !monitor_state with
                | Some e -> e
                | None ->
                    let e = (cm, ref min_int, ref min_int) in
                    monitor_state := e :: !monitor_state;
                    e
              in
              let _, last_lav, last_base = entry in
              let lav = Commit_manager.current_lav cm in
              let base = Version_set.base (Commit_manager.current_snapshot cm) in
              if lav < !last_lav then
                note "cm%d lav went backwards: %d -> %d" (Commit_manager.id cm) !last_lav lav;
              if base < !last_base then
                note "cm%d snapshot base went backwards: %d -> %d" (Commit_manager.id cm)
                  !last_base base;
              last_lav := max !last_lav lav;
              last_base := max !last_base base
            end)
          !cms
      done);

  (* Fault script: all instants derive from [fault_rng] — never from the
     wall clock — so the schedule is a pure function of the seed. *)
  let at time f = Sim.Engine.spawn engine (fun () -> Sim.Engine.sleep engine time; f ()) in
  let ms n = n * 1_000_000 in
  let crash_sn () =
    let victim = Sim.Rng.int fault_rng n_sns in
    at (ms 8 + Sim.Rng.int fault_rng (ms 15)) (fun () -> Database.crash_storage_node db victim);
    victim
  in
  let crash_pn_with_recovery () =
    let victim = pn_arr.(Sim.Rng.int fault_rng n_pns) in
    let t_crash = ms 8 + Sim.Rng.int fault_rng (ms 15) in
    let t_recover = t_crash + ms 3 + Sim.Rng.int fault_rng (ms 3) in
    at t_crash (fun () ->
        crashed_pn_ids := Pn.id victim :: !crashed_pn_ids;
        Database.crash_pn db victim);
    at t_recover (fun () ->
        rolled_back := !rolled_back + Database.recover_crashed_pns db;
        (* Clients reconnect: re-man the dead node's terminals on a
           survivor. *)
        match Database.pns db with
        | survivor :: _ ->
            for _ = 1 to n_terminals / n_pns do
              spawn_terminal survivor
            done
        | [] -> ())
  in
  let crash_cm_with_replacement () =
    let all = Array.of_list (Database.commit_managers db) in
    let victim = all.(Sim.Rng.int fault_rng (Array.length all)) in
    let t_crash = ms 8 + Sim.Rng.int fault_rng (ms 15) in
    at t_crash (fun () -> Commit_manager.crash victim);
    at (t_crash + ms 2) (fun () ->
        (* The replacement takes over the dead manager's identity (its
           published-state slot), so the surviving peers resume merging
           its decisions — §4.4.3. *)
        (* The management node retries if recovery trips over a storage
           fail-over still re-pointing the log partitions. *)
        let rec stand_up () =
          match Database.replace_commit_manager db ~dead:victim with
          | fresh -> cms := fresh :: !cms
          | exception Kv.Op.Unavailable _ ->
              Sim.Engine.sleep engine (ms 2);
              stand_up ()
        in
        stand_up ())
  in
  let latency_spikes n =
    for _ = 1 to n do
      let from_ns = ms 8 + Sim.Rng.int fault_rng (ms 18) in
      let until_ns = from_ns + ms 2 + Sim.Rng.int fault_rng (ms 5) in
      let factor = 4.0 +. float_of_int (Sim.Rng.int fault_rng 8) in
      let extra_ns = 10_000 + Sim.Rng.int fault_rng 40_000 in
      Kv.Cluster.inject_latency_spike cluster ~from_ns ~until_ns ~factor ~extra_ns ()
    done
  in
  (* The rest of the fabric as seen from one PN: every storage node, every
     commit manager, and the management node. *)
  let fabric_endpoints () =
    List.init n_sns Kv.Cluster.sn_endpoint
    @ List.map Commit_manager.endpoint (Database.commit_managers db)
    @ [ Kv.Cluster.mgmt_endpoint ]
  in
  (* The false-suspicion event: a detector declares [victim] dead while it
     may well be running behind a cut.  Fences its epoch, rolls back its
     logged uncommitted work, releases its active tids, and re-mans its
     share of the terminals on a survivor — the victim's own terminals keep
     running as zombies until a bounced write poisons the node. *)
  let declare_dead victim =
    crashed_pn_ids := Pn.id victim :: !crashed_pn_ids;
    fenced_pns := victim :: !fenced_pns;
    rolled_back := !rolled_back + Database.declare_pn_dead db victim;
    match Database.pns db with
    | survivor :: _ ->
        for _ = 1 to n_terminals / n_pns do
          spawn_terminal survivor
        done
    | [] -> ()
  in
  let pick_victim_pn () = pn_arr.(Sim.Rng.int fault_rng n_pns) in
  (match scenario with
  | No_fault -> ()
  | Sn_crash -> ignore (crash_sn ())
  | Pn_crash -> crash_pn_with_recovery ()
  | Cm_failover -> crash_cm_with_replacement ()
  | Latency_spike -> latency_spikes 2
  | Chaos ->
      latency_spikes 1;
      let sn = crash_sn () in
      at (ms 30) (fun () -> Kv.Cluster.restart_node cluster sn);
      crash_pn_with_recovery ();
      crash_cm_with_replacement ()
  | Pn_cut ->
      (* Transient full partition of one PN; nobody declares it dead, so
         after the heal it must resume cleanly — requeued notifications
         flush, lost start replies were compensated by the manager. *)
      let ep = Pn.endpoint (pick_victim_pn ()) in
      let t_cut = ms 8 + Sim.Rng.int fault_rng (ms 10) in
      let t_heal = t_cut + ms 2 + Sim.Rng.int fault_rng (ms 4) in
      at t_cut (fun () ->
          Sim.Net.cut net ~name:"pn-cut" ~from_:[ ep ] ~to_:(fabric_endpoints ())
            ~symmetric:true);
      at t_heal (fun () -> Sim.Net.heal net ~name:"pn-cut")
  | Pn_cm_asym ->
      (* One-way cut: the victim's requests reach the commit managers but
         every reply is lost, while its storage traffic flows freely.  Mid-
         cut the node is declared dead — the fence must stop its store
         writes even though the store is perfectly reachable from it. *)
      let victim = pick_victim_pn () in
      let ep = Pn.endpoint victim in
      let cm_eps = List.map Commit_manager.endpoint (Database.commit_managers db) in
      let t_cut = ms 8 + Sim.Rng.int fault_rng (ms 6) in
      let t_declare = t_cut + ms 2 in
      let t_heal = t_declare + ms 2 + Sim.Rng.int fault_rng (ms 3) in
      at t_cut (fun () ->
          Sim.Net.cut net ~name:"cm-replies" ~from_:cm_eps ~to_:[ ep ] ~symmetric:false);
      at t_declare (fun () -> declare_dead victim);
      at t_heal (fun () -> Sim.Net.heal net ~name:"cm-replies")
  | Flaky ->
      (* A lossy window on one PN<->SN link pair: a few percent drop plus
         occasional duplication, in both directions.  Client retries must
         ride it out; duplicated deliveries must be absorbed. *)
      let ep = Pn.endpoint (pick_victim_pn ()) in
      let sn = Kv.Cluster.sn_endpoint (Sim.Rng.int fault_rng n_sns) in
      let drop = 0.01 +. (float_of_int (Sim.Rng.int fault_rng 5) /. 100.) in
      let t_on = ms 6 + Sim.Rng.int fault_rng (ms 8) in
      let t_off = t_on + ms 5 + Sim.Rng.int fault_rng (ms 20) in
      at t_on (fun () ->
          Sim.Net.set_loss net ~src:ep ~dst:sn ~drop ~dup:0.01 ();
          Sim.Net.set_loss net ~src:sn ~dst:ep ~drop ~dup:0.01 ());
      at t_off (fun () ->
          Sim.Net.clear_loss net ~src:ep ~dst:sn;
          Sim.Net.clear_loss net ~src:sn ~dst:ep)
  | Recovery_partition ->
      (* An SN crash plus a short management-node<->SN cut laid over a PN
         crash-and-recover: the recovery pass's fence installs and log
         scans must ride their retry budgets through the cut. *)
      ignore (crash_sn ());
      let cut_sn = Kv.Cluster.sn_endpoint (Sim.Rng.int fault_rng n_sns) in
      crash_pn_with_recovery ();
      let t_cut = ms 10 + Sim.Rng.int fault_rng (ms 12) in
      at t_cut (fun () ->
          Sim.Net.cut net ~name:"mgmt-sn" ~from_:[ Kv.Cluster.mgmt_endpoint ]
            ~to_:[ cut_sn ] ~symmetric:true);
      at (t_cut + ms 2) (fun () -> Sim.Net.heal net ~name:"mgmt-sn")
  | Zombie ->
      (* Full partition, declared dead behind the cut, then the cut heals
         and the zombie comes back: its first write after the heal must
         bounce off the epoch fence and poison the node. *)
      let victim = pick_victim_pn () in
      let ep = Pn.endpoint victim in
      let t_cut = ms 8 + Sim.Rng.int fault_rng (ms 6) in
      let t_declare = t_cut + ms 2 in
      let t_heal = t_declare + ms 1 + Sim.Rng.int fault_rng (ms 3) in
      at t_cut (fun () ->
          Sim.Net.cut net ~name:"zombie-cut" ~from_:[ ep ] ~to_:(fabric_endpoints ())
            ~symmetric:true);
      at t_declare (fun () -> declare_dead victim);
      at t_heal (fun () -> Sim.Net.heal net ~name:"zombie-cut"));

  (* Quiesce and audit. *)
  let audit_done = ref false in
  let counters = ref [] in
  Sim.Engine.spawn engine (fun () ->
      Sim.Engine.sleep engine t_stop;
      stopped := true;
      Sim.Engine.sleep engine (t_drain - t_stop);
      (* Acknowledge everything: flag committed log entries and push the
         decisions to the commit managers (with_txn semantics). *)
      List.iter (fun pn -> Notifier.drain (Pn.notifier pn)) (Database.pns db);
      rolled_back := !rolled_back + Database.recover_crashed_pns db;
      Sim.Engine.sleep engine (t_audit - t_drain);

      let probes = !probes in
      let pn = List.hd (Database.pns db) in
      let kv = Pn.kv pn in

      (* 1. TPC-C consistency conditions. *)
      List.iter (fun v -> note "consistency: %s" v) (Tpcc.Consistency.check_all pn ~scale);

      (* 2. Unique transaction ids. *)
      let seen = Hashtbl.create 1024 in
      List.iter
        (fun p ->
          (match Hashtbl.find_opt seen p.p_tid with
          | Some prev -> note "duplicate tid %d committed on pn%d and pn%d" p.p_tid prev p.p_pn
          | None -> ());
          Hashtbl.replace seen p.p_tid p.p_pn)
        probes;

      (* The transaction log arbitrates several checks below: build the
         flagged-entry table first.  A probe whose entry never got flagged
         and whose PN crashed (or was declared dead) is a "ghost": its
         commit was acknowledged to a doomed client only, and recovery
         rolled it back — it must be exempt from the safety checks that
         quantify over surviving commits. *)
      let entries = Txlog.scan kv ~min_tid:0 in
      let flagged = Hashtbl.create 1024 in
      List.iter
        (fun (e : Txlog.entry) -> if e.committed then Hashtbl.replace flagged e.tid ())
        entries;
      let ghost p =
        (not (Hashtbl.mem flagged p.p_tid)) && List.mem p.p_pn !crashed_pn_ids
      in

      (* 3. SI write-write safety: committed writers of the same record
         must be ordered by their snapshots (first-committer-wins). *)
      let writers = Hashtbl.create 4096 in
      List.iter
        (fun p ->
          List.iter
            (fun key ->
              Hashtbl.replace writers key
                (p :: Option.value ~default:[] (Hashtbl.find_opt writers key)))
            p.p_writes)
        probes;
      let reported = Hashtbl.create 64 in
      Hashtbl.iter
        (fun key ps ->
          let rec pairs = function
            | [] -> ()
            | a :: rest ->
                List.iter
                  (fun b ->
                    if
                      a.p_tid <> b.p_tid
                      && (not (ghost a))
                      && (not (ghost b))
                      && (not (Version_set.mem a.p_snapshot b.p_tid))
                      && (not (Version_set.mem b.p_snapshot a.p_tid))
                      && not (Hashtbl.mem reported (min a.p_tid b.p_tid, max a.p_tid b.p_tid))
                    then begin
                      Hashtbl.replace reported (min a.p_tid b.p_tid, max a.p_tid b.p_tid) ();
                      note "write-write conflict pair committed: tids %d and %d on %S"
                        a.p_tid b.p_tid key
                    end)
                  rest;
                pairs rest
          in
          pairs ps)
        writers;

      (* 4. B+tree structural soundness of every index. *)
      List.iter
        (fun table ->
          List.iter
            (fun (idx : Schema.index) ->
              List.iter (fun v -> note "btree: %s" v) (Btree.check (Pn.btree pn ~index:idx.idx_name)))
            (Schema.all_indexes table))
        (Database.tables db);

      (* 5. Log / notification audit against a freshly recovered commit
         manager: its state is rebuilt from the published peer states and
         the flagged log tail, so it knows every decision that can still
         matter. *)
      let audit_cm =
        Recovery.replace_commit_manager cluster ~dead:(-1) ~fresh_id:97
          ~peers:(List.map Commit_manager.id (Database.commit_managers db))
      in
      let audit_snapshot = Commit_manager.current_snapshot audit_cm in
      let fenced_pn_ids = List.map Pn.id !fenced_pns in
      List.iter
        (fun (e : Txlog.entry) ->
          if e.committed then begin
            if not (Version_set.mem audit_snapshot e.tid) then
              note "lost notification: flagged log entry %d not decided after recovery" e.tid
          end
          else begin
            (* Aborted or rolled back: no version residue may remain.  For
               an entry logged by a fenced node this is the zombie-fencing
               invariant itself — a surviving version means a fenced-epoch
               write landed after the declaration. *)
            let states = Kv.Client.multi_get kv e.write_set in
            List.iter2
              (fun key state ->
                match state with
                | None -> ()
                | Some (data, _token) ->
                    if List.mem e.tid (Record.version_numbers (Record.decode data)) then
                      if List.mem e.pn_id fenced_pn_ids then
                        note
                          "fenced-epoch residue: version %d of %S from fenced pn%d \
                           (zombie write leaked past the fence)"
                          e.tid key e.pn_id
                      else
                        note "rollback residue: version %d of %S survives its unflagged log entry"
                          e.tid key)
              e.write_set states
          end)
        entries;
      List.iter
        (fun p ->
          if p.p_writes <> [] && not (Hashtbl.mem flagged p.p_tid) then
            if List.mem p.p_pn !crashed_pn_ids then ()
              (* acknowledged only tentatively: its PN died before the
                 notifier flushed, recovery rolled it back (checked above) *)
            else note "acknowledged commit %d on healthy pn%d never flagged in the log" p.p_tid p.p_pn)
        probes;

      (* 6. Replication health restored. *)
      let live_repl = Kv.Cluster.min_live_replication cluster in
      if live_repl < rf then
        note "replication not restored: min live replicas %d < rf %d" live_repl rf;

      (* 7. Snapshot liveness: once the workload stops, every live
         manager retires its stale range tail (within retire_after_ns)
         and the snapshot base must catch up past every committed tid.
         A base stuck below one betrays leaked tids — e.g. a range
         abandoned by a double refill — which would hold version GC and
         every snapshot's visibility floor back forever. *)
      let max_committed = List.fold_left (fun a p -> max a p.p_tid) 0 probes in
      List.iter
        (fun cm ->
          if Commit_manager.alive cm then begin
            let base = Version_set.base (Commit_manager.current_snapshot cm) in
            if base < max_committed then
              note "cm%d snapshot base wedged at %d below committed tid %d"
                (Commit_manager.id cm) base max_committed
          end)
        !cms;

      (* 8. Partition hygiene: every scenario must heal what it cuts; a
         cut surviving to the audit would make the checks above test a
         partitioned cluster rather than a healed one. *)
      (match Sim.Net.active_cuts net with
      | [] -> ()
      | cuts -> note "partition not healed at audit: %s" (String.concat ", " cuts));

      counters :=
        [
          ("committed", !committed);
          ("aborted", !aborted);
          ("user_aborts", !user_aborts);
          ("unavailable", !unavailable);
          ("rolled_back", !rolled_back);
          ("probes", List.length probes);
          ("max_tid", List.fold_left (fun a p -> max a p.p_tid) 0 probes);
          ("log_entries", List.length entries);
          ("audit_base", Version_set.base audit_snapshot);
          ("audit_max", Version_set.max_elt audit_snapshot);
          ("net_bytes", Sim.Net.bytes_sent net);
          ("net_dropped", Sim.Net.messages_dropped net);
          ("net_duplicated", Sim.Net.messages_duplicated net);
          ( "fenced_rejects",
            Array.fold_left
              (fun a sn -> a + Kv.Storage_node.fenced_rejects sn)
              0 (Kv.Cluster.nodes cluster) );
          ("fenced_bounces", !fenced_bounces);
          ("poisoned_pns", List.length (List.filter Pn.was_fenced !fenced_pns));
          ( "notifier_redelivered",
            Array.fold_left (fun a pn -> a + Notifier.redelivered (Pn.notifier pn)) 0 pn_arr );
          ("epoch", Kv.Cluster.current_epoch cluster);
          ("bytes_stored", Kv.Cluster.total_bytes_stored cluster);
          ("live_nodes", Kv.Cluster.live_nodes cluster);
          ("min_live_replication", live_repl);
        ];
      audit_done := true);

  let history = ref [] in
  Fun.protect
    ~finally:(fun () ->
      Txn.set_commit_probe None;
      Txn.unsafe_set_weaken_conflict_detection false;
      history := History.stop ())
    (fun () -> Sim.Engine.run engine ~until:t_end ());
  if not !audit_done then note "audit did not complete before the virtual horizon";

  (* 9. SI anomaly audit: rebuild the direct serialization graph from the
     recorded history and classify its cycles (Adya taxonomy; DESIGN.md
     §7).  Catches whole families the hand-written invariants cannot see
     — dependency cycles, lost updates, stale or non-snapshot reads. *)
  List.iter (fun v -> note "histcheck: %s" v) (Tell_histcheck.Checker.check !history);

  {
    o_seed = seed;
    o_scenario = scenario;
    o_committed = !committed;
    o_aborted = !aborted;
    o_violations = List.rev !violations;
    o_counters = !counters;
    o_history = !history;
  }

(* --- determinism audit ----------------------------------------------------------- *)

(* Run one (seed, scenario) twice and compare the counter fingerprints:
   any divergence betrays wall-clock or global-[Random] leakage into the
   simulation. *)
let determinism_audit ~seed ~scenario ?(perturb = true) () =
  let a = run_one ~seed ~scenario ~perturb () in
  let b = run_one ~seed ~scenario ~perturb () in
  let divergences =
    List.concat_map
      (fun (name, va) ->
        match List.assoc_opt name b.o_counters with
        | Some vb when vb = va -> []
        | Some vb -> [ Printf.sprintf "%s: %d vs %d" name va vb ]
        | None -> [ Printf.sprintf "%s: %d vs (missing)" name va ])
      a.o_counters
  in
  (a, divergences)
