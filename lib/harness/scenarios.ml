(* Deployment descriptions and runners for the benchmark experiments: one
   function per engine that builds a fresh simulated cluster, loads TPC-C,
   drives the workload, and returns the driver report together with the
   paper's core-count accounting. *)

module Sim = Tell_sim
module Kv = Tell_kv
open Tell_core
module Tpcc = Tell_tpcc
module B = Tell_baselines

type outcome = Report of Tpcc.Driver.report | Out_of_memory

let committed_tpmc = function Report r -> Tpcc.Driver.tpmc r | Out_of_memory -> 0.0

(* --- Tell ----------------------------------------------------------------------- *)

type tell_config = {
  n_pns : int;
  n_sns : int;
  n_cms : int;
  rf : int;
  pn_cores : int;
  sn_cores : int;
  threads_per_pn : int;
  net : Sim.Net.profile;
  buffer : Buffer_pool.strategy;
  sn_capacity_bytes : int;
  warehouses : int;
  mix : Tpcc.Spec.mix;
  warmup_ns : int;
  measure_ns : int;
  seed : int;
  notify_flush_window_ns : int;
  begin_window_ns : int;
}

let default_tell =
  {
    n_pns = 1;
    n_sns = 7;
    n_cms = 1;
    rf = 1;
    pn_cores = 4;
    sn_cores = 4;
    threads_per_pn = 8;
    net = Sim.Net.infiniband;
    buffer = Buffer_pool.Transaction_buffer;
    sn_capacity_bytes = 64 * 1024 * 1024 * 1024;
    warehouses = 32;
    mix = Tpcc.Spec.standard_mix;
    warmup_ns = 150_000_000;
    measure_ns = 600_000_000;
    seed = 42;
    notify_flush_window_ns = Pn.default_notify_flush_window_ns;
    begin_window_ns = Pn.default_begin_window_ns;
  }

(* Core accounting of §6.4: 4-core PNs and SNs (one NUMA unit), 2-core
   commit managers, one 2-core management node. *)
let tell_cores c = (4 * c.n_pns) + (4 * c.n_sns) + (2 * c.n_cms) + 2

let scale_of c = Tpcc.Spec.sim_scale ~warehouses:c.warehouses

(* Aggregated commit-pipeline instrumentation of one Tell run: store-client
   counters summed over the PNs plus the merged per-phase breakdown. *)
type tell_detail = {
  d_requests : int;  (** store requests sent by all PN clients *)
  d_ops : int;  (** operations carried by those requests *)
  d_begins : int;  (** transactions started on all PNs *)
  d_begin_rpcs : int;  (** commit-manager start RPCs those begins cost *)
  d_phases : (string * Sim.Stats.Histogram.t * int) list;
}

let run_tell_detailed (c : tell_config) =
  let engine = Sim.Engine.create () in
  let kv_config =
    {
      Kv.Cluster.default_config with
      n_storage_nodes = c.n_sns;
      replication_factor = c.rf;
      sn_cores = c.sn_cores;
      sn_capacity_bytes = c.sn_capacity_bytes;
      net_profile = c.net;
      seed = c.seed;
    }
  in
  let db = Database.create engine ~kv_config ~n_commit_managers:c.n_cms () in
  let pns =
    List.init c.n_pns (fun _ ->
        Database.add_pn db ~cores:c.pn_cores ~buffer:c.buffer
          ~notify_flush_window_ns:c.notify_flush_window_ns
          ~begin_window_ns:c.begin_window_ns ())
  in
  let scale = scale_of c in
  let _ = Tpcc.Loader.load (Database.cluster db) ~scale ~seed:(c.seed + 1) in
  let tell = Tpcc.Tell_engine.create db ~pns ~scale in
  let config =
    {
      Tpcc.Driver.terminals = c.n_pns * c.threads_per_pn;
      warmup_ns = c.warmup_ns;
      measure_ns = c.measure_ns;
      seed = c.seed + 2;
    }
  in
  let outcome =
    match
      Tpcc.Driver.run
        (module Tpcc.Tell_engine : Tpcc.Engine_intf.ENGINE
          with type t = Tpcc.Tell_engine.t
           and type conn = Tpcc.Tell_engine.conn)
        tell ~engine ~scale ~mix:c.mix ~config ()
    with
    | report -> Report report
    | exception Kv.Op.Capacity_exceeded _ -> Out_of_memory
  in
  let merged = Sim.Stats.Breakdown.create Pn.commit_phases in
  List.iter
    (fun pn -> Sim.Stats.Breakdown.merge_into ~src:(Pn.commit_stats pn) ~dst:merged)
    pns;
  let detail =
    {
      d_requests = List.fold_left (fun a pn -> a + Kv.Client.requests_sent (Pn.kv pn)) 0 pns;
      d_ops = List.fold_left (fun a pn -> a + Kv.Client.ops_sent (Pn.kv pn)) 0 pns;
      d_begins = List.fold_left (fun a pn -> a + fst (Pn.begin_stats pn)) 0 pns;
      d_begin_rpcs = List.fold_left (fun a pn -> a + snd (Pn.begin_stats pn)) 0 pns;
      d_phases = Sim.Stats.Breakdown.phases merged;
    }
  in
  (outcome, detail)

let run_tell c = fst (run_tell_detailed c)

(* --- VoltDB ---------------------------------------------------------------------- *)

type voltdb_config = {
  v_nodes : int;
  v_k_factor : int;
  v_terminals_per_node : int;
  v_warehouses : int;
  v_mix : Tpcc.Spec.mix;
  v_warmup_ns : int;
  v_measure_ns : int;
  v_seed : int;
}

let default_voltdb =
  {
    v_nodes = 3;
    v_k_factor = 0;
    v_terminals_per_node = 20;
    v_warehouses = 32;
    v_mix = Tpcc.Spec.standard_mix;
    v_warmup_ns = 150_000_000;
    v_measure_ns = 600_000_000;
    v_seed = 42;
  }

let voltdb_cores c = 8 * c.v_nodes

let run_voltdb (c : voltdb_config) =
  let engine = Sim.Engine.create () in
  let scale = Tpcc.Spec.sim_scale ~warehouses:c.v_warehouses in
  let volt =
    B.Voltdb_model.create engine
      ~config:
        { B.Voltdb_model.default_config with n_nodes = c.v_nodes; k_factor = c.v_k_factor; seed = c.v_seed }
      ~scale
  in
  let config =
    {
      Tpcc.Driver.terminals = c.v_nodes * c.v_terminals_per_node;
      warmup_ns = c.v_warmup_ns;
      measure_ns = c.v_measure_ns;
      seed = c.v_seed + 2;
    }
  in
  Report
    (Tpcc.Driver.run
       (module B.Voltdb_model : Tpcc.Engine_intf.ENGINE
         with type t = B.Voltdb_model.t
          and type conn = B.Voltdb_model.conn)
       volt ~engine ~scale ~mix:c.v_mix ~config ())

(* --- MySQL Cluster ---------------------------------------------------------------- *)

type ndb_config = {
  m_data_nodes : int;
  m_sql_nodes : int;
  m_replicas : int;
  m_terminals : int;
  m_warehouses : int;
  m_mix : Tpcc.Spec.mix;
  m_warmup_ns : int;
  m_measure_ns : int;
  m_seed : int;
}

let default_ndb =
  {
    m_data_nodes = 3;
    m_sql_nodes = 2;
    m_replicas = 1;
    m_terminals = 64;
    m_warehouses = 32;
    m_mix = Tpcc.Spec.standard_mix;
    m_warmup_ns = 150_000_000;
    m_measure_ns = 600_000_000;
    m_seed = 42;
  }

(* Data nodes + SQL nodes (8 cores each) + two 2-core management nodes. *)
let ndb_cores c = (8 * c.m_data_nodes) + (8 * c.m_sql_nodes) + 4

let run_ndb (c : ndb_config) =
  let engine = Sim.Engine.create () in
  let scale = Tpcc.Spec.sim_scale ~warehouses:c.m_warehouses in
  let ndb =
    B.Ndb_model.create engine
      ~config:
        {
          B.Ndb_model.default_config with
          n_data_nodes = c.m_data_nodes;
          n_sql_nodes = c.m_sql_nodes;
          replicas = c.m_replicas;
          seed = c.m_seed;
        }
      ~scale
  in
  let config =
    {
      Tpcc.Driver.terminals = c.m_terminals;
      warmup_ns = c.m_warmup_ns;
      measure_ns = c.m_measure_ns;
      seed = c.m_seed + 2;
    }
  in
  Report
    (Tpcc.Driver.run
       (module B.Ndb_model : Tpcc.Engine_intf.ENGINE
         with type t = B.Ndb_model.t
          and type conn = B.Ndb_model.conn)
       ndb ~engine ~scale ~mix:c.m_mix ~config ())

(* --- FoundationDB ------------------------------------------------------------------ *)

type fdb_config = {
  f_nodes : int;  (** per layer: storage and SQL *)
  f_replicas : int;
  f_terminals : int;
  f_warehouses : int;
  f_mix : Tpcc.Spec.mix;
  f_warmup_ns : int;
  f_measure_ns : int;
  f_seed : int;
}

let default_fdb =
  {
    f_nodes = 3;
    f_replicas = 3;
    f_terminals = 24;
    f_warehouses = 32;
    f_mix = Tpcc.Spec.standard_mix;
    f_warmup_ns = 150_000_000;
    f_measure_ns = 600_000_000;
    f_seed = 42;
  }

let fdb_cores c = 8 * c.f_nodes

let run_fdb (c : fdb_config) =
  let engine = Sim.Engine.create () in
  let scale = Tpcc.Spec.sim_scale ~warehouses:c.f_warehouses in
  let fdb =
    B.Fdb_model.create engine
      ~config:
        {
          B.Fdb_model.default_config with
          n_storage = c.f_nodes;
          n_sql = c.f_nodes;
          replicas = c.f_replicas;
          seed = c.f_seed;
        }
      ~scale
  in
  let config =
    {
      Tpcc.Driver.terminals = c.f_terminals;
      warmup_ns = c.f_warmup_ns;
      measure_ns = c.f_measure_ns;
      seed = c.f_seed + 2;
    }
  in
  Report
    (Tpcc.Driver.run
       (module B.Fdb_model : Tpcc.Engine_intf.ENGINE
         with type t = B.Fdb_model.t
          and type conn = B.Fdb_model.conn)
       fdb ~engine ~scale ~mix:c.f_mix ~config ())
