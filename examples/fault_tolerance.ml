(* Fail-over (§4.4): a storage node crashes under load (with RF2, no data
   is lost and the system keeps serving), and a processing node crashes
   mid-commit — its terminals run as fibers in the PN's group, so the
   crash cancels them at whatever suspension point they had reached,
   leaving partially applied transactions for recovery to roll back.
   Surviving terminals reconnect to the remaining node and the final
   TPC-C consistency audit must still pass.

     dune exec examples/fault_tolerance.exe *)

module Sim = Tell_sim
module Kv = Tell_kv
open Tell_core
module Tpcc = Tell_tpcc

let scale = Tpcc.Spec.sim_scale ~warehouses:4

let () =
  let engine = Sim.Engine.create () in
  let kv_config =
    { Kv.Cluster.default_config with n_storage_nodes = 4; replication_factor = 2 }
  in
  let db = Database.create engine ~kv_config () in
  let pn1 = Database.add_pn db () in
  let pn2 = Database.add_pn db () in
  let _ = Tpcc.Loader.load (Database.cluster db) ~scale ~seed:1 in
  let tell = Tpcc.Tell_engine.create db ~pns:[ pn1; pn2 ] ~scale in

  let committed = ref 0 and aborted = ref 0 in
  let stop = ref false in
  let rng = Sim.Rng.make 5 in
  (* [connect] routes terminal_id mod 2 onto [pn1; pn2]; spawning the
     fiber in that same PN's group makes the terminal die with its node,
     exactly like an application thread running on it. *)
  let spawn_terminal terminal_id =
    let pn = if terminal_id mod 2 = 0 then pn1 else pn2 in
    let term_rng = Sim.Rng.split rng in
    Sim.Engine.spawn engine ~group:(Pn.group pn) (fun () ->
        let conn = Tpcc.Tell_engine.connect tell ~terminal_id in
        let home_w = (terminal_id mod scale.warehouses) + 1 in
        while not !stop do
          let input = Tpcc.Spec.gen_txn term_rng ~scale ~mix:Tpcc.Spec.standard_mix ~home_w in
          match Tpcc.Tell_engine.execute conn input with
          | Tpcc.Engine_intf.Committed -> incr committed
          | Tpcc.Engine_intf.Aborted _ -> incr aborted
          | Tpcc.Engine_intf.User_abort -> ()
          | exception Kv.Op.Unavailable _ -> Sim.Engine.sleep engine 50_000
        done)
  in
  for terminal_id = 0 to 11 do
    spawn_terminal terminal_id
  done;

  let violations = ref [] in
  Sim.Engine.spawn engine (fun () ->
      Sim.Engine.sleep engine 150_000_000;
      let before = !committed in
      Printf.printf "t=%3.0f ms: crashing storage node 0 (RF2: replicas hold its data)\n%!"
        (float_of_int (Sim.Engine.now engine) /. 1e6);
      Database.crash_storage_node db 0;
      Sim.Engine.sleep engine 150_000_000;
      Printf.printf "t=%3.0f ms: %d transactions committed since the crash — fail-over done\n%!"
        (float_of_int (Sim.Engine.now engine) /. 1e6)
        (!committed - before);

      (* Crash a processing node with transactions in flight.  Killing the
         group cancels its six terminals mid-commit: some hold writes that
         are applied to the store but whose log entries were never
         flagged. *)
      Printf.printf "t=%3.0f ms: crashing processing node %d mid-commit (6 terminals die with it)\n%!"
        (float_of_int (Sim.Engine.now engine) /. 1e6)
        (Pn.id pn2);
      Database.crash_pn db pn2;
      Sim.Engine.sleep engine 50_000_000;
      let rolled_back = Database.recover_crashed_pns db in
      Printf.printf "t=%3.0f ms: recovery rolled back %d in-flight transaction(s) of the dead PN\n%!"
        (float_of_int (Sim.Engine.now engine) /. 1e6)
        rolled_back;
      (* The dead node's clients reconnect to the survivor: even terminal
         ids route to pn1. *)
      for terminal_id = 6 to 11 do
        spawn_terminal (2 * terminal_id)
      done;
      Sim.Engine.sleep engine 100_000_000;
      stop := true;

      (* Consistency audit over the surviving node. *)
      Sim.Engine.sleep engine 50_000_000;
      violations := Tpcc.Consistency.check_all pn1 ~scale;
      match !violations with
      | [] -> Printf.printf "consistency check: OK (W_YTD = sum(D_YTD), order counters intact)\n"
      | v -> List.iter (Printf.printf "VIOLATION: %s\n") v);

  Sim.Engine.run engine ~until:60_000_000_000 ();
  Printf.printf "fault tolerance: %d committed, %d aborted — done\n" !committed !aborted;
  if !violations <> [] then exit 1
