.PHONY: all build test check bench clean

all: build

build:
	dune build @all

test:
	dune runtest

# The gate CI runs: everything compiles and all test suites pass.
check:
	dune build @all
	dune runtest

bench:
	dune exec bin/tell_bench.exe -- tell --pns 4 --rf 3

clean:
	dune clean
