.PHONY: all build test check examples-smoke audit bench bench-smoke clean

all: build

build:
	dune build @all

test:
	dune runtest

# The gate CI runs: everything compiles, all test suites pass, the
# deterministic fault-injection matrix is green (with the SI anomaly
# checker validating every run's history), the mutation battery proves
# the checker still detects a weakened engine, and the examples run.
check:
	dune build @all
	dune runtest
	dune exec bin/tell_check.exe -- --quick
	dune exec bin/tell_check.exe -- --mutation
	$(MAKE) examples-smoke

examples-smoke:
	dune exec examples/quickstart.exe
	dune exec examples/mixed_workload.exe
	dune exec examples/elastic_scaling.exe
	dune exec examples/fault_tolerance.exe

# Replay a few seeds twice and fail on any counter divergence: guards the
# determinism contract the repro commands depend on.
audit:
	dune exec bin/tell_check.exe -- --deterministic-audit --seeds 3

bench:
	dune exec bin/tell_bench.exe -- tell --pns 4 --rf 3

# Reduced benchmark run compared against the committed baseline; fails if
# TpmC drops more than 15%, requests/new-order rises more than 10%, or
# the abort rate rises more than 0.5 percentage points.
bench-smoke:
	dune exec bin/tell_bench.exe -- tell --pns 4 --rf 3 --json BENCH_current.json
	dune exec bin/bench_compare.exe -- BENCH_commit.json BENCH_current.json

clean:
	dune clean
