bin/tell_bench.mli:
