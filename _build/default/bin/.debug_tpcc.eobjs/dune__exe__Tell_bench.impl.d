bin/tell_bench.ml: Arg Cmd Cmdliner Experiments Printf Scenarios String Tell_core Tell_harness Tell_sim Tell_tpcc Term
