bin/debug_tpcc.mli:
