bin/calibrate.ml: Array Printf Scenarios Sys Tell_harness Tell_sim Tell_tpcc Unix
