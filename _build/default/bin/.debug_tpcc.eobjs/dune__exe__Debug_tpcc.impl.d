bin/debug_tpcc.ml: Array Commit_manager Database List Printf Tell_core Tell_kv Tell_sim Tell_tpcc Version_set
