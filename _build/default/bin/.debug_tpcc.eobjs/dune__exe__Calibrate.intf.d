bin/calibrate.mli:
