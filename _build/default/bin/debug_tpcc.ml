(* Scratch harness for debugging the TPC-C driver. *)

module Sim = Tell_sim
module Kv = Tell_kv
open Tell_core
module Tpcc = Tell_tpcc

let tiny_scale =
  {
    Tpcc.Spec.warehouses = 2;
    districts_per_wh = 4;
    customers_per_district = 30;
    items = 100;
    stock_per_wh = 100;
    initial_orders_per_district = 30;
  }

let () =
  let engine = Sim.Engine.create () in
  let config =
    { Kv.Cluster.default_config with n_storage_nodes = 3; replication_factor = 1 }
  in
  let db = Database.create engine ~kv_config:config () in
  let pns = List.init 2 (fun _ -> Database.add_pn db ()) in
  let n = Tpcc.Loader.load (Database.cluster db) ~scale:tiny_scale ~seed:11 in
  Printf.printf "loaded %d records\n%!" n;
  let tell = Tpcc.Tell_engine.create db ~pns ~scale:tiny_scale in
  let rng = Sim.Rng.make 3 in
  let counts = Array.make 8 0 in
  for terminal_id = 0 to 7 do
    let term_rng = Sim.Rng.split rng in
    Sim.Engine.spawn engine (fun () ->
        let conn = Tpcc.Tell_engine.connect tell ~terminal_id in
        let home_w = (terminal_id mod tiny_scale.warehouses) + 1 in
        while true do
          let input =
            Tpcc.Spec.gen_txn term_rng ~scale:tiny_scale ~mix:Tpcc.Spec.standard_mix ~home_w
          in
          let _ = Tpcc.Tell_engine.execute conn input in
          counts.(terminal_id) <- counts.(terminal_id) + 1
        done)
  done;
  Sim.Engine.spawn engine (fun () ->
      while true do
        Sim.Engine.sleep engine 10_000_000;
        let cm = List.nth (Database.commit_managers db) 0 in
        let snap = Commit_manager.current_snapshot cm in
        Printf.printf "t=%dms txns=%d base=%d above=%d active=%d lav=%d events=%d\n%!"
          (Sim.Engine.now engine / 1_000_000)
          (Array.fold_left ( + ) 0 counts)
          (Version_set.base snap) (Version_set.cardinal_above snap)
          (Commit_manager.active_count cm) (Commit_manager.current_lav cm)
          (Sim.Engine.pending_events engine)
      done);
  Sim.Engine.run engine ~until:450_000_000 ();
  Printf.printf "sim end, pending=%d\n%!" (Sim.Engine.pending_events engine)
