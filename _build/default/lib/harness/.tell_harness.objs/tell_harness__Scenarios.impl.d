lib/harness/scenarios.ml: Buffer_pool Database List Tell_baselines Tell_core Tell_kv Tell_sim Tell_tpcc
