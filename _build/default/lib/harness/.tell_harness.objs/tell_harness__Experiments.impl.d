lib/harness/experiments.ml: Array Buffer_pool Database Float Hashtbl List Option Pn Printf Pushdown Query Scenarios String Tell_core Tell_kv Tell_sim Tell_tpcc Value
