(* One function per table/figure of the paper's evaluation (§6), each
   printing the same rows/series the paper reports.  [Quick] shrinks the
   sweep (fewer points, shorter windows) for CI; [Full] runs the complete
   grids. *)

module Sim = Tell_sim
module Tpcc = Tell_tpcc
open Tell_core

type intensity = Quick | Full

let section title =
  Printf.printf "\n=== %s ===\n%!" title

let row fmt = Printf.printf (fmt ^^ "\n%!")

let tpmc_of = Scenarios.committed_tpmc

let report_of = function Scenarios.Report r -> Some r | Scenarios.Out_of_memory -> None

(* --- Table 1: design-principle matrix (static, from §3) ---------------------------- *)

let table1 _intensity =
  section "Table 1: Comparison of selected databases and storage systems";
  let line (system, shared, decoupled, in_memory, acid, sql) =
    row "%-28s %-12s %-11s %-10s %-6s %-8s" system shared decoupled in_memory acid sql
  in
  row "%-28s %-12s %-11s %-10s %-6s %-8s" "System" "Shared-data" "Decoupling" "In-memory"
    "ACID" "Complex-queries";
  List.iter line
    [
      ("Tell (this repo)", "yes", "yes", "yes", "yes", "yes");
      ("Oracle RAC", "yes", "no", "no", "yes", "yes");
      ("FoundationDB", "yes", "yes", "yes", "yes", "yes");
      ("Google F1", "yes", "yes", "no", "yes", "yes");
      ("OMID", "yes", "yes", "no", "yes", "no");
      ("Hyder", "yes", "yes", "no", "yes", "(yes)");
      ("VoltDB", "no", "no", "yes", "yes", "yes");
      ("Azure SQL Database", "no", "no", "no", "yes", "yes");
      ("Google BigTable", "no", "yes", "no", "no", "no");
    ]

(* --- Table 2: workload mixes, verified empirically against the generator ----------- *)

let table2 _intensity =
  section "Table 2: TPC-C transaction mixes (specified vs generated)";
  let sample mix =
    let rng = Sim.Rng.make 17 in
    let scale = Tpcc.Spec.sim_scale ~warehouses:8 in
    let counts = Hashtbl.create 8 in
    let writes = ref 0 in
    let n = 200_000 in
    for _ = 1 to n do
      let txn = Tpcc.Spec.gen_txn rng ~scale ~mix ~home_w:1 in
      let name = Tpcc.Spec.txn_name txn in
      Hashtbl.replace counts name (1 + Option.value ~default:0 (Hashtbl.find_opt counts name));
      match txn with
      | Tpcc.Spec.New_order _ | Tpcc.Spec.Payment _ | Tpcc.Spec.Delivery _ -> incr writes
      | Tpcc.Spec.Order_status _ | Tpcc.Spec.Stock_level _ -> ()
    done;
    let pct name = 100.0 *. float_of_int (Option.value ~default:0 (Hashtbl.find_opt counts name)) /. float_of_int n in
    (pct "new-order", pct "payment", pct "delivery", pct "order-status", pct "stock-level")
  in
  row "%-28s %-10s %-9s %-9s %-9s %-13s %-12s" "Mix" "new-order" "payment" "delivery"
    "ord-stat" "stock-level" "(spec NO/P/D/OS/SL)";
  List.iter
    (fun (mix : Tpcc.Spec.mix) ->
      let no, p, d, os, sl = sample mix in
      row "%-28s %9.2f%% %8.2f%% %8.2f%% %8.2f%% %11.2f%%  (%d/%d/%d/%d/%d)" mix.mix_name no p
        d os sl mix.pct_new_order mix.pct_payment mix.pct_delivery mix.pct_order_status
        mix.pct_stock_level)
    [ Tpcc.Spec.standard_mix; Tpcc.Spec.read_intensive_mix; Tpcc.Spec.shardable_mix ]

(* --- Figure 5 / Figure 6: processing scale-out ------------------------------------- *)

let pn_points = function Quick -> [ 1; 4; 8 ] | Full -> [ 1; 2; 4; 6; 8 ]
let rf_points = function Quick -> [ 1; 3 ] | Full -> [ 1; 2; 3 ]

let windows = function
  | Quick -> (50_000_000, 150_000_000)
  | Full -> (60_000_000, 250_000_000)

let scale_out ~intensity ~mix ~label ~metric_name ~metric =
  section label;
  let warmup_ns, measure_ns = windows intensity in
  row "%-6s %s" "PNs" (String.concat "" (List.map (fun rf -> Printf.sprintf "%14s" (Printf.sprintf "RF%d %s" rf metric_name)) (rf_points intensity)));
  List.iter
    (fun n_pns ->
      let cells =
        List.map
          (fun rf ->
            let outcome =
              Scenarios.run_tell
                { Scenarios.default_tell with n_pns; rf; mix; warmup_ns; measure_ns }
            in
            match report_of outcome with
            | Some r -> Printf.sprintf "%14.0f" (metric r)
            | None -> Printf.sprintf "%14s" "OOM")
          (rf_points intensity)
      in
      row "%-6d %s" n_pns (String.concat "" cells))
    (pn_points intensity)

let fig5 intensity =
  scale_out ~intensity ~mix:Tpcc.Spec.standard_mix
    ~label:"Figure 5: Scale-out processing (write-intensive), TpmC by RF" ~metric_name:"TpmC"
    ~metric:Tpcc.Driver.tpmc;
  (* The paper also reports the abort-rate growth with PNs (2.91 % at 1 PN
     to 14.72 % at 8 PNs, RF1). *)
  section "Figure 5 (companion): abort rate vs PNs (RF1)";
  let warmup_ns, measure_ns = windows intensity in
  List.iter
    (fun n_pns ->
      match
        report_of
          (Scenarios.run_tell { Scenarios.default_tell with n_pns; warmup_ns; measure_ns })
      with
      | Some r -> row "%-6d %6.2f%%" n_pns (Tpcc.Driver.abort_rate r)
      | None -> row "%-6d OOM" n_pns)
    (pn_points intensity)

let fig6 intensity =
  scale_out ~intensity ~mix:Tpcc.Spec.read_intensive_mix
    ~label:"Figure 6: Scale-out processing (read-intensive), Tps by RF" ~metric_name:"Tps"
    ~metric:Tpcc.Driver.tps

(* --- Table 3: commit managers ------------------------------------------------------- *)

let table3 intensity =
  section "Table 3: Commit managers (write-intensive, 8 PNs, 7 SNs, RF1)";
  let warmup_ns, measure_ns = windows intensity in
  row "%-18s %-12s %-12s" "Commit managers" "TpmC" "Tx abort rate";
  List.iter
    (fun n_cms ->
      match
        report_of
          (Scenarios.run_tell
             { Scenarios.default_tell with n_pns = 8; n_cms; warmup_ns; measure_ns })
      with
      | Some r -> row "%-18d %-12.0f %9.2f%%" n_cms (Tpcc.Driver.tpmc r) (Tpcc.Driver.abort_rate r)
      | None -> row "%-18d OOM" n_cms)
    [ 1; 2; 4 ]

(* --- Figure 7: storage scale-out ----------------------------------------------------- *)

let fig7 intensity =
  section "Figure 7: Scale-out storage (write-intensive, RF3): TpmC";
  let warmup_ns, measure_ns = windows intensity in
  let warehouses = Scenarios.default_tell.warehouses in
  (* Per-SN memory capacity sized so that the 3-SN configuration has thin
     headroom: the benchmark's inserts then exhaust it under high load —
     the paper's "too much data for 3 SNs beyond 5 PNs" wall. *)
  let loaded_bytes =
    let engine = Sim.Engine.create () in
    let kv = Tell_kv.Cluster.create engine { Tell_kv.Cluster.default_config with n_storage_nodes = 3; replication_factor = 3 } in
    let _ = Tpcc.Loader.load kv ~scale:(Tpcc.Spec.sim_scale ~warehouses) ~seed:5 in
    Tell_kv.Cluster.total_bytes_stored kv
  in
  let capacity = (loaded_bytes / 3) + (loaded_bytes / 320) in
  row "(per-SN capacity: %d MB)" (capacity / 1024 / 1024);
  let sn_points = [ 3; 5; 7 ] in
  let pn_range = pn_points intensity in
  row "%-6s %s" "PNs"
    (String.concat "" (List.map (fun sn -> Printf.sprintf "%14s" (Printf.sprintf "SN%d TpmC" sn)) sn_points));
  List.iter
    (fun n_pns ->
      let cells =
        List.map
          (fun n_sns ->
            let outcome =
              Scenarios.run_tell
                {
                  Scenarios.default_tell with
                  n_pns;
                  n_sns;
                  rf = 3;
                  sn_capacity_bytes = capacity;
                  warmup_ns;
                  measure_ns;
                }
            in
            match report_of outcome with
            | Some r -> Printf.sprintf "%14.0f" (Tpcc.Driver.tpmc r)
            | None -> Printf.sprintf "%14s" "OOM")
          sn_points
      in
      row "%-6d %s" n_pns (String.concat "" cells))
    pn_range

(* --- Figures 8/9 + Table 4: engine comparison ---------------------------------------- *)

let tell_ladder = function
  | Quick -> [ (1, 3); (8, 7) ]
  | Full -> [ (1, 3); (4, 5); (8, 7) ]

let voltdb_ladder = function Quick -> [ 3; 11 ] | Full -> [ 3; 7; 11 ]
let ndb_ladder = function Quick -> [ (3, 2); (9, 4) ] | Full -> [ (3, 2); (6, 3); (9, 4) ]
let fdb_ladder = function Quick -> [ 3; 9 ] | Full -> [ 3; 6; 9 ]

type comparison_point = { system : string; cores : int; tpmc : float; report : Tpcc.Driver.report option }

(* The engine comparison runs at 128 warehouses: VoltDB's 66 partitions
   (11 nodes x 6) must own warehouses, approximating the paper's 200-WH
   setup. *)
let comparison_warehouses = 64

let comparison ~intensity ~mix ~tell_rf ~voltdb_k ~ndb_replicas =
  let warmup_ns, measure_ns = windows intensity in
  let tell_points =
    List.map
      (fun (n_pns, n_sns) ->
        let c =
          {
            Scenarios.default_tell with
            n_pns;
            n_sns;
            n_cms = 2;
            rf = tell_rf;
            mix;
            warehouses = comparison_warehouses;
            warmup_ns;
            measure_ns;
          }
        in
        let o = Scenarios.run_tell c in
        { system = "tell"; cores = Scenarios.tell_cores c; tpmc = tpmc_of o; report = report_of o })
      (tell_ladder intensity)
  in
  let voltdb_points =
    List.map
      (fun v_nodes ->
        let c =
          {
            Scenarios.default_voltdb with
            v_nodes;
            v_k_factor = voltdb_k;
            v_mix = mix;
            v_warehouses = comparison_warehouses;
            (* VoltDB needs a long window to reach steady state: terminals
               progressively pile up behind the serialized multi-partition
               initiator. *)
            v_warmup_ns = 3 * warmup_ns;
            v_measure_ns = 3 * measure_ns;
          }
        in
        let o = Scenarios.run_voltdb c in
        { system = "voltdb"; cores = Scenarios.voltdb_cores c; tpmc = tpmc_of o; report = report_of o })
      (voltdb_ladder intensity)
  in
  let ndb_points =
    List.map
      (fun (m_data_nodes, m_sql_nodes) ->
        let c =
          {
            Scenarios.default_ndb with
            m_data_nodes;
            m_sql_nodes;
            m_replicas = ndb_replicas;
            m_mix = mix;
            m_warehouses = comparison_warehouses;
            m_warmup_ns = warmup_ns;
            m_measure_ns = measure_ns;
          }
        in
        let o = Scenarios.run_ndb c in
        { system = "mysql-cluster"; cores = Scenarios.ndb_cores c; tpmc = tpmc_of o; report = report_of o })
      (ndb_ladder intensity)
  in
  (tell_points, voltdb_points, ndb_points)

let print_points points =
  List.iter (fun p -> row "  %-16s cores=%-4d TpmC=%10.0f" p.system p.cores p.tpmc) points

let fig8 intensity =
  section "Figure 8: Throughput (TPC-C standard, RF3) vs total cores";
  let tell_points, voltdb_points, ndb_points =
    comparison ~intensity ~mix:Tpcc.Spec.standard_mix ~tell_rf:3 ~voltdb_k:2 ~ndb_replicas:2
  in
  let warmup_ns, measure_ns = windows intensity in
  let fdb_points =
    List.map
      (fun f_nodes ->
        let c =
          {
            Scenarios.default_fdb with
            f_nodes;
            f_warehouses = comparison_warehouses;
            f_warmup_ns = warmup_ns;
            f_measure_ns = measure_ns;
          }
        in
        let o = Scenarios.run_fdb c in
        { system = "foundationdb"; cores = Scenarios.fdb_cores c; tpmc = tpmc_of o; report = report_of o })
      (fdb_ladder intensity)
  in
  print_points tell_points;
  print_points voltdb_points;
  print_points ndb_points;
  print_points fdb_points;
  (tell_points, voltdb_points, ndb_points, fdb_points)

let fig9 intensity =
  section "Figure 9: Throughput (TPC-C shardable) vs total cores, RF1 and RF3";
  let by_rf rf_label ~tell_rf ~voltdb_k ~ndb_replicas =
    row " -- %s --" rf_label;
    let tell_points, voltdb_points, ndb_points =
      comparison ~intensity ~mix:Tpcc.Spec.shardable_mix ~tell_rf ~voltdb_k ~ndb_replicas
    in
    print_points tell_points;
    print_points voltdb_points;
    print_points ndb_points;
    (tell_points, voltdb_points, ndb_points)
  in
  let rf1 = by_rf "RF1" ~tell_rf:1 ~voltdb_k:0 ~ndb_replicas:1 in
  let rf3 = by_rf "RF3" ~tell_rf:3 ~voltdb_k:2 ~ndb_replicas:2 in
  (rf1, rf3)

let latency_row label = function
  | Some (r : Tpcc.Driver.report) ->
      row "  %-22s %8.2f ± %-8.2f ms" label (Tpcc.Driver.mean_latency_ms r)
        (Tpcc.Driver.stddev_latency_ms r)
  | None -> row "  %-22s (no data)" label

let table4 intensity =
  section "Table 4: TPC-C transaction response time (mean ± stddev)";
  let warmup_ns, measure_ns = windows intensity in
  let tell ~mix ~pn_sn:(n_pns, n_sns) ~rf =
    report_of
      (Scenarios.run_tell
         {
           Scenarios.default_tell with
           n_pns;
           n_sns;
           rf;
           mix;
           warehouses = comparison_warehouses;
           warmup_ns;
           measure_ns;
         })
  in
  let volt ~mix ~nodes ~k =
    report_of
      (Scenarios.run_voltdb
         {
           Scenarios.default_voltdb with
           v_nodes = nodes;
           v_k_factor = k;
           v_mix = mix;
           v_warehouses = comparison_warehouses;
           v_warmup_ns = 3 * warmup_ns;
           v_measure_ns = 3 * measure_ns;
         })
  in
  let ndb ~mix ~dn_sql:(m_data_nodes, m_sql_nodes) =
    report_of
      (Scenarios.run_ndb
         {
           Scenarios.default_ndb with
           m_data_nodes;
           m_sql_nodes;
           m_replicas = 2;
           m_mix = mix;
           m_warehouses = comparison_warehouses;
           m_warmup_ns = warmup_ns;
           m_measure_ns = measure_ns;
         })
  in
  let fdb ~nodes =
    report_of
      (Scenarios.run_fdb
         {
           Scenarios.default_fdb with
           f_nodes = nodes;
           f_warehouses = comparison_warehouses;
           f_warmup_ns = warmup_ns;
           f_measure_ns = measure_ns;
         })
  in
  let std = Tpcc.Spec.standard_mix and shard = Tpcc.Spec.shardable_mix in
  row "Standard mix, small (22-24 cores):";
  latency_row "Tell" (tell ~mix:std ~pn_sn:(1, 3) ~rf:3);
  latency_row "MySQL Cluster" (ndb ~mix:std ~dn_sql:(3, 2));
  latency_row "VoltDB" (volt ~mix:std ~nodes:3 ~k:2);
  latency_row "FoundationDB" (fdb ~nodes:3);
  row "Standard mix, large (70-78 cores):";
  latency_row "Tell" (tell ~mix:std ~pn_sn:(8, 7) ~rf:3);
  latency_row "MySQL Cluster" (ndb ~mix:std ~dn_sql:(9, 4));
  latency_row "VoltDB" (volt ~mix:std ~nodes:9 ~k:2);
  latency_row "FoundationDB" (fdb ~nodes:9);
  (match intensity with
  | Quick -> ()
  | Full ->
      row "Shardable mix, small:";
      latency_row "Tell" (tell ~mix:shard ~pn_sn:(1, 3) ~rf:3);
      latency_row "VoltDB" (volt ~mix:shard ~nodes:3 ~k:2);
      row "Shardable mix, large:";
      latency_row "Tell" (tell ~mix:shard ~pn_sn:(8, 7) ~rf:3);
      latency_row "VoltDB" (volt ~mix:shard ~nodes:9 ~k:2))

(* --- Figure 10 + Table 5: network ---------------------------------------------------- *)

let fig10 intensity =
  section "Figure 10: InfiniBand vs 10Gb Ethernet (write-intensive, RF1): TpmC";
  let warmup_ns, measure_ns = windows intensity in
  row "%-6s %14s %14s %8s" "PNs" "InfiniBand" "10GbE" "ratio";
  List.iter
    (fun n_pns ->
      let run net =
        report_of
          (Scenarios.run_tell { Scenarios.default_tell with n_pns; net; warmup_ns; measure_ns })
      in
      match (run Sim.Net.infiniband, run Sim.Net.ethernet_10g) with
      | Some ib, Some eth ->
          row "%-6d %14.0f %14.0f %7.1fx" n_pns (Tpcc.Driver.tpmc ib) (Tpcc.Driver.tpmc eth)
            (Tpcc.Driver.tpmc ib /. Float.max 1.0 (Tpcc.Driver.tpmc eth))
      | _ -> row "%-6d (no data)" n_pns)
    (pn_points intensity)

let table5 intensity =
  section "Table 5: Network latency detail (8 PNs, RF1)";
  let warmup_ns, measure_ns = windows intensity in
  row "%-14s %12s %18s %10s %10s" "Network" "TpmC" "lat mean±σ (ms)" "TP99(ms)" "TP999(ms)";
  List.iter
    (fun (label, net) ->
      match
        report_of
          (Scenarios.run_tell
             { Scenarios.default_tell with n_pns = 8; net; warmup_ns; measure_ns })
      with
      | Some r ->
          row "%-14s %12.0f %9.2f ± %-6.2f %10.2f %10.2f" label (Tpcc.Driver.tpmc r)
            (Tpcc.Driver.mean_latency_ms r) (Tpcc.Driver.stddev_latency_ms r)
            (Tpcc.Driver.percentile_latency_ms r 99.0)
            (Tpcc.Driver.percentile_latency_ms r 99.9)
      | None -> row "%-14s (no data)" label)
    [ ("InfiniBand", Sim.Net.infiniband); ("10Gb Ethernet", Sim.Net.ethernet_10g) ]

(* --- Figure 11: buffering strategies --------------------------------------------------- *)

let fig11 intensity =
  section "Figure 11: Buffering strategies (write-intensive, RF1): TpmC";
  let warmup_ns, measure_ns = windows intensity in
  let strategies =
    [
      ("TB", Buffer_pool.Transaction_buffer);
      ("SB", Buffer_pool.Shared_record_buffer { capacity = 100_000 });
      ("SBVS10", Buffer_pool.Shared_vs_buffer { capacity = 100_000; unit_size = 10 });
      ("SBVS1000", Buffer_pool.Shared_vs_buffer { capacity = 100_000; unit_size = 1000 });
    ]
  in
  row "%-6s %s" "PNs"
    (String.concat "" (List.map (fun (name, _) -> Printf.sprintf "%12s" name) strategies));
  List.iter
    (fun n_pns ->
      let cells =
        List.map
          (fun (_, buffer) ->
            match
              report_of
                (Scenarios.run_tell
                   { Scenarios.default_tell with n_pns; buffer; warmup_ns; measure_ns })
            with
            | Some r -> Printf.sprintf "%12.0f" (Tpcc.Driver.tpmc r)
            | None -> Printf.sprintf "%12s" "OOM")
          strategies
      in
      row "%-6d %s" n_pns (String.concat "" cells))
    [ 1; 4; 8 ]

(* --- Ablation: §5.2 operator push-down ------------------------------------------------ *)

(* Not part of the paper's evaluation (it is proposed as future work in
   §5.2): quantify what executing selection/projection inside the storage
   nodes saves on an analytical scan over live data. *)
let ablation_pushdown _intensity =
  section "Ablation (§5.2): OLAP scan — PN-side pipeline vs storage-side push-down";
  let engine = Sim.Engine.create () in
  let db =
    Database.create engine
      ~kv_config:{ Tell_kv.Cluster.default_config with n_storage_nodes = 7 }
      ()
  in
  let pn = Database.add_pn db () in
  let scale = Tpcc.Spec.sim_scale ~warehouses:8 in
  let _ = Tpcc.Loader.load (Database.cluster db) ~scale ~seed:5 in
  let net = Tell_kv.Cluster.net (Database.cluster db) in
  (* Sum the open order lines of one warehouse: selective predicate,
     narrow projection — the push-down sweet spot. *)
  let predicate =
    Query.Binop
      ( Query.And,
        Query.Binop (Query.Eq, Query.Col 0, Query.Lit (Value.Int 3)),
        Query.Binop (Query.Eq, Query.Col 6, Query.Lit (Value.Int 0)) )
  in
  let measure label mk =
    let result = ref None in
    Sim.Engine.spawn engine (fun () ->
        Sim.Net.reset_counters net;
        let t0 = Sim.Engine.now engine in
        let total =
          Database.with_txn pn (fun txn ->
              let rows = Query.to_list (mk txn) in
              List.fold_left (fun acc r -> acc +. Value.as_float r.(0)) 0.0 rows)
        in
        result := Some (total, Sim.Engine.now engine - t0, Sim.Net.bytes_sent net));
    Sim.Engine.run engine ~until:(Sim.Engine.now engine + 30_000_000_000) ();
    match !result with
    | Some (total, elapsed_ns, bytes) ->
        row "  %-24s sum=%.2f  %8.2f virtual ms  %10d bytes over the network" label total
          (float_of_int elapsed_ns /. 1e6) bytes;
        (total, bytes)
    | None -> invalid_arg ("ablation did not finish: " ^ label)
  in
  let pn_side, pn_bytes =
    measure "PN-side scan" (fun txn ->
        Query.project
          [ Query.Col 8 ]
          (Query.filter predicate (Query.seq_scan txn ~table:"orderline")))
  in
  let pushed, pushed_bytes =
    measure "storage push-down" (fun txn ->
        Pushdown.scan txn ~table:"orderline" ~predicate ~projection:[ 8 ] ())
  in
  row "  results agree: %b; network bytes reduced %.1fx" (Float.abs (pn_side -. pushed) < 0.01)
    (float_of_int pn_bytes /. float_of_int (max 1 pushed_bytes))

(* --- Ablation: §5.1 aggressive request batching ---------------------------------------- *)

let ablation_batching intensity =
  section "Ablation (§5.1): request batching on vs off (write-intensive, 4 PNs, RF1)";
  let warmup_ns, measure_ns = windows intensity in
  let run ~max_batch =
    let engine = Sim.Engine.create () in
    let kv_config =
      { Tell_kv.Cluster.default_config with client_max_batch = max_batch }
    in
    let db = Database.create engine ~kv_config () in
    let pns = List.init 4 (fun _ -> Database.add_pn db ()) in
    let scale = Tpcc.Spec.sim_scale ~warehouses:32 in
    let _ = Tpcc.Loader.load (Database.cluster db) ~scale ~seed:5 in
    let tell = Tpcc.Tell_engine.create db ~pns ~scale in
    let config = { Tpcc.Driver.terminals = 32; warmup_ns; measure_ns; seed = 9 } in
    let report =
      Tpcc.Driver.run
        (module Tpcc.Tell_engine : Tpcc.Engine_intf.ENGINE
          with type t = Tpcc.Tell_engine.t
           and type conn = Tpcc.Tell_engine.conn)
        tell ~engine ~scale ~mix:Tpcc.Spec.standard_mix ~config ()
    in
    let pn = List.nth pns 0 in
    let requests = Tell_kv.Client.requests_sent (Pn.kv pn) in
    let ops = Tell_kv.Client.ops_sent (Pn.kv pn) in
    (Tpcc.Driver.tpmc report, float_of_int ops /. float_of_int (max 1 requests))
  in
  let tpmc_on, ratio_on = run ~max_batch:64 in
  let tpmc_off, ratio_off = run ~max_batch:1 in
  row "  batching on   TpmC=%10.0f  ops/request=%.2f" tpmc_on ratio_on;
  row "  batching off  TpmC=%10.0f  ops/request=%.2f" tpmc_off ratio_off;
  row "  batching gain: %.2fx" (tpmc_on /. Float.max 1.0 tpmc_off)

(* --- entry points ------------------------------------------------------------------------ *)

let all intensity =
  table1 intensity;
  table2 intensity;
  fig5 intensity;
  fig6 intensity;
  table3 intensity;
  fig7 intensity;
  ignore (fig8 intensity);
  ignore (fig9 intensity);
  table4 intensity;
  fig10 intensity;
  table5 intensity;
  fig11 intensity;
  ablation_pushdown intensity;
  ablation_batching intensity

let by_name name intensity =
  match String.lowercase_ascii name with
  | "table1" -> table1 intensity
  | "table2" -> table2 intensity
  | "fig5" -> fig5 intensity
  | "fig6" -> fig6 intensity
  | "table3" -> table3 intensity
  | "fig7" -> fig7 intensity
  | "fig8" -> ignore (fig8 intensity)
  | "fig9" -> ignore (fig9 intensity)
  | "table4" -> table4 intensity
  | "fig10" -> fig10 intensity
  | "table5" -> table5 intensity
  | "fig11" -> fig11 intensity
  | "ablation" -> ablation_pushdown intensity
  | "ablation-batching" -> ablation_batching intensity
  | "all" -> all intensity
  | other -> invalid_arg ("unknown experiment: " ^ other)

let names =
  [ "table1"; "table2"; "fig5"; "fig6"; "table3"; "fig7"; "fig8"; "fig9"; "table4"; "fig10"; "table5"; "fig11"; "ablation"; "ablation-batching" ]
