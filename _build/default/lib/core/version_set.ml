module ISet = Set.Make (Int)

type t = { base : int; above : ISet.t }

let normalize t =
  let rec advance base above =
    if ISet.mem (base + 1) above then advance (base + 1) (ISet.remove (base + 1) above)
    else { base; above }
  in
  advance t.base (ISet.filter (fun x -> x > t.base) t.above)

let empty = { base = 0; above = ISet.empty }
let of_base base = { base; above = ISet.empty }
let base t = t.base
let above t = ISet.elements t.above
let mem t x = x <= t.base || ISet.mem x t.above
let add t x = if mem t x then t else normalize { t with above = ISet.add x t.above }

let union a b =
  let lo, hi = if a.base <= b.base then (a, b) else (b, a) in
  normalize { base = hi.base; above = ISet.union (ISet.filter (fun x -> x > hi.base) lo.above) hi.above }

let subset a b =
  let rec range_covered x = x > a.base || (ISet.mem x b.above && range_covered (x + 1)) in
  (a.base <= b.base || range_covered (b.base + 1))
  && ISet.for_all (fun x -> mem b x) a.above

let equal a b = a.base = b.base && ISet.equal a.above b.above

let max_elt t = match ISet.max_elt_opt t.above with Some m -> m | None -> t.base

let cardinal_above t = ISet.cardinal t.above

let encode t =
  let buf = Buffer.create 32 in
  Codec.put_int buf t.base;
  Codec.put_int buf (ISet.cardinal t.above);
  ISet.iter (Codec.put_int buf) t.above;
  Buffer.contents buf

let decode s =
  let base, pos = Codec.get_int s 0 in
  let n, pos = Codec.get_int s pos in
  let above = ref ISet.empty in
  let pos = ref pos in
  for _ = 1 to n do
    let v, p = Codec.get_int s !pos in
    above := ISet.add v !above;
    pos := p
  done;
  normalize { base; above = !above }

let pp ppf t =
  Fmt.pf ppf "{<=%d%a}" t.base
    (fun ppf above -> ISet.iter (fun x -> Fmt.pf ppf ",%d" x) above)
    t.above
