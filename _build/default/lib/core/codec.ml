(* Binary codecs shared by the record store mapping.

   Two families:
   - plain serialisation (length-prefixed, little-endian) for record
     payloads, log entries, and B+tree nodes;
   - order-preserving encoding for index keys, where byte-wise
     lexicographic order must equal {!Value.compare} order. *)

let put_int64 buf v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  Buffer.add_bytes buf b

let get_int64 s pos = (String.get_int64_le s pos, pos + 8)

let put_int buf v = put_int64 buf (Int64.of_int v)

let get_int s pos =
  let v, pos = get_int64 s pos in
  (Int64.to_int v, pos)

let put_string buf s =
  put_int buf (String.length s);
  Buffer.add_string buf s

let get_string s pos =
  let len, pos = get_int s pos in
  (String.sub s pos len, pos + len)

let put_value buf (v : Value.t) =
  match v with
  | Null -> Buffer.add_char buf '\x00'
  | Int i ->
      Buffer.add_char buf '\x01';
      put_int buf i
  | Float f ->
      (* Raw IEEE-754 bits: converting through a 63-bit OCaml int would
         corrupt the sign of values with the 2^62 bit set. *)
      Buffer.add_char buf '\x02';
      put_int64 buf (Int64.bits_of_float f)
  | Str s ->
      Buffer.add_char buf '\x03';
      put_string buf s

let get_value s pos : Value.t * int =
  match s.[pos] with
  | '\x00' -> (Null, pos + 1)
  | '\x01' ->
      let i, pos = get_int s (pos + 1) in
      (Int i, pos)
  | '\x02' ->
      let bits, pos = get_int64 s (pos + 1) in
      (Float (Int64.float_of_bits bits), pos)
  | '\x03' ->
      let str, pos = get_string s (pos + 1) in
      (Str str, pos)
  | c -> invalid_arg (Printf.sprintf "Codec.get_value: bad tag %C" c)

let encode_tuple (tuple : Value.t array) =
  let buf = Buffer.create 64 in
  put_int buf (Array.length tuple);
  Array.iter (put_value buf) tuple;
  Buffer.contents buf

let decode_tuple s pos : Value.t array * int =
  let n, pos = get_int s pos in
  let tuple = Array.make n Value.Null in
  let pos = ref pos in
  for i = 0 to n - 1 do
    let v, next = get_value s !pos in
    tuple.(i) <- v;
    pos := next
  done;
  (tuple, !pos)

(* {1 Order-preserving key encoding}

   Byte-wise lexicographic comparison of encoded keys equals
   {!Value.compare} order for components of the same type — the case that
   matters, since index columns are homogeneously typed.  Across types the
   order is NULL < INT < FLOAT < TEXT (by tag), which can differ from
   {!Value.compare}'s numeric Int/Float interleaving; an exact
   order-preserving encoding across the two numeric types at full 63-bit
   precision does not exist in a fixed-width prefix code.

   Integers flip the sign bit and use big-endian bytes; floats use the
   standard IEEE total-order trick (flip all bits for negatives, flip the
   sign for positives); strings escape '\x00' as "\x00\xff" and terminate
   with "\x00\x00" so that prefixes sort first and embedded zero bytes
   stay ordered. *)

let add_be_int64 buf v =
  let b = Bytes.create 8 in
  Bytes.set_int64_be b 0 v;
  Buffer.add_bytes buf b

let add_key_int buf i =
  add_be_int64 buf (Int64.logxor (Int64.of_int i) Int64.min_int)

let add_key_float buf f =
  let bits = Int64.bits_of_float f in
  let ordered =
    if Int64.compare bits 0L >= 0 then Int64.logxor bits Int64.min_int else Int64.lognot bits
  in
  add_be_int64 buf ordered

let add_key_string buf s =
  String.iter
    (fun c ->
      if c = '\x00' then Buffer.add_string buf "\x00\xff" else Buffer.add_char buf c)
    s;
  Buffer.add_string buf "\x00\x00"

let add_key_value buf (v : Value.t) =
  match v with
  | Null -> Buffer.add_char buf '\x01'
  | Int i ->
      Buffer.add_char buf '\x02';
      add_key_int buf i
  | Float f ->
      Buffer.add_char buf '\x03';
      add_key_float buf f
  | Str s ->
      Buffer.add_char buf '\x04';
      add_key_string buf s

let encode_key (components : Value.t list) =
  let buf = Buffer.create 32 in
  List.iter (add_key_value buf) components;
  Buffer.contents buf

(* Smallest key strictly greater than every key having [components] as a
   prefix — used as an exclusive upper bound for prefix range scans. *)
let encode_key_successor components = encode_key components ^ "\xff"
