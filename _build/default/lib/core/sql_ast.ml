(* Abstract syntax of the SQL subset Tell's processing nodes accept. *)

type expr =
  | E_col of string option * string  (* optional qualifier, column name *)
  | E_lit of Value.t
  | E_binop of Query.binop * expr * expr
  | E_not of expr
  | E_is_null of expr * bool  (* true = IS NULL, false = IS NOT NULL *)
  | E_func of string * expr list  (* COUNT/SUM/MIN/MAX/AVG or scalar *)
  | E_in of expr * expr list  (* e IN (v1, v2, ...) *)
  | E_between of expr * expr * expr  (* e BETWEEN lo AND hi *)
  | E_like of expr * string  (* e LIKE 'pattern' with % and _ *)
  | E_star  (* only as the argument of COUNT( * ) *)

type from_item = { fi_table : string; fi_alias : string option }

type order_dir = Asc | Desc

type select = {
  sel_exprs : (expr * string option) list;  (* ignored when sel_star *)
  sel_star : bool;
  sel_distinct : bool;
  from : from_item list;
  where : expr option;
  group_by : expr list;
  having : expr option;
  order_by : (expr * order_dir) list;
  limit : int option;
}

type statement =
  | Select of select
  | Insert of { table : string; columns : string list option; values : expr list list }
  | Update of { table : string; sets : (string * expr) list; where : expr option }
  | Delete of { table : string; where : expr option }
  | Create_table of {
      table : string;
      cols : (string * Value.ty) list;
      primary_key : string list;
    }
  | Create_index of { index : string; table : string; columns : string list; unique : bool }

exception Parse_error of string
