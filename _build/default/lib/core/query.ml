type binop =
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or
  | Add | Sub | Mul | Div | Mod

type expr =
  | Col of int
  | Lit of Value.t
  | Binop of binop * expr * expr
  | Not of expr
  | Is_null of expr
  | Like of expr * string

exception Type_error of string

let bool_value b = Value.Int (if b then 1 else 0)

let truthy = function
  | Value.Null -> false
  | Value.Int i -> i <> 0
  | Value.Float f -> f <> 0.0
  | Value.Str s -> s <> ""

let arith op a b =
  match (a, b) with
  | Value.Null, _ | _, Value.Null -> Value.Null
  | Value.Int x, Value.Int y -> (
      Value.Int
        (match op with
        | Add -> x + y
        | Sub -> x - y
        | Mul -> x * y
        | Div -> if y = 0 then raise (Type_error "division by zero") else x / y
        | Mod -> if y = 0 then raise (Type_error "division by zero") else x mod y
        | Eq | Ne | Lt | Le | Gt | Ge | And | Or -> assert false))
  | a, b ->
      let x = Value.as_float a and y = Value.as_float b in
      Value.Float
        (match op with
        | Add -> x +. y
        | Sub -> x -. y
        | Mul -> x *. y
        | Div -> x /. y
        | Mod -> Float.rem x y
        | Eq | Ne | Lt | Le | Gt | Ge | And | Or -> assert false)

(* SQL LIKE matching: '%' matches any sequence, '_' any single char. *)
let like_match ~pattern text =
  let np = String.length pattern and nt = String.length text in
  let rec go p t =
    if p = np then t = nt
    else begin
      match pattern.[p] with
      | '%' ->
          let rec try_from t' = t' <= nt && (go (p + 1) t' || try_from (t' + 1)) in
          try_from t
      | '_' -> t < nt && go (p + 1) (t + 1)
      | c -> t < nt && text.[t] = c && go (p + 1) (t + 1)
    end
  in
  go 0 0

let rec eval row expr =
  match expr with
  | Col i ->
      if i < 0 || i >= Array.length row then
        raise (Type_error (Printf.sprintf "column %d out of range (row width %d)" i (Array.length row)))
      else row.(i)
  | Lit v -> v
  | Not e -> bool_value (not (truthy (eval row e)))
  | Is_null e -> bool_value (Value.is_null (eval row e))
  | Like (e, pattern) -> (
      match eval row e with
      | Value.Null -> Value.Null
      | v -> bool_value (like_match ~pattern (Value.to_string v)))
  | Binop (op, e1, e2) -> (
      match op with
      | And -> bool_value (truthy (eval row e1) && truthy (eval row e2))
      | Or -> bool_value (truthy (eval row e1) || truthy (eval row e2))
      | Add | Sub | Mul | Div | Mod -> arith op (eval row e1) (eval row e2)
      | Eq | Ne | Lt | Le | Gt | Ge ->
          let a = eval row e1 and b = eval row e2 in
          if Value.is_null a || Value.is_null b then Value.Null
          else begin
            let c = Value.compare a b in
            bool_value
              (match op with
              | Eq -> c = 0
              | Ne -> c <> 0
              | Lt -> c < 0
              | Le -> c <= 0
              | Gt -> c > 0
              | Ge -> c >= 0
              | And | Or | Add | Sub | Mul | Div | Mod -> assert false)
          end)

let eval_bool row expr = truthy (eval row expr)

(* --- iterators ----------------------------------------------------------------- *)

type iter = unit -> Value.t array option

let next it = it ()

let to_list it =
  let rec drain acc = match it () with Some row -> drain (row :: acc) | None -> List.rev acc in
  drain []

let iter_rows it f =
  let rec loop () =
    match it () with
    | Some row ->
        f row;
        loop ()
    | None -> ()
  in
  loop ()

let of_list rows =
  let remaining = ref rows in
  fun () ->
    match !remaining with
    | [] -> None
    | row :: rest ->
        remaining := rest;
        Some row

let scan_batch_size = 128

let seq_scan txn ~table =
  let top = Pn.max_rid (Txn.pn txn) ~table in
  let pending = ref (List.sort (fun (a, _) (b, _) -> Int.compare a b) (Txn.pending_rows txn ~table)) in
  let batch = ref [] in
  let cursor = ref 1 in
  let rec pull () =
    match !batch with
    | (rid, tuple) :: rest ->
        batch := rest;
        (* Pending writes already include updated tuples; skip the rid in
           the pending list so it is not emitted twice. *)
        pending := List.filter (fun (r, _) -> r <> rid) !pending;
        ignore tuple;
        Some tuple
    | [] ->
        if !cursor > top then begin
          match !pending with
          | [] -> None
          | (rid, tuple) :: rest ->
              pending := rest;
              ignore rid;
              Some tuple
        end
        else begin
          let stop = min top (!cursor + scan_batch_size - 1) in
          let rids = List.init (stop - !cursor + 1) (fun i -> !cursor + i) in
          cursor := stop + 1;
          batch := Txn.read_batch txn ~table ~rids;
          pull ()
        end
  in
  pull

let index_scan txn ~table ~index ~lo ~hi =
  let schema = Pn.schema (Txn.pn txn) ~table in
  let idx =
    match List.find_opt (fun (i : Schema.index) -> i.idx_name = index) (Schema.all_indexes schema) with
    | Some i -> i
    | None -> raise (Schema.Schema_error (Printf.sprintf "no index %s on %s" index table))
  in
  let entries = ref (Txn.index_range txn ~index ~lo ~hi) in
  let rec pull () =
    match !entries with
    | [] -> None
    | (entry_key, rid) :: rest -> (
        entries := rest;
        match Txn.read txn ~table ~rid with
        | Some tuple
          when Codec.encode_key (Schema.key_of_tuple ~columns:idx.idx_columns tuple) = entry_key ->
            Some tuple
        | Some _ -> pull ()
        | None ->
            (* Version-unaware index: the entry may be left over from an
               old version.  If no stored version carries the key at all,
               collect it (§5.4). *)
            (match Txn.read_record txn ~table ~rid with
            | None -> Txn.gc_index_entry txn ~index ~key:entry_key ~rid
            | Some record ->
                let key_live =
                  List.exists
                    (fun (v : Record.version) ->
                      match v.payload with
                      | Record.Tombstone -> false
                      | Record.Tuple tuple ->
                          Codec.encode_key (Schema.key_of_tuple ~columns:idx.idx_columns tuple)
                          = entry_key)
                    (Record.versions record)
                in
                if not key_live then Txn.gc_index_entry txn ~index ~key:entry_key ~rid);
            pull ())
  in
  pull

let index_scan_eq txn ~table ~index ~key =
  let lo = Codec.encode_key key in
  index_scan txn ~table ~index ~lo ~hi:(lo ^ "\x00")

let filter pred it =
  let rec pull () =
    match it () with
    | None -> None
    | Some row -> if eval_bool row pred then Some row else pull ()
  in
  pull

let project exprs it =
  fun () ->
    match it () with
    | None -> None
    | Some row -> Some (Array.of_list (List.map (eval row) exprs))

let nested_loop_join ~outer ~inner =
  let current_outer = ref None in
  let current_inner = ref (of_list []) in
  let rec pull () =
    match !current_inner () with
    | Some inner_row -> (
        match !current_outer with
        | Some outer_row -> Some (Array.append outer_row inner_row)
        | None -> assert false)
    | None -> (
        match outer () with
        | None -> None
        | Some outer_row ->
            current_outer := Some outer_row;
            current_inner := inner outer_row;
            pull ())
  in
  pull

let sort ~by it =
  let materialized = lazy (
    let rows = to_list it in
    let compare_rows a b =
      let rec go = function
        | [] -> 0
        | (expr, dir) :: rest -> (
            let c = Value.compare (eval a expr) (eval b expr) in
            let c = match dir with `Asc -> c | `Desc -> -c in
            match c with 0 -> go rest | c -> c)
      in
      go by
    in
    ref (List.stable_sort compare_rows rows))
  in
  fun () ->
    let rows = Lazy.force materialized in
    match !rows with
    | [] -> None
    | row :: rest ->
        rows := rest;
        Some row

let limit n it =
  let emitted = ref 0 in
  fun () ->
    if !emitted >= n then None
    else begin
      match it () with
      | None -> None
      | Some row ->
          incr emitted;
          Some row
    end

let distinct it =
  let seen = Hashtbl.create 64 in
  let rec pull () =
    match it () with
    | None -> None
    | Some row ->
        let key = String.concat "\x00" (Array.to_list (Array.map Value.to_string row)) in
        if Hashtbl.mem seen key then pull ()
        else begin
          Hashtbl.replace seen key ();
          Some row
        end
  in
  pull

(* --- aggregation --------------------------------------------------------------- *)

type agg =
  | Count_star
  | Count of expr
  | Sum of expr
  | Min of expr
  | Max of expr
  | Avg of expr

type acc = { mutable count : int; mutable sum : float; mutable sum_is_int : bool; mutable vmin : Value.t; mutable vmax : Value.t }

let fresh_acc () = { count = 0; sum = 0.0; sum_is_int = true; vmin = Value.Null; vmax = Value.Null }

let feed acc (v : Value.t) =
  if not (Value.is_null v) then begin
    acc.count <- acc.count + 1;
    (match v with
    | Value.Int i -> acc.sum <- acc.sum +. float_of_int i
    | Value.Float f ->
        acc.sum <- acc.sum +. f;
        acc.sum_is_int <- false
    | Value.Str _ | Value.Null -> ());
    if Value.is_null acc.vmin || Value.compare v acc.vmin < 0 then acc.vmin <- v;
    if Value.is_null acc.vmax || Value.compare v acc.vmax > 0 then acc.vmax <- v
  end

let finish agg acc =
  match agg with
  | Count_star | Count _ -> Value.Int acc.count
  | Sum _ ->
      if acc.count = 0 then Value.Null
      else if acc.sum_is_int then Value.Int (int_of_float acc.sum)
      else Value.Float acc.sum
  | Min _ -> acc.vmin
  | Max _ -> acc.vmax
  | Avg _ -> if acc.count = 0 then Value.Null else Value.Float (acc.sum /. float_of_int acc.count)

let aggregate ~group_by ~aggs it =
  let groups : (Value.t list, acc array) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  iter_rows it (fun row ->
      let key = List.map (eval row) group_by in
      let accs =
        match Hashtbl.find_opt groups key with
        | Some accs -> accs
        | None ->
            let accs = Array.of_list (List.map (fun _ -> fresh_acc ()) aggs) in
            Hashtbl.replace groups key accs;
            order := key :: !order;
            accs
      in
      List.iteri
        (fun i agg ->
          match agg with
          | Count_star -> accs.(i).count <- accs.(i).count + 1
          | Count e | Sum e | Min e | Max e | Avg e -> feed accs.(i) (eval row e))
        aggs);
  let rows_of key accs =
    Array.of_list (key @ List.mapi (fun i agg -> finish agg accs.(i)) aggs)
  in
  let results =
    match (group_by, Hashtbl.length groups) with
    | [], 0 ->
        (* SQL: aggregates over an empty input produce a single row. *)
        [ rows_of [] (Array.of_list (List.map (fun _ -> fresh_acc ()) aggs)) ]
    | _ -> List.rev_map (fun key -> rows_of key (Hashtbl.find groups key)) !order
  in
  of_list results
