(** Relational schema descriptors.

    Every table maps to a rid-keyed record space plus a primary-key
    B+tree and optional secondary B+trees (§5.1, Figure 4).  Schemas are
    persisted in the store under "s/<table>" so any processing node can
    discover them. *)

type column = { col_name : string; col_type : Value.ty }

type index = {
  idx_name : string;
  idx_columns : int list;  (** positions into the table's columns *)
  idx_unique : bool;
}

type table = {
  tbl_name : string;
  columns : column array;
  primary_key : int list;
  secondary : index list;
}

exception Schema_error of string

val make_table :
  name:string ->
  columns:column list ->
  primary_key:string list ->
  secondary:(string * string list * bool) list ->
  table
(** [secondary] entries are (index name, column names, unique). *)

val column_index : table -> string -> int
(** Case-insensitive; raises {!Schema_error} when absent. *)

val primary_index_name : table -> string

val all_indexes : table -> index list
(** Primary first (if the table has a primary key), then secondary. *)

val key_of_tuple : columns:int list -> Value.t array -> Value.t list
val validate_tuple : table -> Value.t array -> unit
val encode_table : table -> string
val decode_table : string -> table
