(** Removing a transaction's version from a stored record — the shared
    primitive of commit-time rollback (§4.3, 4b) and fail-over recovery
    (§4.4.1).  An LL/SC retry loop: other transactions may be applying to
    the same record concurrently.  Deletes the cell outright when the
    removed version was the last one. *)

val remove_version : Tell_kv.Client.t -> key:string -> version:int -> unit
