(** Planning and execution of parsed SQL statements against a transaction.

    The planner picks equality-prefix index accesses on base tables,
    builds left-deep nested-loop joins with per-outer-row index lookups
    when a join predicate matches an index prefix, and handles
    aggregation with grouping, ORDER BY, DISTINCT, and LIMIT.  DDL
    (CREATE TABLE / CREATE INDEX with backfill) executes immediately
    against the store. *)

exception Plan_error of string

type result =
  | Rows of { columns : string list; rows : Value.t array list }
  | Affected of int
  | Created

val execute : Txn.t -> Sql_ast.statement -> result
val execute_string : Txn.t -> string -> result
