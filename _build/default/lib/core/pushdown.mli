(** Operator push-down into the storage layer — the §5.2 extension.

    OLAP-style scans normally ship every record of a table to the
    processing node ("data is shipped to the query"), which is bandwidth-
    and latency-heavy.  This module serialises a {e program} — a snapshot
    descriptor, a selection predicate, and a projection — that storage
    nodes evaluate locally against each record cell, returning only the
    projected tuples of visible, matching rows.

    The evaluator must be registered once per cluster (done by
    {!Database.create}); programs are self-contained, so any processing
    node can issue push-down scans against any storage node. *)

type program = {
  snapshot : Version_set.t;  (** visibility filter evaluated inside the SN *)
  predicate : Query.expr option;  (** over the full tuple; [None] = all rows *)
  projection : int list;  (** column positions to return; [[]] = whole tuple *)
}

val encode_program : program -> string
val decode_program : string -> program

val evaluator : program:string -> key:string -> data:string -> string option
(** The storage-node side: decode the record cell, select the snapshot's
    visible version, apply the predicate, project.  Registered via
    {!Tell_kv.Cluster.set_pushdown_evaluator}. *)

val scan :
  Txn.t -> table:string -> ?predicate:Query.expr -> ?projection:int list -> unit -> Query.iter
(** A full-table scan executed inside the storage layer under the
    transaction's snapshot.  The transaction's own pending writes for the
    table are merged in (with predicate and projection applied locally),
    so semantics match {!Query.seq_scan} + {!Query.filter} +
    {!Query.project}. *)

(** {1 Expression codec} (exposed for tests) *)

val encode_expr : Buffer.t -> Query.expr -> unit
val decode_expr : string -> int -> Query.expr * int
