(** Field values of relational tuples. *)

type t =
  | Null
  | Int of int
  | Float of float
  | Str of string

type ty = T_int | T_float | T_str

val type_name : ty -> string
val matches_type : t -> ty -> bool
(** NULL matches every type. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

val compare : t -> t -> int
(** SQL-style ordering used by ORDER BY and index keys: NULL first, then
    numbers (Int and Float compare numerically), then strings. *)

val as_int : t -> int
val as_float : t -> float
val as_string : t -> string
(** The [as_*] accessors raise [Invalid_argument] on a type mismatch
    (numeric coercions Int↔Float are permitted). *)

val is_null : t -> bool
