(* Lazy garbage collection (§5.4).

   The eager strategy in [Txn] compacts a record whenever it is written
   back; this background task covers rarely updated records: it sweeps all
   data records, drops versions no active transaction can reach, removes
   records whose surviving version is a tombstone, and prunes index
   entries whose key no longer appears in any stored version of the
   referenced record. *)

module Sim = Tell_sim
module Kv = Tell_kv

type stats = {
  mutable records_scanned : int;
  mutable versions_dropped : int;
  mutable records_dropped : int;
  mutable index_entries_dropped : int;
}

type t = { kv : Kv.Client.t; cm : Commit_manager.t; stats : stats }

let create cluster ~cm ~group =
  {
    kv = Kv.Client.create cluster ~group;
    cm;
    stats =
      { records_scanned = 0; versions_dropped = 0; records_dropped = 0; index_entries_dropped = 0 };
  }

let stats t = t.stats

let sweep_records t ~lav =
  let cells = Kv.Client.scan_all t.kv ~prefix:"r/" in
  List.iter
    (fun (key, data, token) ->
      t.stats.records_scanned <- t.stats.records_scanned + 1;
      let record = Record.decode data in
      let compacted, removed = Record.gc record ~lav in
      match removed with
      | [] -> ()
      | _ :: _ ->
          t.stats.versions_dropped <- t.stats.versions_dropped + List.length removed;
          if Record.is_empty compacted then begin
            (* Skip on conflict: a concurrent writer revived the record. *)
            (match Kv.Client.remove_if t.kv key (Some token) with
            | `Ok -> t.stats.records_dropped <- t.stats.records_dropped + 1
            | `Conflict -> ())
          end
          else ignore (Kv.Client.put_if t.kv key (Some token) (Record.encode compacted)))
    cells

(* An index entry (a, rid) is dead when no stored version of record [rid]
   still carries key [a] (the V_a \ G = ∅ condition of §5.4 after record
   compaction). *)
let sweep_index t ~table ~(index : Schema.index) =
  let tree = Btree.attach t.kv ~name:index.idx_name in
  let entries = Btree.range tree ~lo:"" ~hi:"\xff\xff\xff\xff" in
  List.iter
    (fun (entry_key, rid) ->
      let record_key = Keys.record ~table ~rid in
      let live =
        match Kv.Client.get t.kv record_key with
        | None -> false
        | Some (data, _) ->
            List.exists
              (fun (v : Record.version) ->
                match v.payload with
                | Record.Tombstone -> false
                | Record.Tuple tuple ->
                    Codec.encode_key (Schema.key_of_tuple ~columns:index.idx_columns tuple)
                    = entry_key)
              (Record.versions (Record.decode data))
      in
      if not live then begin
        Btree.remove tree ~key:entry_key ~rid;
        t.stats.index_entries_dropped <- t.stats.index_entries_dropped + 1
      end)
    entries

let run_once t ~tables =
  let lav = Commit_manager.current_lav t.cm in
  sweep_records t ~lav;
  List.iter
    (fun (table : Schema.table) ->
      List.iter
        (fun index -> sweep_index t ~table:table.tbl_name ~index)
        (Schema.all_indexes table))
    tables

(* The periodic background fiber ("e.g., every hour", §5.4 — scaled to
   simulation time). *)
let start_periodic t ~engine ~group ~period_ns ~tables =
  Sim.Engine.spawn engine ~group (fun () ->
      while true do
        Sim.Engine.sleep engine period_ns;
        run_once t ~tables
      done)
