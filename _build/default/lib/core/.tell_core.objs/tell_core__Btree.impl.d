lib/core/btree.ml: Array Buffer Codec Hashtbl Int Keys List Printf Stdlib String Tell_kv
