lib/core/query.mli: Txn Value
