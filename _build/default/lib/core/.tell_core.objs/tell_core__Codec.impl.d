lib/core/codec.ml: Array Buffer Bytes Int64 List Printf String Value
