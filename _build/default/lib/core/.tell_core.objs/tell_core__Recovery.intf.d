lib/core/recovery.mli: Commit_manager Tell_kv
