lib/core/pn.mli: Btree Buffer_pool Commit_manager Schema Tell_kv Tell_sim Version_set
