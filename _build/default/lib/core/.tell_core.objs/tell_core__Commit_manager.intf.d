lib/core/commit_manager.mli: Tell_kv Tell_sim Version_set
