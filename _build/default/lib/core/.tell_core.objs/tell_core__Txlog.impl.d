lib/core/txlog.ml: Buffer Codec Keys List String Tell_kv
