lib/core/sql_plan.mli: Sql_ast Txn Value
