lib/core/buffer_pool.ml: Hashtbl Keys List Printf Record Tell_kv Version_set
