lib/core/pn.ml: Array Btree Buffer_pool Commit_manager Hashtbl Int64 Keys Printf Schema String Tell_kv Tell_sim Version_set
