lib/core/commit_manager.ml: Buffer Codec Fun Hashtbl Int Keys List Printf Set String Tell_kv Tell_sim Version_set
