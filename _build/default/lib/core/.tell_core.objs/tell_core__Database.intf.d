lib/core/database.mli: Buffer_pool Commit_manager Gc_task Pn Schema Sql_plan Tell_kv Tell_sim Txn Value
