lib/core/version_set.mli: Format
