lib/core/record.ml: Buffer Codec Int List Printf String Value
