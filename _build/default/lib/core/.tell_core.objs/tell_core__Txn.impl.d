lib/core/txn.ml: Btree Buffer_pool Codec Commit_manager Hashtbl Int Keys List Option Pn Printf Record Rollback Schema String Tell_kv Tell_sim Txlog Version_set
