lib/core/value.ml: Float Fmt Int Printf String
