lib/core/query.ml: Array Codec Float Hashtbl Int Lazy List Pn Printf Record Schema String Txn Value
