lib/core/pushdown.ml: Array Buffer Codec Keys List Pn Printf Query Record String Tell_kv Txn Version_set
