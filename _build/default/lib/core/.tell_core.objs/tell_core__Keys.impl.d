lib/core/keys.ml: Printf String
