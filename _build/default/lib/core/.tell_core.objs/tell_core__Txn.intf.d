lib/core/txn.mli: Pn Record Value Version_set
