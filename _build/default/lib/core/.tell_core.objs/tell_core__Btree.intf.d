lib/core/btree.mli: Tell_kv
