lib/core/keys.mli:
