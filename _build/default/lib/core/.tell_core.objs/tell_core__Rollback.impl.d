lib/core/rollback.ml: Record Tell_kv
