lib/core/gc_task.mli: Commit_manager Schema Tell_kv Tell_sim
