lib/core/schema.mli: Value
