lib/core/record.mli: Value
