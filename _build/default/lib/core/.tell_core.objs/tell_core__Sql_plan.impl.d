lib/core/sql_plan.ml: Array Btree Codec Keys List Option Pn Printf Query Record Schema Sql_ast Sql_parser String Tell_kv Txn Value
