lib/core/schema.ml: Array Buffer Codec List Printf String Value
