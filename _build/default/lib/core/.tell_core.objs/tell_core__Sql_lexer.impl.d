lib/core/sql_lexer.ml: Buffer Fmt List Printf Sql_ast String
