lib/core/pushdown.mli: Buffer Query Txn Version_set
