lib/core/txlog.mli: Tell_kv
