lib/core/version_set.ml: Buffer Codec Fmt Int Set
