lib/core/gc_task.ml: Btree Codec Commit_manager Keys List Record Schema Tell_kv Tell_sim
