lib/core/rollback.mli: Tell_kv
