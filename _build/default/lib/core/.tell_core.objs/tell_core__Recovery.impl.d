lib/core/recovery.ml: Commit_manager Fun Int List Rollback Tell_kv Tell_sim Txlog
