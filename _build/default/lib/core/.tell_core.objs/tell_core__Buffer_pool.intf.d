lib/core/buffer_pool.mli: Record Tell_kv Version_set
