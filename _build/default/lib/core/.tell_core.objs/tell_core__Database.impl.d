lib/core/database.ml: Commit_manager Gc_task Lazy List Pn Pushdown Recovery Schema Sql_ast Sql_parser Sql_plan Tell_kv Tell_sim Txn
