lib/core/sql_ast.ml: Query Value
