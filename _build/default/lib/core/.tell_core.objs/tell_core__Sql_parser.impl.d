lib/core/sql_parser.ml: Fmt List Query Sql_ast Sql_lexer String Value
