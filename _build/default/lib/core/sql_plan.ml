(* Planning and execution of parsed SQL statements against a transaction.

   The planner is deliberately simple but does the load-bearing things
   right: equality-prefix index selection on base tables, left-deep
   nested-loop joins with per-outer-row index lookups when a join
   predicate matches an index prefix, aggregation with grouping, and
   ORDER BY / DISTINCT / LIMIT. *)

open Sql_ast

exception Plan_error of string

type result =
  | Rows of { columns : string list; rows : Value.t array list }
  | Affected of int
  | Created

(* --- scopes -------------------------------------------------------------------- *)

type binding = { alias : string; table : Schema.table; offset : int }

let bindings_of_from pn from =
  let offset = ref 0 in
  List.map
    (fun { fi_table; fi_alias } ->
      let table = Pn.schema pn ~table:fi_table in
      let b =
        {
          alias = (match fi_alias with Some a -> a | None -> fi_table);
          table;
          offset = !offset;
        }
      in
      offset := !offset + Array.length table.columns;
      b)
    from

let find_column bindings ~qualifier ~name =
  let matches =
    List.filter_map
      (fun b ->
        match qualifier with
        | Some q when q <> b.alias -> None
        | _ -> (
            match
              Array.find_index
                (fun (c : Schema.column) ->
                  String.lowercase_ascii c.col_name = String.lowercase_ascii name)
                b.table.columns
            with
            | Some i -> Some (b, b.offset + i)
            | None -> None))
      bindings
  in
  match matches with
  | [ (_, pos) ] -> pos
  | [] -> raise (Plan_error (Printf.sprintf "unknown column %s" name))
  | _ :: _ :: _ -> raise (Plan_error (Printf.sprintf "ambiguous column %s" name))

let aggregate_names = [ "count"; "sum"; "min"; "max"; "avg" ]

let rec contains_aggregate = function
  | E_func (name, _) when List.mem name aggregate_names -> true
  | E_func (_, args) -> List.exists contains_aggregate args
  | E_binop (_, a, b) -> contains_aggregate a || contains_aggregate b
  | E_between (e, lo, hi) -> contains_aggregate e || contains_aggregate lo || contains_aggregate hi
  | E_in (e, vs) -> contains_aggregate e || List.exists contains_aggregate vs
  | E_not e | E_is_null (e, _) | E_like (e, _) -> contains_aggregate e
  | E_col _ | E_lit _ | E_star -> false

(* IN and BETWEEN desugar to boolean combinations before planning, so
   every later stage sees only core connectives. *)
let rec desugar = function
  | E_in (e, values) ->
      let e = desugar e in
      List.fold_left
        (fun acc v ->
          let eq = E_binop (Query.Eq, e, desugar v) in
          match acc with None -> Some eq | Some prior -> Some (E_binop (Query.Or, prior, eq)))
        None values
      |> Option.value ~default:(E_lit (Value.Int 0))
  | E_between (e, lo, hi) ->
      let e = desugar e in
      E_binop (Query.And, E_binop (Query.Ge, e, desugar lo), E_binop (Query.Le, e, desugar hi))
  | E_binop (op, a, b) -> E_binop (op, desugar a, desugar b)
  | E_not e -> E_not (desugar e)
  | E_is_null (e, p) -> E_is_null (desugar e, p)
  | E_like (e, pattern) -> E_like (desugar e, pattern)
  | E_func (name, args) -> E_func (name, List.map desugar args)
  | (E_col _ | E_lit _ | E_star) as e -> e

(* Resolve an AST expression into a positional [Query.expr] over rows laid
   out according to [bindings]. *)
let rec resolve bindings = function
  | E_col (qualifier, name) -> Query.Col (find_column bindings ~qualifier ~name)
  | E_lit v -> Query.Lit v
  | E_binop (op, a, b) -> Query.Binop (op, resolve bindings a, resolve bindings b)
  | E_not e -> Query.Not (resolve bindings e)
  | E_is_null (e, positive) ->
      if positive then Query.Is_null (resolve bindings e)
      else Query.Not (Query.Is_null (resolve bindings e))
  | E_like (e, pattern) -> Query.Like (resolve bindings e, pattern)
  | (E_in _ | E_between _) as e -> resolve bindings (desugar e)
  | E_func (name, _) when List.mem name aggregate_names ->
      raise (Plan_error ("aggregate " ^ name ^ " not allowed here"))
  | E_func (name, _) -> raise (Plan_error ("unknown function " ^ name))
  | E_star -> raise (Plan_error "* not allowed here")

(* --- predicate analysis --------------------------------------------------------- *)

let rec conjuncts = function
  | E_binop (Query.And, a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

let rec references_only bindings expr =
  match expr with
  | E_col (qualifier, name) -> (
      match find_column bindings ~qualifier ~name with
      | _ -> true
      | exception Plan_error _ -> false)
  | E_lit _ -> true
  | E_binop (_, a, b) -> references_only bindings a && references_only bindings b
  | E_not e | E_is_null (e, _) | E_like (e, _) -> references_only bindings e
  | E_between (e, lo, hi) ->
      references_only bindings e && references_only bindings lo && references_only bindings hi
  | E_in (e, vs) -> references_only bindings e && List.for_all (references_only bindings) vs
  | E_func (_, args) -> List.for_all (references_only bindings) args
  | E_star -> false

(* An equality conjunct [col = probe] where [col] belongs to [binding] and
   [probe] only references [outer_bindings] (literals included). *)
let equality_for ~binding ~outer_bindings conj =
  let local_column e =
    match e with
    | E_col (qualifier, name) -> (
        match qualifier with
        | Some q when q <> binding.alias -> None
        | _ -> (
            match
              Array.find_index
                (fun (c : Schema.column) ->
                  String.lowercase_ascii c.col_name = String.lowercase_ascii name)
                binding.table.columns
            with
            | Some i -> Some i
            | None -> None))
    | _ -> None
  in
  match conj with
  | E_binop (Query.Eq, lhs, rhs) -> (
      match (local_column lhs, local_column rhs) with
      | Some col, None when references_only outer_bindings rhs -> Some (col, rhs)
      | None, Some col when references_only outer_bindings lhs -> Some (col, lhs)
      | _ -> None)
  | _ -> None

(* Pick the index of [binding.table] with the longest fully-bound
   equality prefix.  Returns the index and, per prefix column, the probe
   expression (resolved against the outer scope). *)
let choose_index ~binding ~outer_bindings conjs =
  let equalities = List.filter_map (equality_for ~binding ~outer_bindings) conjs in
  let candidates =
    List.filter_map
      (fun (idx : Schema.index) ->
        let probes =
          List.map
            (fun col ->
              List.find_opt (fun (c, _) -> c = col) equalities)
            idx.idx_columns
        in
        (* Longest all-bound prefix. *)
        let rec prefix acc = function
          | Some (_, probe) :: rest -> prefix (probe :: acc) rest
          | (None :: _ | []) -> List.rev acc
        in
        match prefix [] probes with
        | [] -> None
        | bound -> Some (idx, bound))
      (Schema.all_indexes binding.table)
  in
  List.fold_left
    (fun best candidate ->
      match (best, candidate) with
      | None, c -> Some c
      | Some (_, b), (_, bound) when List.length bound > List.length b -> Some candidate
      | Some _, _ -> best)
    None candidates

(* --- access paths ---------------------------------------------------------------- *)

(* Build the iterator producing rows of [binding.table], given the rows of
   the outer scope (empty array for the leftmost table). *)
let access_path txn ~binding ~outer_bindings conjs : Value.t array -> Query.iter =
  match choose_index ~binding ~outer_bindings conjs with
  | Some (idx, probes) ->
      let resolved = List.map (resolve outer_bindings) probes in
      fun outer_row ->
        let key = List.map (fun e -> Query.eval outer_row e) resolved in
        let lo = Codec.encode_key key in
        let hi =
          if List.length key = List.length idx.idx_columns then lo ^ "\x00"
          else Codec.encode_key_successor key
        in
        Query.index_scan txn ~table:binding.table.tbl_name ~index:idx.idx_name ~lo ~hi
  | None -> fun _outer_row -> Query.seq_scan txn ~table:binding.table.tbl_name

(* Join the FROM list left-deep; push every conjunct down to the first
   point where all its columns are in scope. *)
let plan_from txn bindings conjs =
  match bindings with
  | [] -> raise (Plan_error "empty FROM clause")
  | first :: rest ->
      let applicable scope conj = references_only scope conj in
      let filter_for scope prior conjs =
        List.filter (fun c -> applicable scope c && not (applicable prior c)) conjs
      in
      let apply_filters scope filters it =
        List.fold_left (fun it c -> Query.filter (resolve scope c) it) it filters
      in
      let first_scope = [ first ] in
      let base = access_path txn ~binding:first ~outer_bindings:[] conjs [||] in
      let base = apply_filters first_scope (filter_for first_scope [] conjs) base in
      let _, joined =
        List.fold_left
          (fun (scope, outer) binding ->
            let scope' = scope @ [ binding ] in
            let inner = access_path txn ~binding ~outer_bindings:scope conjs in
            let joined = Query.nested_loop_join ~outer ~inner in
            let joined = apply_filters scope' (filter_for scope' scope conjs) joined in
            (scope', joined))
          (first_scope, base) rest
      in
      joined

(* --- SELECT ------------------------------------------------------------------------ *)

let star_items bindings =
  List.concat_map
    (fun b ->
      Array.to_list
        (Array.mapi
           (fun i (c : Schema.column) -> (E_col (Some b.alias, c.col_name), Some c.col_name, b.offset + i))
           b.table.columns))
    bindings

let item_name i (e, alias) =
  match alias with
  | Some a -> a
  | None -> (
      match e with
      | E_col (_, name) -> name
      | E_func (f, _) -> f
      | _ -> Printf.sprintf "col%d" i)

(* Structural equality of AST expressions, for matching SELECT items with
   GROUP BY / ORDER BY expressions. *)
let rec same_expr a b =
  match (a, b) with
  | E_col (q1, n1), E_col (q2, n2) -> n1 = n2 && (q1 = q2 || q1 = None || q2 = None)
  | E_lit v1, E_lit v2 -> Value.equal v1 v2
  | E_binop (o1, a1, b1), E_binop (o2, a2, b2) -> o1 = o2 && same_expr a1 a2 && same_expr b1 b2
  | E_not e1, E_not e2 -> same_expr e1 e2
  | E_is_null (e1, p1), E_is_null (e2, p2) -> p1 = p2 && same_expr e1 e2
  | E_like (e1, p1), E_like (e2, p2) -> p1 = p2 && same_expr e1 e2
  | E_between (e1, l1, h1), E_between (e2, l2, h2) ->
      same_expr e1 e2 && same_expr l1 l2 && same_expr h1 h2
  | E_in (e1, v1), E_in (e2, v2) ->
      same_expr e1 e2 && List.length v1 = List.length v2 && List.for_all2 same_expr v1 v2
  | E_func (f1, a1), E_func (f2, a2) ->
      f1 = f2 && List.length a1 = List.length a2 && List.for_all2 same_expr a1 a2
  | E_star, E_star -> true
  | _ -> false

let agg_of bindings name args =
  match (name, args) with
  | "count", [ E_star ] -> Query.Count_star
  | "count", [ e ] -> Query.Count (resolve bindings e)
  | "sum", [ e ] -> Query.Sum (resolve bindings e)
  | "min", [ e ] -> Query.Min (resolve bindings e)
  | "max", [ e ] -> Query.Max (resolve bindings e)
  | "avg", [ e ] -> Query.Avg (resolve bindings e)
  | _ -> raise (Plan_error (Printf.sprintf "bad aggregate %s/%d" name (List.length args)))

(* Rewrite a SELECT/ORDER BY expression over the aggregated layout
   [group exprs @ aggregates]: aggregates map to their slot, anything else
   must be (part of) a grouping expression. *)
let rec rewrite_aggregated ~group_by ~aggs bindings e =
  let n_groups = List.length group_by in
  match List.find_index (same_expr e) group_by with
  | Some i -> Query.Col i
  | None -> (
      match e with
      | E_func (name, args) when List.mem name aggregate_names -> (
          let target = agg_of bindings name args in
          match List.find_index (fun a -> a = target) !aggs with
          | Some i -> Query.Col (n_groups + i)
          | None ->
              aggs := !aggs @ [ target ];
              Query.Col (n_groups + List.length !aggs - 1))
      | E_binop (op, a, b) ->
          Query.Binop
            (op, rewrite_aggregated ~group_by ~aggs bindings a, rewrite_aggregated ~group_by ~aggs bindings b)
      | E_not e -> Query.Not (rewrite_aggregated ~group_by ~aggs bindings e)
      | E_lit v -> Query.Lit v
      | E_col _ ->
          raise (Plan_error "column must appear in GROUP BY or inside an aggregate")
      | E_is_null (e, positive) ->
          let r = Query.Is_null (rewrite_aggregated ~group_by ~aggs bindings e) in
          if positive then r else Query.Not r
      | E_like (e, pattern) -> Query.Like (rewrite_aggregated ~group_by ~aggs bindings e, pattern)
      | (E_in _ | E_between _) as e -> rewrite_aggregated ~group_by ~aggs bindings (desugar e)
      | E_star | E_func _ -> raise (Plan_error "unsupported expression over aggregation"))

let run_select txn (q : select) =
  let pn = Txn.pn txn in
  Pn.charge pn (Pn.cost pn).cpu_per_statement_ns;
  let bindings = bindings_of_from pn q.from in
  let conjs = match q.where with None -> [] | Some w -> conjuncts (desugar w) in
  let source = plan_from txn bindings conjs in
  let items =
    if q.sel_star then List.map (fun (e, alias, _) -> (e, alias)) (star_items bindings)
    else q.sel_exprs
  in
  let columns = List.mapi item_name items in
  let aggregated =
    q.group_by <> [] || List.exists (fun (e, _) -> contains_aggregate e) items
  in
  let projected =
    if aggregated then begin
      let aggs = ref [] in
      let projections =
        List.map (fun (e, _) -> rewrite_aggregated ~group_by:q.group_by ~aggs bindings e) items
      in
      let order =
        List.map
          (fun (e, dir) ->
            ( rewrite_aggregated ~group_by:q.group_by ~aggs bindings e,
              match dir with Asc -> `Asc | Desc -> `Desc ))
          q.order_by
      in
      let having =
        Option.map (fun h -> rewrite_aggregated ~group_by:q.group_by ~aggs bindings h) q.having
      in
      let grouped =
        Query.aggregate ~group_by:(List.map (resolve bindings) q.group_by) ~aggs:!aggs source
      in
      let filtered = match having with None -> grouped | Some h -> Query.filter h grouped in
      let sorted = match order with [] -> filtered | _ :: _ -> Query.sort ~by:order filtered in
      Query.project projections sorted
    end
    else begin
      let source =
        match q.having with
        | None -> source
        | Some h -> Query.filter (resolve bindings h) source
      in
      let order =
        List.map
          (fun (e, dir) -> (resolve bindings e, (match dir with Asc -> `Asc | Desc -> `Desc)))
          q.order_by
      in
      let sorted = match order with [] -> source | _ :: _ -> Query.sort ~by:order source in
      Query.project (List.map (fun (e, _) -> resolve bindings e) items) sorted
    end
  in
  let deduped = if q.sel_distinct then Query.distinct projected else projected in
  let final = match q.limit with Some n -> Query.limit n deduped | None -> deduped in
  Rows { columns; rows = Query.to_list final }

(* --- UPDATE / DELETE --------------------------------------------------------------- *)

(* Candidate (rid, tuple) pairs of [table] matching the conjuncts, found
   through an index when one applies. *)
let matching_rids txn ~binding conjs =
  let table = binding.table.tbl_name in
  let residual_ok tuple =
    List.for_all (fun c -> Query.eval_bool tuple (resolve [ binding ] c)) conjs
  in
  let candidates =
    match choose_index ~binding ~outer_bindings:[] conjs with
    | Some (idx, probes) ->
        let key = List.map (fun p -> Query.eval [||] (resolve [] p)) probes in
        let lo = Codec.encode_key key in
        let hi =
          if List.length key = List.length idx.idx_columns then lo ^ "\x00"
          else Codec.encode_key_successor key
        in
        List.filter_map
          (fun (_, rid) -> Option.map (fun tuple -> (rid, tuple)) (Txn.read txn ~table ~rid))
          (Txn.index_range txn ~index:idx.idx_name ~lo ~hi)
    | None ->
        let top = Pn.max_rid (Txn.pn txn) ~table in
        let rec batches acc cursor =
          if cursor > top then acc
          else begin
            let stop = min top (cursor + 255) in
            let rids = List.init (stop - cursor + 1) (fun i -> cursor + i) in
            batches (acc @ Txn.read_batch txn ~table ~rids) (stop + 1)
          end
        in
        let scanned = batches [] 1 in
        let scanned_rids = List.map fst scanned in
        scanned
        @ List.filter (fun (rid, _) -> not (List.mem rid scanned_rids)) (Txn.pending_rows txn ~table)
  in
  List.sort_uniq compare (List.filter (fun (_, tuple) -> residual_ok tuple) candidates)

let run_update txn ~table ~sets ~where =
  let pn = Txn.pn txn in
  Pn.charge pn (Pn.cost pn).cpu_per_statement_ns;
  let binding =
    match bindings_of_from pn [ { fi_table = table; fi_alias = None } ] with
    | [ b ] -> b
    | _ -> assert false
  in
  let conjs = match where with None -> [] | Some w -> conjuncts (desugar w) in
  let assignments =
    List.map (fun (col, e) -> (Schema.column_index binding.table col, resolve [ binding ] e)) sets
  in
  let victims = matching_rids txn ~binding conjs in
  List.iter
    (fun (rid, tuple) ->
      let updated = Array.copy tuple in
      List.iter (fun (col, e) -> updated.(col) <- Query.eval tuple e) assignments;
      Txn.update txn ~table ~rid updated)
    victims;
  Affected (List.length victims)

let run_delete txn ~table ~where =
  let pn = Txn.pn txn in
  Pn.charge pn (Pn.cost pn).cpu_per_statement_ns;
  let binding =
    match bindings_of_from pn [ { fi_table = table; fi_alias = None } ] with
    | [ b ] -> b
    | _ -> assert false
  in
  let conjs = match where with None -> [] | Some w -> conjuncts (desugar w) in
  let victims = matching_rids txn ~binding conjs in
  List.iter (fun (rid, _) -> Txn.delete txn ~table ~rid) victims;
  Affected (List.length victims)

let run_insert txn ~table ~columns ~values =
  let pn = Txn.pn txn in
  Pn.charge pn (Pn.cost pn).cpu_per_statement_ns;
  let schema = Pn.schema pn ~table in
  let width = Array.length schema.columns in
  let positions =
    match columns with
    | None -> List.init width (fun i -> i)
    | Some names -> List.map (Schema.column_index schema) names
  in
  List.iter
    (fun row_exprs ->
      if List.length row_exprs <> List.length positions then
        raise (Plan_error "INSERT arity mismatch");
      let tuple = Array.make width Value.Null in
      List.iter2 (fun pos e -> tuple.(pos) <- Query.eval [||] (resolve [] e)) positions row_exprs;
      ignore (Txn.insert txn ~table tuple))
    values;
  Affected (List.length values)

(* --- DDL ---------------------------------------------------------------------------- *)

let run_create_table pn ~table ~cols ~primary_key =
  let schema =
    Schema.make_table ~name:table
      ~columns:(List.map (fun (name, ty) -> { Schema.col_name = name; col_type = ty }) cols)
      ~primary_key ~secondary:[]
  in
  Tell_kv.Client.put (Pn.kv pn) (Keys.schema ~table) (Schema.encode_table schema);
  List.iter
    (fun (idx : Schema.index) -> Btree.create (Pn.kv pn) ~name:idx.idx_name)
    (Schema.all_indexes schema);
  Pn.forget_schema pn ~table;
  Created

(* Backfill: conservatively index the key of every stored version
   (indexes are version-unaware, so over-approximation is correct). *)
let backfill_index pn ~table ~(index : Schema.index) =
  let tree = Btree.attach (Pn.kv pn) ~name:index.idx_name in
  let top = Pn.max_rid pn ~table in
  let rec sweep cursor =
    if cursor <= top then begin
      let stop = min top (cursor + 127) in
      let keys = List.init (stop - cursor + 1) (fun i -> Keys.record ~table ~rid:(cursor + i)) in
      let replies = Tell_kv.Client.multi_get (Pn.kv pn) keys in
      List.iteri
        (fun i reply ->
          match reply with
          | None -> ()
          | Some (data, _) ->
              List.iter
                (fun (v : Record.version) ->
                  match v.payload with
                  | Record.Tombstone -> ()
                  | Record.Tuple tuple ->
                      let key =
                        Codec.encode_key (Schema.key_of_tuple ~columns:index.idx_columns tuple)
                      in
                      Btree.insert tree ~key ~rid:(cursor + i))
                (Record.versions (Record.decode data)))
        replies;
      sweep (stop + 1)
    end
  in
  sweep 1

let run_create_index pn ~index ~table ~columns ~unique =
  let schema = Pn.schema pn ~table in
  if List.exists (fun (i : Schema.index) -> i.idx_name = index) (Schema.all_indexes schema) then
    raise (Plan_error (Printf.sprintf "index %s already exists" index));
  let idx =
    {
      Schema.idx_name = index;
      idx_columns = List.map (Schema.column_index schema) columns;
      idx_unique = unique;
    }
  in
  let schema' = { schema with secondary = schema.secondary @ [ idx ] } in
  Btree.create (Pn.kv pn) ~name:index;
  backfill_index pn ~table ~index:idx;
  Tell_kv.Client.put (Pn.kv pn) (Keys.schema ~table) (Schema.encode_table schema');
  Pn.forget_schema pn ~table;
  Created

(* --- entry point --------------------------------------------------------------------- *)

let execute txn statement =
  match statement with
  | Select q -> run_select txn q
  | Insert { table; columns; values } -> run_insert txn ~table ~columns ~values
  | Update { table; sets; where } -> run_update txn ~table ~sets ~where
  | Delete { table; where } -> run_delete txn ~table ~where
  | Create_table { table; cols; primary_key } ->
      run_create_table (Txn.pn txn) ~table ~cols ~primary_key
  | Create_index { index; table; columns; unique } ->
      run_create_index (Txn.pn txn) ~index ~table ~columns ~unique

let execute_string txn sql = execute txn (Sql_parser.parse sql)
