(* Key-space layout of Tell inside the record store.

   Single-character namespaces keep requests small:
     r/<table>/<rid>      data records (all versions in one cell, §5.1)
     c/...                atomic counters (tids, rids, B+tree node ids)
     m/cm/<id>            published commit-manager state (§4.2)
     l/<tid>              transaction log entries (§4.4.1)
     i/<index>/n/<id>     B+tree nodes (§5.3)
     i/<index>/root       B+tree root pointer
     v/<table>/<unit>     version-set cells for SBVS buffering (§5.5.3)
     s/<table>            schema descriptors *)

let record ~table ~rid = Printf.sprintf "r/%s/%012d" table rid
let record_prefix ~table = Printf.sprintf "r/%s/" table

let rid_of_record_key key =
  match String.rindex_opt key '/' with
  | Some i -> int_of_string (String.sub key (i + 1) (String.length key - i - 1))
  | None -> invalid_arg ("Keys.rid_of_record_key: " ^ key)

let rid_counter ~table = "c/rid/" ^ table
let tid_counter = "c/tid"
let commit_manager_state ~cm_id = Printf.sprintf "m/cm/%03d" cm_id
let commit_manager_prefix = "m/cm/"

let log_entry ~tid = Printf.sprintf "l/%012d" tid
let log_prefix = "l/"

let tid_of_log_key key =
  int_of_string (String.sub key 2 (String.length key - 2))

let index_node ~index ~node_id = Printf.sprintf "i/%s/n/%d" index node_id
let index_root ~index = Printf.sprintf "i/%s/root" index
let index_node_counter ~index = "c/idx/" ^ index

let version_set ~table ~unit_id = Printf.sprintf "v/%s/%d" table unit_id
let schema ~table = "s/" ^ table
