(* Recursive-descent parser for the SQL subset.  Precedence (low→high):
   OR < AND < NOT < comparison < additive < multiplicative < unary. *)

open Sql_ast

type state = { mutable tokens : Sql_lexer.token list }

let peek st = match st.tokens with [] -> Sql_lexer.EOF | tok :: _ -> tok

let advance st = match st.tokens with [] -> () | _ :: rest -> st.tokens <- rest

let fail st what =
  raise (Parse_error (Fmt.str "expected %s, found %a" what Sql_lexer.pp_token (peek st)))

let expect st tok what =
  if peek st = tok then advance st else fail st what

let accept st tok =
  if peek st = tok then begin
    advance st;
    true
  end
  else false

let kw st k = accept st (Sql_lexer.KW k)

let expect_kw st k = expect st (Sql_lexer.KW k) k

let ident st =
  match peek st with
  | Sql_lexer.IDENT name ->
      advance st;
      name
  | _ -> fail st "identifier"

let rec expr st = or_expr st

and or_expr st =
  let lhs = and_expr st in
  if kw st "OR" then E_binop (Query.Or, lhs, or_expr st) else lhs

and and_expr st =
  let lhs = not_expr st in
  if kw st "AND" then E_binop (Query.And, lhs, and_expr st) else lhs

and not_expr st = if kw st "NOT" then E_not (not_expr st) else comparison st

and comparison st =
  let lhs = additive st in
  let negated = kw st "NOT" in
  let wrap e = if negated then E_not e else e in
  match peek st with
  | Sql_lexer.EQ when not negated -> advance st; E_binop (Query.Eq, lhs, additive st)
  | Sql_lexer.NE when not negated -> advance st; E_binop (Query.Ne, lhs, additive st)
  | Sql_lexer.LT when not negated -> advance st; E_binop (Query.Lt, lhs, additive st)
  | Sql_lexer.LE when not negated -> advance st; E_binop (Query.Le, lhs, additive st)
  | Sql_lexer.GT when not negated -> advance st; E_binop (Query.Gt, lhs, additive st)
  | Sql_lexer.GE when not negated -> advance st; E_binop (Query.Ge, lhs, additive st)
  | Sql_lexer.KW "IS" when not negated ->
      advance st;
      let is_not = kw st "NOT" in
      expect_kw st "NULL";
      E_is_null (lhs, not is_not)
  | Sql_lexer.KW "IN" ->
      advance st;
      expect st Sql_lexer.LPAREN "(";
      let values = comma_list_expr st in
      expect st Sql_lexer.RPAREN ")";
      wrap (E_in (lhs, values))
  | Sql_lexer.KW "BETWEEN" ->
      advance st;
      let lo = additive st in
      expect_kw st "AND";
      let hi = additive st in
      wrap (E_between (lhs, lo, hi))
  | Sql_lexer.KW "LIKE" -> (
      advance st;
      match peek st with
      | Sql_lexer.STRING pattern ->
          advance st;
          wrap (E_like (lhs, pattern))
      | _ -> fail st "string pattern")
  | _ ->
      if negated then fail st "IN, BETWEEN or LIKE after NOT" else lhs

and comma_list_expr st =
  let rec more acc = if accept st Sql_lexer.COMMA then more (expr st :: acc) else List.rev acc in
  more [ expr st ]

and additive st =
  let rec loop lhs =
    match peek st with
    | Sql_lexer.PLUS -> advance st; loop (E_binop (Query.Add, lhs, multiplicative st))
    | Sql_lexer.MINUS -> advance st; loop (E_binop (Query.Sub, lhs, multiplicative st))
    | _ -> lhs
  in
  loop (multiplicative st)

and multiplicative st =
  let rec loop lhs =
    match peek st with
    | Sql_lexer.STAR -> advance st; loop (E_binop (Query.Mul, lhs, unary st))
    | Sql_lexer.SLASH -> advance st; loop (E_binop (Query.Div, lhs, unary st))
    | Sql_lexer.PERCENT -> advance st; loop (E_binop (Query.Mod, lhs, unary st))
    | _ -> lhs
  in
  loop (unary st)

and unary st =
  match peek st with
  | Sql_lexer.MINUS ->
      advance st;
      E_binop (Query.Sub, E_lit (Value.Int 0), unary st)
  | _ -> primary st

and primary st =
  match peek st with
  | Sql_lexer.INT i -> advance st; E_lit (Value.Int i)
  | Sql_lexer.FLOAT f -> advance st; E_lit (Value.Float f)
  | Sql_lexer.STRING s -> advance st; E_lit (Value.Str s)
  | Sql_lexer.KW "NULL" -> advance st; E_lit Value.Null
  | Sql_lexer.LPAREN ->
      advance st;
      let e = expr st in
      expect st Sql_lexer.RPAREN ")";
      e
  | Sql_lexer.IDENT name -> (
      advance st;
      match peek st with
      | Sql_lexer.LPAREN ->
          advance st;
          let args =
            if accept st Sql_lexer.STAR then [ E_star ]
            else if peek st = Sql_lexer.RPAREN then []
            else begin
              let rec more acc =
                if accept st Sql_lexer.COMMA then more (expr st :: acc) else List.rev acc
              in
              more [ expr st ]
            end
          in
          expect st Sql_lexer.RPAREN ")";
          E_func (String.lowercase_ascii name, args)
      | Sql_lexer.DOT ->
          advance st;
          let column = ident st in
          E_col (Some name, column)
      | _ -> E_col (None, name))
  | _ -> fail st "expression"

(* --- statements --------------------------------------------------------------- *)

let select_item st =
  let e = expr st in
  let alias =
    if kw st "AS" then Some (ident st)
    else begin
      match peek st with
      | Sql_lexer.IDENT name ->
          advance st;
          Some name
      | _ -> None
    end
  in
  (e, alias)

let comma_list st element =
  let rec more acc = if accept st Sql_lexer.COMMA then more (element st :: acc) else List.rev acc in
  more [ element st ]

let from_item st =
  let table = ident st in
  let alias =
    if kw st "AS" then Some (ident st)
    else begin
      match peek st with
      | Sql_lexer.IDENT name ->
          advance st;
          Some name
      | _ -> None
    end
  in
  { fi_table = table; fi_alias = alias }

let parse_select st =
  expect_kw st "SELECT";
  let distinct = kw st "DISTINCT" in
  let star, items =
    if accept st Sql_lexer.STAR then (true, []) else (false, comma_list st select_item)
  in
  expect_kw st "FROM";
  let from = comma_list st from_item in
  let where = if kw st "WHERE" then Some (expr st) else None in
  let group_by =
    if kw st "GROUP" then begin
      expect_kw st "BY";
      comma_list st expr
    end
    else []
  in
  let having = if kw st "HAVING" then Some (expr st) else None in
  let order_by =
    if kw st "ORDER" then begin
      expect_kw st "BY";
      comma_list st (fun st ->
          let e = expr st in
          let dir = if kw st "DESC" then Desc else if kw st "ASC" then Asc else Asc in
          (e, dir))
    end
    else []
  in
  let limit =
    if kw st "LIMIT" then begin
      match peek st with
      | Sql_lexer.INT n ->
          advance st;
          Some n
      | _ -> fail st "integer limit"
    end
    else None
  in
  Select
    {
      sel_exprs = items;
      sel_star = star;
      sel_distinct = distinct;
      from;
      where;
      group_by;
      having;
      order_by;
      limit;
    }

let parse_insert st =
  expect_kw st "INSERT";
  expect_kw st "INTO";
  let table = ident st in
  let columns =
    if peek st = Sql_lexer.LPAREN then begin
      advance st;
      let cols = comma_list st ident in
      expect st Sql_lexer.RPAREN ")";
      Some cols
    end
    else None
  in
  expect_kw st "VALUES";
  let row st =
    expect st Sql_lexer.LPAREN "(";
    let values = comma_list st expr in
    expect st Sql_lexer.RPAREN ")";
    values
  in
  let values = comma_list st row in
  Insert { table; columns; values }

let parse_update st =
  expect_kw st "UPDATE";
  let table = ident st in
  expect_kw st "SET";
  let assignment st =
    let column = ident st in
    expect st Sql_lexer.EQ "=";
    (column, expr st)
  in
  let sets = comma_list st assignment in
  let where = if kw st "WHERE" then Some (expr st) else None in
  Update { table; sets; where }

let parse_delete st =
  expect_kw st "DELETE";
  expect_kw st "FROM";
  let table = ident st in
  let where = if kw st "WHERE" then Some (expr st) else None in
  Delete { table; where }

let column_type st =
  match peek st with
  | Sql_lexer.KW ("INT" | "INTEGER") ->
      advance st;
      Value.T_int
  | Sql_lexer.KW ("FLOAT" | "REAL") ->
      advance st;
      Value.T_float
  | Sql_lexer.KW ("TEXT" | "VARCHAR" | "CHAR") ->
      advance st;
      (* Optional length, accepted and ignored: VARCHAR(16). *)
      if accept st Sql_lexer.LPAREN then begin
        (match peek st with Sql_lexer.INT _ -> advance st | _ -> fail st "length");
        expect st Sql_lexer.RPAREN ")"
      end;
      Value.T_str
  | _ -> fail st "column type"

let parse_create st =
  expect_kw st "CREATE";
  if kw st "TABLE" then begin
    let table = ident st in
    expect st Sql_lexer.LPAREN "(";
    let cols = ref [] in
    let primary_key = ref [] in
    let element st =
      if kw st "PRIMARY" then begin
        expect_kw st "KEY";
        expect st Sql_lexer.LPAREN "(";
        primary_key := comma_list st ident;
        expect st Sql_lexer.RPAREN ")"
      end
      else begin
        let name = ident st in
        let ty = column_type st in
        cols := (name, ty) :: !cols
      end
    in
    let _ = comma_list st (fun st -> element st) in
    expect st Sql_lexer.RPAREN ")";
    Create_table { table; cols = List.rev !cols; primary_key = !primary_key }
  end
  else begin
    let unique = kw st "UNIQUE" in
    expect_kw st "INDEX";
    let index = ident st in
    expect_kw st "ON";
    let table = ident st in
    expect st Sql_lexer.LPAREN "(";
    let columns = comma_list st ident in
    expect st Sql_lexer.RPAREN ")";
    Create_index { index; table; columns; unique }
  end

let parse input =
  let st = { tokens = Sql_lexer.tokenize input } in
  let statement =
    match peek st with
    | Sql_lexer.KW "SELECT" -> parse_select st
    | Sql_lexer.KW "INSERT" -> parse_insert st
    | Sql_lexer.KW "UPDATE" -> parse_update st
    | Sql_lexer.KW "DELETE" -> parse_delete st
    | Sql_lexer.KW "CREATE" -> parse_create st
    | _ -> fail st "statement"
  in
  let _ = accept st Sql_lexer.SEMI in
  expect st Sql_lexer.EOF "end of statement";
  statement
