(** Version-number sets (§4.2, §5.5).

    The set [{x | x <= base} ∪ above] with [above ⊆ (base, ∞)].  This is
    both the {e snapshot descriptor} — base version [b] plus the bitset
    [N] of newly committed transaction ids — and the validity set [B]
    attached to buffered records by the shared-buffer strategies.

    The structure is immutable and persistent: handing a snapshot to a
    transaction is O(1), and the sparse part stays small (it only contains
    transactions that committed out of order). *)

type t

val empty : t
val of_base : int -> t
(** All versions [<= base]. *)

val base : t -> int
val above : t -> int list
(** Sorted members above the base. *)

val mem : t -> int -> bool
val add : t -> int -> t
(** Adding [base + 1] compacts the representation by advancing the base. *)

val union : t -> t -> t
val subset : t -> t -> bool
val equal : t -> t -> bool
val max_elt : t -> int
(** Highest member; 0 for {!empty}. *)

val cardinal_above : t -> int
val encode : t -> string
val decode : string -> t
val pp : Format.formatter -> t -> unit
