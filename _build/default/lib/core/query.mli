(** Relational query engine: expressions and pull-based iterators
    ("data is shipped to the query", §2.1/§5).

    Rows are positional value arrays; operators compose into pipelines via
    the iterator (Volcano) model.  Scans fetch records through the
    transaction layer, so every operator observes exactly the
    transaction's snapshot, including its own uncommitted writes. *)

(** {1 Expressions} *)

type binop =
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or
  | Add | Sub | Mul | Div | Mod

type expr =
  | Col of int
  | Lit of Value.t
  | Binop of binop * expr * expr
  | Not of expr
  | Is_null of expr
  | Like of expr * string  (** SQL LIKE: [%] = any sequence, [_] = any char *)

val eval : Value.t array -> expr -> Value.t
val eval_bool : Value.t array -> expr -> bool
(** SQL three-valued logic collapsed: NULL comparisons are false. *)

(** {1 Iterators} *)

type iter

val next : iter -> Value.t array option
val to_list : iter -> Value.t array list
val iter_rows : iter -> (Value.t array -> unit) -> unit
val of_list : Value.t array list -> iter

(** {1 Operators} *)

val seq_scan : Txn.t -> table:string -> iter
(** Full-table scan: walks the rid space in store batches, appends the
    transaction's own pending inserts. *)

val index_scan :
  Txn.t -> table:string -> index:string -> lo:string -> hi:string -> iter
(** Range scan over a B+tree.  Because indexes are version-unaware
    (§5.3.2), the visible tuple is re-checked against the entry key, and
    entries whose record no longer carries the key in any version are
    garbage-collected on the fly (§5.4). *)

val index_scan_eq : Txn.t -> table:string -> index:string -> key:Value.t list -> iter

val filter : expr -> iter -> iter
val project : expr list -> iter -> iter
val nested_loop_join : outer:iter -> inner:(Value.t array -> iter) -> iter
(** Re-opens the inner side per outer row; rows are concatenated. *)

val sort : by:(expr * [ `Asc | `Desc ]) list -> iter -> iter
val limit : int -> iter -> iter
val distinct : iter -> iter

type agg =
  | Count_star
  | Count of expr
  | Sum of expr
  | Min of expr
  | Max of expr
  | Avg of expr

val aggregate : group_by:expr list -> aggs:agg list -> iter -> iter
(** Output rows: group-by values followed by aggregate values.  Without
    grouping, emits exactly one row (SQL semantics on empty input:
    COUNT = 0, other aggregates NULL). *)
