(** Multi-version data records (§5.1).

    A relational row is stored as one key-value pair whose value holds
    {e all} versions of the row.  One read returns every version so the
    reader picks the one valid under its snapshot locally; one conditional
    write installs a new version or detects a write-write conflict. *)

type payload = Tuple of Value.t array | Tombstone

type version = { version : int; payload : payload }

type t
(** Versions are kept newest-first. *)

val empty : t
val of_versions : version list -> t

val versions : t -> version list
(** Newest first. *)

val version_numbers : t -> int list

val add_version : t -> version:int -> payload -> t
(** Insert (or replace, when re-writing the same transaction's buffered
    update) the version slot for [version]. *)

val latest_visible : t -> visible:(int -> bool) -> version option
(** The version with the highest number accepted by [visible]. *)

val newest : t -> version option

val gc : t -> lav:int -> t * int list
(** Drop every version that can never be read again (§5.4): all versions
    [<= lav] except the newest of them.  Returns the compacted record and
    the dropped version numbers.  If the survivor of the [<= lav] group is
    a tombstone and nothing newer exists, the record becomes {!is_empty}
    and the cell itself may be removed from the store. *)

val is_empty : t -> bool
val remove_version : t -> version:int -> t
val encode : t -> string
val decode : string -> t
val approx_bytes : t -> int
