(* Relational schema descriptors.

   Tell maps every table to a rid-keyed record space plus a primary-key
   B+tree and optional secondary B+trees (§5.1, Figure 4).  The schema is
   itself persisted in the store under "s/<table>" so that any processing
   node can discover it. *)

type column = { col_name : string; col_type : Value.ty }

type index = {
  idx_name : string;
  idx_columns : int list;  (* positions into the table's columns *)
  idx_unique : bool;
}

type table = {
  tbl_name : string;
  columns : column array;
  primary_key : int list;
  secondary : index list;
}

exception Schema_error of string

let column_index table name =
  let rec scan i =
    if i >= Array.length table.columns then
      raise (Schema_error (Printf.sprintf "table %s has no column %s" table.tbl_name name))
    else if String.lowercase_ascii table.columns.(i).col_name = String.lowercase_ascii name then i
    else scan (i + 1)
  in
  scan 0

let make_table ~name ~columns ~primary_key ~secondary =
  let t =
    { tbl_name = name; columns = Array.of_list columns; primary_key = []; secondary = [] }
  in
  let pk = List.map (column_index t) primary_key in
  let secondary =
    List.map
      (fun (idx_name, cols, unique) ->
        { idx_name; idx_columns = List.map (column_index t) cols; idx_unique = unique })
      secondary
  in
  { t with primary_key = pk; secondary }

let primary_index_name table = "pk_" ^ table.tbl_name

let all_indexes table =
  match table.primary_key with
  | [] -> table.secondary
  | _ :: _ ->
      { idx_name = primary_index_name table; idx_columns = table.primary_key; idx_unique = true }
      :: table.secondary

let key_of_tuple ~columns tuple = List.map (fun i -> tuple.(i)) columns

let validate_tuple table tuple =
  if Array.length tuple <> Array.length table.columns then
    raise
      (Schema_error
         (Printf.sprintf "table %s expects %d columns, got %d" table.tbl_name
            (Array.length table.columns) (Array.length tuple)));
  Array.iteri
    (fun i v ->
      if not (Value.matches_type v table.columns.(i).col_type) then
        raise
          (Schema_error
             (Printf.sprintf "table %s column %s: value %s does not match type %s"
                table.tbl_name table.columns.(i).col_name (Value.to_string v)
                (Value.type_name table.columns.(i).col_type))))
    tuple

let encode_table t =
  let buf = Buffer.create 128 in
  Codec.put_string buf t.tbl_name;
  Codec.put_int buf (Array.length t.columns);
  Array.iter
    (fun c ->
      Codec.put_string buf c.col_name;
      Buffer.add_char buf
        (match c.col_type with T_int -> 'i' | T_float -> 'f' | T_str -> 's'))
    t.columns;
  Codec.put_int buf (List.length t.primary_key);
  List.iter (Codec.put_int buf) t.primary_key;
  Codec.put_int buf (List.length t.secondary);
  List.iter
    (fun idx ->
      Codec.put_string buf idx.idx_name;
      Buffer.add_char buf (if idx.idx_unique then 'u' else 'd');
      Codec.put_int buf (List.length idx.idx_columns);
      List.iter (Codec.put_int buf) idx.idx_columns)
    t.secondary;
  Buffer.contents buf

let decode_table s =
  let tbl_name, pos = Codec.get_string s 0 in
  let n_cols, pos = Codec.get_int s pos in
  let pos = ref pos in
  let columns =
    Array.init n_cols (fun _ ->
        let name, p = Codec.get_string s !pos in
        let ty =
          match s.[p] with
          | 'i' -> Value.T_int
          | 'f' -> Value.T_float
          | 's' -> Value.T_str
          | c -> raise (Schema_error (Printf.sprintf "bad column type tag %C" c))
        in
        pos := p + 1;
        { col_name = name; col_type = ty })
  in
  let read_int_list () =
    let n, p = Codec.get_int s !pos in
    pos := p;
    List.init n (fun _ ->
        let v, p = Codec.get_int s !pos in
        pos := p;
        v)
  in
  let primary_key = read_int_list () in
  let n_sec, p = Codec.get_int s !pos in
  pos := p;
  let secondary =
    List.init n_sec (fun _ ->
        let idx_name, p = Codec.get_string s !pos in
        let idx_unique = s.[p] = 'u' in
        pos := p + 1;
        let idx_columns = read_int_list () in
        { idx_name; idx_columns; idx_unique })
  in
  { tbl_name; columns; primary_key; secondary }
