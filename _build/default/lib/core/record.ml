type payload = Tuple of Value.t array | Tombstone

type version = { version : int; payload : payload }

type t = version list (* newest first *)

let empty = []

let of_versions versions =
  List.sort (fun a b -> Int.compare b.version a.version) versions

let versions t = t
let version_numbers t = List.map (fun v -> v.version) t

let add_version t ~version payload =
  let entry = { version; payload } in
  let rec insert = function
    | [] -> [ entry ]
    | v :: rest when v.version = version -> entry :: rest
    | v :: rest when v.version < version -> entry :: v :: rest
    | v :: rest -> v :: insert rest
  in
  insert t

let latest_visible t ~visible = List.find_opt (fun v -> visible v.version) t

let newest = function [] -> None | v :: _ -> Some v

(* C = versions <= lav (visible to every transaction); everything in C but
   its newest member is unreachable.  A tombstone surviving as the sole
   remaining version makes the record empty. *)
let gc t ~lav =
  let rec split = function
    | [] -> ([], [])
    | v :: rest when v.version <= lav -> ([], v :: rest)
    | v :: rest ->
        let above, c = split rest in
        (v :: above, c)
  in
  let above, c = split t in
  match c with
  | [] -> (t, [])
  | survivor :: dropped ->
      let survivors =
        match (above, survivor.payload) with
        | [], Tombstone ->
            (* Nothing newer and the latest state is "deleted". *)
            []
        | _ -> above @ [ survivor ]
      in
      let removed =
        List.map (fun v -> v.version) dropped
        @ (if survivors = [] then [ survivor.version ] else [])
      in
      (survivors, removed)

let is_empty t = t = []

let remove_version t ~version = List.filter (fun v -> v.version <> version) t

let encode t =
  let buf = Buffer.create 128 in
  Codec.put_int buf (List.length t);
  List.iter
    (fun v ->
      Codec.put_int buf v.version;
      match v.payload with
      | Tombstone -> Buffer.add_char buf '\x00'
      | Tuple tuple ->
          Buffer.add_char buf '\x01';
          Buffer.add_string buf (Codec.encode_tuple tuple))
    t;
  Buffer.contents buf

let decode s =
  let n, pos = Codec.get_int s 0 in
  let rec read acc pos remaining =
    if remaining = 0 then List.rev acc
    else begin
      let version, pos = Codec.get_int s pos in
      match s.[pos] with
      | '\x00' -> read ({ version; payload = Tombstone } :: acc) (pos + 1) (remaining - 1)
      | '\x01' ->
          let tuple, pos = Codec.decode_tuple s (pos + 1) in
          read ({ version; payload = Tuple tuple } :: acc) pos (remaining - 1)
      | c -> invalid_arg (Printf.sprintf "Record.decode: bad payload tag %C" c)
    end
  in
  read [] pos n

let approx_bytes t = String.length (encode t)
