(* Hand-written SQL lexer.  Keywords are case-insensitive; identifiers are
   lowercased; string literals use single quotes with '' as the escape. *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | LPAREN | RPAREN | COMMA | DOT | STAR | SEMI
  | EQ | NE | LT | LE | GT | GE
  | PLUS | MINUS | SLASH | PERCENT
  | KW of string  (* uppercased keyword *)
  | EOF

let keywords =
  [
    "select"; "from"; "where"; "and"; "or"; "not"; "insert"; "into"; "values";
    "update"; "set"; "delete"; "create"; "table"; "index"; "unique"; "on";
    "primary"; "key"; "int"; "integer"; "float"; "real"; "text"; "varchar";
    "char"; "order"; "by"; "asc"; "desc"; "limit"; "group"; "is"; "null";
    "distinct"; "as"; "in"; "between"; "like"; "having";
  ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let emit tok = tokens := tok :: !tokens in
  let rec skip_ws i =
    if i < n && (input.[i] = ' ' || input.[i] = '\t' || input.[i] = '\n' || input.[i] = '\r') then
      skip_ws (i + 1)
    else i
  in
  let rec lex i =
    let i = skip_ws i in
    if i >= n then emit EOF
    else begin
      let c = input.[i] in
      if is_ident_start c then begin
        let rec stop j = if j < n && is_ident_char input.[j] then stop (j + 1) else j in
        let j = stop i in
        let word = String.lowercase_ascii (String.sub input i (j - i)) in
        if List.mem word keywords then emit (KW (String.uppercase_ascii word)) else emit (IDENT word);
        lex j
      end
      else if is_digit c then begin
        let rec stop j = if j < n && (is_digit input.[j] || input.[j] = '.') then stop (j + 1) else j in
        let j = stop i in
        let text = String.sub input i (j - i) in
        (if String.contains text '.' then emit (FLOAT (float_of_string text))
         else emit (INT (int_of_string text)));
        lex j
      end
      else if c = '\'' then begin
        let buf = Buffer.create 16 in
        let rec consume j =
          if j >= n then raise (Sql_ast.Parse_error "unterminated string literal")
          else if input.[j] = '\'' then
            if j + 1 < n && input.[j + 1] = '\'' then begin
              Buffer.add_char buf '\'';
              consume (j + 2)
            end
            else j + 1
          else begin
            Buffer.add_char buf input.[j];
            consume (j + 1)
          end
        in
        let j = consume (i + 1) in
        emit (STRING (Buffer.contents buf));
        lex j
      end
      else begin
        let two = if i + 1 < n then String.sub input i 2 else "" in
        match two with
        | "<>" | "!=" ->
            emit NE;
            lex (i + 2)
        | "<=" ->
            emit LE;
            lex (i + 2)
        | ">=" ->
            emit GE;
            lex (i + 2)
        | _ -> (
            match c with
            | '(' -> emit LPAREN; lex (i + 1)
            | ')' -> emit RPAREN; lex (i + 1)
            | ',' -> emit COMMA; lex (i + 1)
            | '.' -> emit DOT; lex (i + 1)
            | '*' -> emit STAR; lex (i + 1)
            | ';' -> emit SEMI; lex (i + 1)
            | '=' -> emit EQ; lex (i + 1)
            | '<' -> emit LT; lex (i + 1)
            | '>' -> emit GT; lex (i + 1)
            | '+' -> emit PLUS; lex (i + 1)
            | '-' -> emit MINUS; lex (i + 1)
            | '/' -> emit SLASH; lex (i + 1)
            | '%' -> emit PERCENT; lex (i + 1)
            | c -> raise (Sql_ast.Parse_error (Printf.sprintf "unexpected character %C" c)))
      end
    end
  in
  lex 0;
  List.rev !tokens

let pp_token ppf = function
  | IDENT s -> Fmt.pf ppf "identifier %S" s
  | INT i -> Fmt.pf ppf "integer %d" i
  | FLOAT f -> Fmt.pf ppf "float %g" f
  | STRING s -> Fmt.pf ppf "string %S" s
  | KW k -> Fmt.string ppf k
  | LPAREN -> Fmt.string ppf "(" | RPAREN -> Fmt.string ppf ")"
  | COMMA -> Fmt.string ppf "," | DOT -> Fmt.string ppf "."
  | STAR -> Fmt.string ppf "*" | SEMI -> Fmt.string ppf ";"
  | EQ -> Fmt.string ppf "=" | NE -> Fmt.string ppf "<>"
  | LT -> Fmt.string ppf "<" | LE -> Fmt.string ppf "<="
  | GT -> Fmt.string ppf ">" | GE -> Fmt.string ppf ">="
  | PLUS -> Fmt.string ppf "+" | MINUS -> Fmt.string ppf "-"
  | SLASH -> Fmt.string ppf "/" | PERCENT -> Fmt.string ppf "%"
  | EOF -> Fmt.string ppf "<eof>"
