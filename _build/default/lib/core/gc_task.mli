(** Lazy garbage collection (§5.4).

    The eager strategy in [Txn] compacts records on write-back; this
    background task covers rarely updated data: it drops versions below
    the lav (keeping the newest of them), removes records whose surviving
    version is a tombstone, and prunes index entries whose key no longer
    appears in any stored version of the referenced record. *)

type stats = {
  mutable records_scanned : int;
  mutable versions_dropped : int;
  mutable records_dropped : int;
  mutable index_entries_dropped : int;
}

type t

val create :
  Tell_kv.Cluster.t -> cm:Commit_manager.t -> group:Tell_sim.Engine.Group.t -> t

val stats : t -> stats

val run_once : t -> tables:Schema.table list -> unit
(** One full sweep (records, then every index of every table).  Must run
    from a fiber. *)

val start_periodic :
  t -> engine:Tell_sim.Engine.t -> group:Tell_sim.Engine.Group.t -> period_ns:int ->
  tables:Schema.table list -> unit
(** The paper's periodic background variant ("e.g., every hour", scaled
    to simulation time). *)
