(** Key-space layout of Tell inside the record store.

    Single-character namespaces keep requests small:
    - [r/<table>/<rid>] — data records (all versions in one cell, §5.1)
    - [c/...] — atomic counters (tids, rids, B+tree node ids)
    - [m/cm/<id>] — published commit-manager state (§4.2)
    - [l/<tid>] — transaction-log entries (§4.4.1)
    - [i/<index>/...] — B+tree nodes and root pointer (§5.3)
    - [v/<table>/<unit>] — version-set cells for SBVS buffering (§5.5.3)
    - [s/<table>] — schema descriptors *)

val record : table:string -> rid:int -> string
val record_prefix : table:string -> string
val rid_of_record_key : string -> int
val rid_counter : table:string -> string
val tid_counter : string
val commit_manager_state : cm_id:int -> string
val commit_manager_prefix : string
val log_entry : tid:int -> string
val log_prefix : string
val tid_of_log_key : string -> int
val index_node : index:string -> node_id:int -> string
val index_root : index:string -> string
val index_node_counter : index:string -> string
val version_set : table:string -> unit_id:int -> string
val schema : table:string -> string
