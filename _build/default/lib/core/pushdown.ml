type program = {
  snapshot : Version_set.t;
  predicate : Query.expr option;
  projection : int list;
}

(* --- expression codec ----------------------------------------------------------- *)

let binop_tag (op : Query.binop) =
  match op with
  | Eq -> 'a' | Ne -> 'b' | Lt -> 'c' | Le -> 'd' | Gt -> 'e' | Ge -> 'f'
  | And -> 'g' | Or -> 'h'
  | Add -> 'i' | Sub -> 'j' | Mul -> 'k' | Div -> 'l' | Mod -> 'm'

let binop_of_tag = function
  | 'a' -> Query.Eq | 'b' -> Query.Ne | 'c' -> Query.Lt | 'd' -> Query.Le
  | 'e' -> Query.Gt | 'f' -> Query.Ge | 'g' -> Query.And | 'h' -> Query.Or
  | 'i' -> Query.Add | 'j' -> Query.Sub | 'k' -> Query.Mul | 'l' -> Query.Div
  | 'm' -> Query.Mod
  | c -> invalid_arg (Printf.sprintf "Pushdown: bad binop tag %C" c)

let rec encode_expr buf (e : Query.expr) =
  match e with
  | Col i ->
      Buffer.add_char buf 'C';
      Codec.put_int buf i
  | Lit v ->
      Buffer.add_char buf 'L';
      Codec.put_value buf v
  | Binop (op, a, b) ->
      Buffer.add_char buf 'B';
      Buffer.add_char buf (binop_tag op);
      encode_expr buf a;
      encode_expr buf b
  | Not e ->
      Buffer.add_char buf 'N';
      encode_expr buf e
  | Is_null e ->
      Buffer.add_char buf 'U';
      encode_expr buf e
  | Like (e, pattern) ->
      Buffer.add_char buf 'K';
      Codec.put_string buf pattern;
      encode_expr buf e

let rec decode_expr s pos : Query.expr * int =
  match s.[pos] with
  | 'C' ->
      let i, pos = Codec.get_int s (pos + 1) in
      (Query.Col i, pos)
  | 'L' ->
      let v, pos = Codec.get_value s (pos + 1) in
      (Query.Lit v, pos)
  | 'B' ->
      let op = binop_of_tag s.[pos + 1] in
      let a, pos = decode_expr s (pos + 2) in
      let b, pos = decode_expr s pos in
      (Query.Binop (op, a, b), pos)
  | 'N' ->
      let e, pos = decode_expr s (pos + 1) in
      (Query.Not e, pos)
  | 'U' ->
      let e, pos = decode_expr s (pos + 1) in
      (Query.Is_null e, pos)
  | 'K' ->
      let pattern, pos = Codec.get_string s (pos + 1) in
      let e, pos = decode_expr s pos in
      (Query.Like (e, pattern), pos)
  | c -> invalid_arg (Printf.sprintf "Pushdown: bad expr tag %C" c)

(* --- program codec ---------------------------------------------------------------- *)

let encode_program p =
  let buf = Buffer.create 64 in
  Codec.put_string buf (Version_set.encode p.snapshot);
  (match p.predicate with
  | None -> Buffer.add_char buf '\x00'
  | Some e ->
      Buffer.add_char buf '\x01';
      encode_expr buf e);
  Codec.put_int buf (List.length p.projection);
  List.iter (Codec.put_int buf) p.projection;
  Buffer.contents buf

let decode_program s =
  let vs, pos = Codec.get_string s 0 in
  let snapshot = Version_set.decode vs in
  let predicate, pos =
    match s.[pos] with
    | '\x00' -> (None, pos + 1)
    | _ ->
        let e, pos = decode_expr s (pos + 1) in
        (Some e, pos)
  in
  let n, pos = Codec.get_int s pos in
  let pos = ref pos in
  let projection =
    List.init n (fun _ ->
        let c, p = Codec.get_int s !pos in
        pos := p;
        c)
  in
  { snapshot; predicate; projection }

(* --- storage-node side -------------------------------------------------------------- *)

let apply_projection projection tuple =
  match projection with
  | [] -> tuple
  | cols -> Array.of_list (List.map (fun c -> tuple.(c)) cols)

let evaluator ~program ~key:_ ~data =
  let p = decode_program program in
  let record = Record.decode data in
  match Record.latest_visible record ~visible:(Version_set.mem p.snapshot) with
  | Some { payload = Record.Tuple tuple; _ } ->
      let keep = match p.predicate with None -> true | Some e -> Query.eval_bool tuple e in
      if keep then Some (Codec.encode_tuple (apply_projection p.projection tuple)) else None
  | Some { payload = Record.Tombstone; _ } | None -> None

(* --- processing-node side ------------------------------------------------------------- *)

let scan txn ~table ?predicate ?(projection = []) () =
  let program =
    encode_program { snapshot = Txn.snapshot txn; predicate; projection }
  in
  let stored =
    Tell_kv.Client.scan_eval_all
      (Pn.kv (Txn.pn txn))
      ~prefix:(Keys.record_prefix ~table) ~program
  in
  let remote_rows =
    List.map (fun (_, data, _) -> fst (Codec.decode_tuple data 0)) stored
  in
  (* The transaction's own pending rows never reached the store: apply the
     same selection/projection locally. *)
  let own_rows =
    List.filter_map
      (fun (_, tuple) ->
        let keep =
          match predicate with None -> true | Some e -> Query.eval_bool tuple e
        in
        if keep then Some (apply_projection projection tuple) else None)
      (Txn.pending_rows txn ~table)
  in
  Query.of_list (remote_rows @ own_rows)
