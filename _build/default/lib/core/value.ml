(* Field values of relational tuples. *)

type t =
  | Null
  | Int of int
  | Float of float
  | Str of string

type ty = T_int | T_float | T_str

let type_name = function T_int -> "INT" | T_float -> "FLOAT" | T_str -> "TEXT"

let matches_type v ty =
  match (v, ty) with
  | Null, _ -> true
  | Int _, T_int -> true
  | Float _, T_float -> true
  | Str _, T_str -> true
  | (Int _ | Float _ | Str _), _ -> false

let to_string = function
  | Null -> "NULL"
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Str s -> s

let pp ppf v =
  match v with
  | Null -> Fmt.string ppf "NULL"
  | Int i -> Fmt.int ppf i
  | Float f -> Fmt.float ppf f
  | Str s -> Fmt.pf ppf "%S" s

let equal a b =
  match (a, b) with
  | Null, Null -> true
  | Int x, Int y -> x = y
  | Float x, Float y -> Float.equal x y
  | Str x, Str y -> String.equal x y
  | (Null | Int _ | Float _ | Str _), _ -> false

(* SQL-style ordering used by ORDER BY and index keys: NULL sorts first,
   numeric types compare numerically with each other. *)
let compare a b =
  let rank = function Null -> 0 | Int _ | Float _ -> 1 | Str _ -> 2 in
  match (a, b) with
  | Null, Null -> 0
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | Str x, Str y -> String.compare x y
  | a, b -> Int.compare (rank a) (rank b)

let as_int = function
  | Int i -> i
  | Float f -> int_of_float f
  | v -> invalid_arg ("Value.as_int: " ^ to_string v)

let as_float = function
  | Float f -> f
  | Int i -> float_of_int i
  | v -> invalid_arg ("Value.as_float: " ^ to_string v)

let as_string = function
  | Str s -> s
  | v -> invalid_arg ("Value.as_string: " ^ to_string v)

let is_null = function Null -> true | Int _ | Float _ | Str _ -> false
