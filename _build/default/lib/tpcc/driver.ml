(* Closed-loop TPC-C driver (§6.2): terminals issue transactions without
   think time; throughput is measured over a virtual-time window after a
   warm-up period.  The TpmC metric counts committed new-order
   transactions per minute; failed transactions are not included. *)

module Sim = Tell_sim

type report = {
  mix : Spec.mix;
  terminals : int;
  measured_ns : int;
  committed : int;
  aborted : int;
  user_aborts : int;
  new_order_commits : int;
  latency_all : Sim.Stats.Histogram.t;  (* ns, all committed transactions *)
  latency_new_order : Sim.Stats.Histogram.t;
  per_type_committed : (string * int) list;
}

let tpmc r = float_of_int r.new_order_commits /. (float_of_int r.measured_ns /. 60e9)
let tps r = float_of_int r.committed /. (float_of_int r.measured_ns /. 1e9)

let abort_rate r =
  let attempts = r.committed + r.aborted in
  if attempts = 0 then 0.0 else 100.0 *. float_of_int r.aborted /. float_of_int attempts

let mean_latency_ms r = Sim.Stats.Histogram.mean r.latency_all /. 1e6
let stddev_latency_ms r = Sim.Stats.Histogram.stddev r.latency_all /. 1e6
let percentile_latency_ms r p = float_of_int (Sim.Stats.Histogram.percentile r.latency_all p) /. 1e6

type config = {
  terminals : int;
  warmup_ns : int;
  measure_ns : int;
  seed : int;
}

let default_config = { terminals = 32; warmup_ns = 200_000_000; measure_ns = 1_000_000_000; seed = 7 }

let run (type e c) (module E : Engine_intf.ENGINE with type t = e and type conn = c) (db : e)
    ~(engine : Sim.Engine.t) ~(scale : Spec.scale) ~(mix : Spec.mix) ~(config : config) () =
  let committed = ref 0 in
  let aborted = ref 0 in
  let user_aborts = ref 0 in
  let new_order_commits = ref 0 in
  let latency_all = Sim.Stats.Histogram.create () in
  let latency_new_order = Sim.Stats.Histogram.create () in
  let per_type = Hashtbl.create 8 in
  let start_measure = ref max_int in
  let stop_measure = ref max_int in
  let stopped = ref false in
  let rng = Sim.Rng.make config.seed in
  for terminal_id = 0 to config.terminals - 1 do
    let term_rng = Sim.Rng.split rng in
    Sim.Engine.spawn engine (fun () ->
        let conn = E.connect db ~terminal_id in
        let home_w = (terminal_id mod scale.warehouses) + 1 in
        while not !stopped do
          let input = Spec.gen_txn term_rng ~scale ~mix ~home_w in
          let t0 = Sim.Engine.now engine in
          let outcome = E.execute conn input in
          let t1 = Sim.Engine.now engine in
          if t0 >= !start_measure && t1 <= !stop_measure then begin
            match outcome with
            | Engine_intf.Committed ->
                incr committed;
                Sim.Stats.Histogram.add latency_all (t1 - t0);
                let name = Spec.txn_name input in
                Hashtbl.replace per_type name
                  (1 + Option.value ~default:0 (Hashtbl.find_opt per_type name));
                (match input with
                | Spec.New_order _ ->
                    incr new_order_commits;
                    Sim.Stats.Histogram.add latency_new_order (t1 - t0)
                | _ -> ())
            | Engine_intf.Aborted _ -> incr aborted
            | Engine_intf.User_abort -> incr user_aborts
          end
        done)
  done;
  (* Controller: open the measurement window after warm-up. *)
  Sim.Engine.spawn engine (fun () ->
      Sim.Engine.sleep engine config.warmup_ns;
      start_measure := Sim.Engine.now engine;
      stop_measure := !start_measure + config.measure_ns;
      Sim.Engine.sleep engine config.measure_ns;
      stopped := true);
  let deadline = Sim.Engine.now engine + config.warmup_ns + config.measure_ns + 50_000_000 in
  Sim.Engine.run engine ~until:deadline ();
  {
    mix;
    terminals = config.terminals;
    measured_ns = config.measure_ns;
    committed = !committed;
    aborted = !aborted;
    user_aborts = !user_aborts;
    new_order_commits = !new_order_commits;
    latency_all;
    latency_new_order;
    per_type_committed = Hashtbl.fold (fun k v acc -> (k, v) :: acc) per_type [];
  }

let pp_report ppf r =
  Fmt.pf ppf "%-28s terminals=%-4d TpmC=%-10.0f Tps=%-8.0f aborts=%.2f%% lat=%.2f±%.2fms"
    r.mix.Spec.mix_name r.terminals (tpmc r) (tps r) (abort_rate r) (mean_latency_ms r)
    (stddev_latency_ms r)
