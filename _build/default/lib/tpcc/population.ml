(* TPC-C population rows, engine-agnostic: every row is emitted as
   (table, logical integer key, tuple).  Tell's loader maps rows to rids
   and B+tree entries; the partitioned baselines map them to per-partition
   hash tables.  Column layouts follow [Tell_schema]. *)

module Rng = Tell_sim.Rng
open Tell_core

type emit = table:string -> key:int list -> Value.t array -> unit

let v_int i = Value.Int i
let v_f f = Value.Float f
let v_s s = Value.Str s

let filler rng lo hi = Rng.alpha_string rng ~min_len:lo ~max_len:hi

let items rng ~(scale : Spec.scale) ~(emit : emit) =
  for i_id = 1 to scale.items do
    emit ~table:"item" ~key:[ i_id ]
      [|
        v_int i_id;
        v_int (Rng.int_incl rng 1 10_000);
        v_s (filler rng 6 14);
        v_f (1.0 +. Rng.float rng 99.0);
        v_s (filler rng 10 20);
      |]
  done

let warehouse rng ~(scale : Spec.scale) ~w_id ~(emit : emit) =
  emit ~table:"warehouse" ~key:[ w_id ]
    [|
      v_int w_id;
      v_s (filler rng 6 10);
      v_s (filler rng 8 12);
      v_s (filler rng 6 10);
      v_s (filler rng 2 2);
      v_s (Rng.numeric_string rng ~len:9);
      v_f (Rng.float rng 0.2);
      (* W_YTD = sum of its districts' D_YTD (consistency condition 1),
         also under a scaled-down district count. *)
      v_f (30_000.0 *. float_of_int scale.districts_per_wh);
    |];
  for s_i_id = 1 to scale.stock_per_wh do
    emit ~table:"stock" ~key:[ w_id; s_i_id ]
      [|
        v_int w_id;
        v_int s_i_id;
        v_int (Rng.int_incl rng 10 100);
        v_s (filler rng 12 16);
        v_f 0.0;
        v_int 0;
        v_int 0;
        v_s (filler rng 12 24);
      |]
  done

let customers rng ~(scale : Spec.scale) ~w_id ~d_id ~(emit : emit) =
  for c_id = 1 to scale.customers_per_district do
    let last =
      if c_id <= 1000 then Spec.last_name (c_id - 1)
      else Spec.last_name (Spec.nurand rng ~a:255 ~c:Spec.c_for_c_last ~x:0 ~y:999)
    in
    let credit = if Rng.int rng 10 = 0 then "BC" else "GC" in
    emit ~table:"customer" ~key:[ w_id; d_id; c_id ]
      [|
        v_int w_id; v_int d_id; v_int c_id;
        v_s (filler rng 6 10); v_s "OE"; v_s last;
        v_s (filler rng 8 12); v_s (filler rng 6 10); v_s (filler rng 2 2);
        v_s (Rng.numeric_string rng ~len:9);
        v_s (Rng.numeric_string rng ~len:12);
        v_int 0; v_s credit; v_f 50_000.0;
        v_f (Rng.float rng 0.5);
        v_f (-10.0); v_f 10.0; v_int 1; v_int 0;
        v_s (filler rng 30 60);
      |];
    emit ~table:"history" ~key:[ w_id; d_id; c_id; 0 ]
      [|
        v_int c_id; v_int d_id; v_int w_id; v_int d_id; v_int w_id;
        v_int 0; v_f 10.0; v_s (filler rng 8 16);
      |]
  done

let orders rng ~(scale : Spec.scale) ~w_id ~d_id ~(emit : emit) =
  let customer_perm = Array.init scale.customers_per_district (fun i -> i + 1) in
  Rng.shuffle rng customer_perm;
  let n_orders = scale.initial_orders_per_district in
  for o_id = 1 to n_orders do
    let c_id = customer_perm.((o_id - 1) mod Array.length customer_perm) in
    let ol_cnt = Rng.int_incl rng 5 15 in
    let delivered = o_id <= n_orders * 7 / 10 in
    emit ~table:"orders" ~key:[ w_id; d_id; o_id ]
      [|
        v_int w_id; v_int d_id; v_int o_id; v_int c_id; v_int 0;
        v_int (if delivered then Rng.int_incl rng 1 10 else 0);
        v_int ol_cnt; v_int 1;
      |];
    if not delivered then
      emit ~table:"neworder" ~key:[ w_id; d_id; o_id ] [| v_int w_id; v_int d_id; v_int o_id |];
    for ol_number = 1 to ol_cnt do
      emit ~table:"orderline" ~key:[ w_id; d_id; o_id; ol_number ]
        [|
          v_int w_id; v_int d_id; v_int o_id; v_int ol_number;
          v_int (Rng.int_incl rng 1 scale.items);
          v_int w_id;
          v_int (if delivered then 1 else 0);
          v_int 5;
          v_f (if delivered then 0.0 else Rng.float rng 9_999.0);
          v_s (filler rng 12 16);
        |]
    done
  done

let district rng ~(scale : Spec.scale) ~w_id ~d_id ~(emit : emit) =
  emit ~table:"district" ~key:[ w_id; d_id ]
    [|
      v_int w_id; v_int d_id;
      v_s (filler rng 6 10); v_s (filler rng 8 12); v_s (filler rng 6 10);
      v_s (filler rng 2 2); v_s (Rng.numeric_string rng ~len:9);
      v_f (Rng.float rng 0.2);
      v_f 30_000.0;
      v_int (scale.initial_orders_per_district + 1);
    |];
  customers rng ~scale ~w_id ~d_id ~emit;
  orders rng ~scale ~w_id ~d_id ~emit

let generate ~(scale : Spec.scale) ~seed ~(emit : emit) =
  let rng = Rng.make seed in
  items rng ~scale ~emit;
  for w_id = 1 to scale.warehouses do
    warehouse rng ~scale ~w_id ~emit;
    for d_id = 1 to scale.districts_per_wh do
      district rng ~scale ~w_id ~d_id ~emit
    done
  done
