lib/tpcc/loader.ml: Btree Codec Hashtbl Keys List Option Population Record Schema Spec Tell_core Tell_kv Tell_schema
