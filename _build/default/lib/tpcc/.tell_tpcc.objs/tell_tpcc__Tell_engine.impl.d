lib/tpcc/tell_engine.ml: Array Btree Codec Database Engine_intf Int List Pn Printf Spec String Tell_core Tell_sim Txn Value
