lib/tpcc/spec.ml: Array List Tell_sim
