lib/tpcc/consistency.ml: Array Codec Database Float List Printf Spec Tell_core Txn Value
