lib/tpcc/tell_schema.ml: Schema Tell_core Value
