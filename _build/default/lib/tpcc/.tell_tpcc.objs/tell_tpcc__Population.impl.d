lib/tpcc/population.ml: Array Spec Tell_core Tell_sim Value
