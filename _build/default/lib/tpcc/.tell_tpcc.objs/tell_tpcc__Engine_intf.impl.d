lib/tpcc/engine_intf.ml: Spec
