lib/tpcc/driver.ml: Engine_intf Fmt Hashtbl Option Spec Tell_sim
