(* Tell-side bulk loader: maps the engine-agnostic population rows of
   [Population] to rid-keyed version-0 records, bulk-built B+tree indexes,
   schemas, and counters, installed directly in the storage nodes (zero
   virtual time).  Version 0 is below every transaction id, hence visible
   to every snapshot. *)

module Kv = Tell_kv
open Tell_core

type state = {
  cluster : Kv.Cluster.t;
  rids : (string, int) Hashtbl.t;
  index_entries : (string, (string * int) list ref) Hashtbl.t;
  schemas : (string, Schema.table) Hashtbl.t;
  mutable records_loaded : int;
}

let encode_record tuple =
  Record.encode (Record.of_versions [ { Record.version = 0; payload = Record.Tuple tuple } ])

let add_row state ~table tuple =
  let schema =
    match Hashtbl.find_opt state.schemas table with
    | Some s -> s
    | None -> raise (Schema.Schema_error ("loader: unknown table " ^ table))
  in
  let rid = 1 + Option.value ~default:0 (Hashtbl.find_opt state.rids table) in
  Hashtbl.replace state.rids table rid;
  Kv.Cluster.poke state.cluster ~key:(Keys.record ~table ~rid) ~data:(encode_record tuple);
  List.iter
    (fun (idx : Schema.index) ->
      let key = Codec.encode_key (Schema.key_of_tuple ~columns:idx.idx_columns tuple) in
      let bucket =
        match Hashtbl.find_opt state.index_entries idx.idx_name with
        | Some bucket -> bucket
        | None ->
            let bucket = ref [] in
            Hashtbl.replace state.index_entries idx.idx_name bucket;
            bucket
      in
      bucket := (key, rid) :: !bucket)
    (Schema.all_indexes schema);
  state.records_loaded <- state.records_loaded + 1

let finalize state =
  List.iter
    (fun (schema : Schema.table) ->
      Kv.Cluster.poke state.cluster
        ~key:(Keys.schema ~table:schema.tbl_name)
        ~data:(Schema.encode_table schema);
      Kv.Cluster.poke_counter state.cluster
        ~key:(Keys.rid_counter ~table:schema.tbl_name)
        ~value:(Option.value ~default:0 (Hashtbl.find_opt state.rids schema.tbl_name));
      List.iter
        (fun (idx : Schema.index) ->
          let entries =
            match Hashtbl.find_opt state.index_entries idx.idx_name with
            | Some bucket -> !bucket
            | None -> []
          in
          List.iter
            (fun (key, data) -> Kv.Cluster.poke state.cluster ~key ~data)
            (Btree.bulk_cells ~name:idx.idx_name ~entries))
        (Schema.all_indexes schema))
    Tell_schema.all_tables

let load cluster ~(scale : Spec.scale) ~seed =
  let state =
    {
      cluster;
      rids = Hashtbl.create 16;
      index_entries = Hashtbl.create 16;
      schemas = Hashtbl.create 16;
      records_loaded = 0;
    }
  in
  List.iter
    (fun (schema : Schema.table) -> Hashtbl.replace state.schemas schema.tbl_name schema)
    Tell_schema.all_tables;
  Population.generate ~scale ~seed ~emit:(fun ~table ~key:_ tuple -> add_row state ~table tuple);
  finalize state;
  state.records_loaded
