(* TPC-C workload definition (§6.2): scaling parameters, input
   generation (NURand, last names), and the three transaction mixes of
   Table 2 plus the shardable variant of §6.4.

   The [scale] record allows a proportionally shrunk population (fewer
   items/customers per warehouse) so that simulations stay tractable; the
   contention structure — one warehouse row, ten district rows per
   warehouse, the transaction operation counts — is untouched, which is
   what the paper's scalability shapes depend on. *)

module Rng = Tell_sim.Rng

type scale = {
  warehouses : int;
  districts_per_wh : int;
  customers_per_district : int;
  items : int;
  stock_per_wh : int;  (* = items in the full spec *)
  initial_orders_per_district : int;
}

let full_scale ~warehouses =
  {
    warehouses;
    districts_per_wh = 10;
    customers_per_district = 3000;
    items = 100_000;
    stock_per_wh = 100_000;
    initial_orders_per_district = 3000;
  }

(* The default for simulations: 1/20th population per warehouse. *)
let sim_scale ~warehouses =
  {
    warehouses;
    districts_per_wh = 10;
    customers_per_district = 150;
    items = 5_000;
    stock_per_wh = 5_000;
    initial_orders_per_district = 150;
  }

(* --- random input helpers (TPC-C clause 2.1.6) -------------------------------- *)

let c_for_c_last = 157
let c_for_c_id = 233
let c_for_ol_i_id = 511

let nurand rng ~a ~c ~x ~y =
  (((Rng.int_incl rng 0 a lor Rng.int_incl rng x y) + c) mod (y - x + 1)) + x

let syllables =
  [| "BAR"; "OUGHT"; "ABLE"; "PRI"; "PRES"; "ESE"; "ANTI"; "CALLY"; "ATION"; "EING" |]

let last_name n =
  let n = n mod 1000 in
  syllables.(n / 100) ^ syllables.(n / 10 mod 10) ^ syllables.(n mod 10)

let random_last_name rng ~scale =
  (* Adapt the NURand range to the scaled customer count so generated
     names actually exist in the population. *)
  let range = min 999 (scale.customers_per_district - 1) in
  last_name (nurand rng ~a:255 ~c:c_for_c_last ~x:0 ~y:range)

let random_c_id rng ~scale = nurand rng ~a:1023 ~c:c_for_c_id ~x:1 ~y:scale.customers_per_district

let random_i_id rng ~scale = nurand rng ~a:8191 ~c:c_for_ol_i_id ~x:1 ~y:scale.items

(* --- transaction inputs --------------------------------------------------------- *)

type customer_selector = By_id of int | By_last_name of string

type new_order_input = {
  no_w_id : int;
  no_d_id : int;
  no_c_id : int;
  items : (int * int * int) list;  (* (i_id, supply_w_id, quantity) *)
  invalid_item : bool;  (* clause 2.4.1.5: 1 % of new-orders roll back *)
}

type payment_input = {
  p_w_id : int;
  p_d_id : int;
  p_c_w_id : int;
  p_c_d_id : int;
  p_customer : customer_selector;
  p_amount : float;
}

type order_status_input = { os_w_id : int; os_d_id : int; os_customer : customer_selector }

type delivery_input = { dl_w_id : int; dl_carrier_id : int }

type stock_level_input = { sl_w_id : int; sl_d_id : int; sl_threshold : int }

type txn_input =
  | New_order of new_order_input
  | Payment of payment_input
  | Order_status of order_status_input
  | Delivery of delivery_input
  | Stock_level of stock_level_input

let txn_name = function
  | New_order _ -> "new-order"
  | Payment _ -> "payment"
  | Order_status _ -> "order-status"
  | Delivery _ -> "delivery"
  | Stock_level _ -> "stock-level"

(* --- mixes (Table 2) ------------------------------------------------------------- *)

type mix = {
  mix_name : string;
  pct_new_order : int;
  pct_payment : int;
  pct_delivery : int;
  pct_order_status : int;
  pct_stock_level : int;
  allow_remote : bool;  (* false = the "shardable" variant of §6.4 *)
}

let standard_mix =
  {
    mix_name = "write-intensive (standard)";
    pct_new_order = 45;
    pct_payment = 43;
    pct_delivery = 4;
    pct_order_status = 4;
    pct_stock_level = 4;
    allow_remote = true;
  }

let read_intensive_mix =
  {
    mix_name = "read-intensive";
    pct_new_order = 9;
    pct_payment = 0;
    pct_delivery = 0;
    pct_order_status = 84;
    pct_stock_level = 7;
    allow_remote = true;
  }

let shardable_mix = { standard_mix with mix_name = "shardable"; allow_remote = false }

(* --- input generation -------------------------------------------------------------- *)

let other_warehouse rng ~scale ~home =
  if scale.warehouses = 1 then home
  else begin
    let rec draw () =
      let w = Rng.int_incl rng 1 scale.warehouses in
      if w = home then draw () else w
    in
    draw ()
  end

let gen_new_order rng ~scale ~mix ~home_w =
  let d_id = Rng.int_incl rng 1 scale.districts_per_wh in
  let c_id = random_c_id rng ~scale in
  let n_items = Rng.int_incl rng 5 15 in
  let items =
    List.init n_items (fun _ ->
        let i_id = random_i_id rng ~scale in
        let supply_w =
          (* Clause 2.4.1.5(2): 1 % of lines come from a remote WH. *)
          if mix.allow_remote && scale.warehouses > 1 && Rng.int rng 100 = 0 then
            other_warehouse rng ~scale ~home:home_w
          else home_w
        in
        (i_id, supply_w, Rng.int_incl rng 1 10))
  in
  New_order
    {
      no_w_id = home_w;
      no_d_id = d_id;
      no_c_id = c_id;
      items;
      invalid_item = Rng.int rng 100 = 0;
    }

let gen_customer_selector rng ~scale =
  if Rng.int rng 100 < 60 then By_last_name (random_last_name rng ~scale)
  else By_id (random_c_id rng ~scale)

let gen_payment rng ~scale ~mix ~home_w =
  let d_id = Rng.int_incl rng 1 scale.districts_per_wh in
  (* Clause 2.5.1.2: 15 % of payments are for a remote customer. *)
  let c_w_id, c_d_id =
    if mix.allow_remote && scale.warehouses > 1 && Rng.int rng 100 < 15 then
      (other_warehouse rng ~scale ~home:home_w, Rng.int_incl rng 1 scale.districts_per_wh)
    else (home_w, d_id)
  in
  Payment
    {
      p_w_id = home_w;
      p_d_id = d_id;
      p_c_w_id = c_w_id;
      p_c_d_id = c_d_id;
      p_customer = gen_customer_selector rng ~scale;
      p_amount = 1.0 +. Rng.float rng 4999.0;
    }

let gen_order_status rng ~scale ~home_w =
  Order_status
    {
      os_w_id = home_w;
      os_d_id = Rng.int_incl rng 1 scale.districts_per_wh;
      os_customer = gen_customer_selector rng ~scale;
    }

let gen_delivery rng ~home_w = Delivery { dl_w_id = home_w; dl_carrier_id = Rng.int_incl rng 1 10 }

let gen_stock_level rng ~scale ~home_w =
  Stock_level
    {
      sl_w_id = home_w;
      sl_d_id = Rng.int_incl rng 1 scale.districts_per_wh;
      sl_threshold = Rng.int_incl rng 10 20;
    }

let gen_txn rng ~scale ~mix ~home_w =
  let p = Rng.int rng 100 in
  if p < mix.pct_new_order then gen_new_order rng ~scale ~mix ~home_w
  else if p < mix.pct_new_order + mix.pct_payment then gen_payment rng ~scale ~mix ~home_w
  else if p < mix.pct_new_order + mix.pct_payment + mix.pct_delivery then gen_delivery rng ~home_w
  else if p < mix.pct_new_order + mix.pct_payment + mix.pct_delivery + mix.pct_order_status then
    gen_order_status rng ~scale ~home_w
  else gen_stock_level rng ~scale ~home_w
