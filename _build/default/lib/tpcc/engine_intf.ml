(* The interface every benchmarked engine implements so that the TPC-C
   driver can run against Tell and against the partitioned / shared-data
   baselines uniformly. *)

type outcome =
  | Committed
  | Aborted of string  (* concurrency-control abort: counted in the abort rate *)
  | User_abort  (* the specified 1 % new-order rollback: neither committed nor failed *)

module type ENGINE = sig
  type t
  type conn

  val name : t -> string

  val connect : t -> terminal_id:int -> conn
  (** Bind a terminal to a session (a processing node, a cluster client,
      ...).  Terminals are distributed round-robin. *)

  val execute : conn -> Spec.txn_input -> outcome
  (** Run one transaction to completion (commit or abort) from a fiber. *)
end
