(* TPC-C consistency conditions (clause 3.3.2), checked on a quiesced
   database through an ordinary read-only transaction — the integration
   oracle for concurrent benchmark runs. *)

open Tell_core

let f = Value.as_float
let i = Value.as_int

let prefix_range txn ~index prefix =
  let lo = Codec.encode_key prefix in
  Txn.index_range txn ~index ~lo ~hi:(Codec.encode_key_successor prefix)

let read_by_pk txn ~table key =
  match Txn.index_lookup txn ~index:("pk_" ^ table) ~key:(Codec.encode_key key) with
  | rid :: _ -> Txn.read txn ~table ~rid
  | [] -> None

(* Consistency 1: W_YTD = sum(D_YTD) per warehouse. *)
let check_ytd txn ~(scale : Spec.scale) ~w_id =
  match read_by_pk txn ~table:"warehouse" [ Value.Int w_id ] with
  | None -> [ Printf.sprintf "warehouse %d missing" w_id ]
  | Some warehouse ->
      let w_ytd = f warehouse.(7) in
      let d_sum = ref 0.0 in
      for d_id = 1 to scale.districts_per_wh do
        match read_by_pk txn ~table:"district" [ Value.Int w_id; Value.Int d_id ] with
        | Some district -> d_sum := !d_sum +. f district.(8)
        | None -> ()
      done;
      if Float.abs (w_ytd -. !d_sum) > 0.01 then
        [ Printf.sprintf "W_YTD mismatch for warehouse %d: %.2f vs sum(D_YTD)=%.2f" w_id w_ytd !d_sum ]
      else []

(* Consistency 2/3: D_NEXT_O_ID - 1 = max(O_ID) = max(NO_O_ID) per district. *)
let check_order_ids txn ~w_id ~d_id =
  match read_by_pk txn ~table:"district" [ Value.Int w_id; Value.Int d_id ] with
  | None -> [ Printf.sprintf "district %d/%d missing" w_id d_id ]
  | Some district ->
      let next_o = i district.(9) in
      let orders = prefix_range txn ~index:"pk_orders" [ Value.Int w_id; Value.Int d_id ] in
      let max_o =
        List.fold_left
          (fun acc (_, rid) ->
            match Txn.read txn ~table:"orders" ~rid with
            | Some order -> max acc (i order.(2))
            | None -> acc)
          0 orders
      in
      if max_o <> next_o - 1 then
        [ Printf.sprintf "district %d/%d: D_NEXT_O_ID-1=%d but max(O_ID)=%d" w_id d_id (next_o - 1) max_o ]
      else []

(* Consistency 4: for every order, O_OL_CNT = count of its order lines. *)
let check_order_lines txn ~w_id ~d_id ~sample =
  let orders = prefix_range txn ~index:"pk_orders" [ Value.Int w_id; Value.Int d_id ] in
  let violations = ref [] in
  List.iteri
    (fun idx (_, rid) ->
      if idx mod sample = 0 then begin
        match Txn.read txn ~table:"orders" ~rid with
        | None -> ()
        | Some order ->
            let o_id = i order.(2) in
            let lines =
              prefix_range txn ~index:"pk_orderline"
                [ Value.Int w_id; Value.Int d_id; Value.Int o_id ]
            in
            let live =
              List.length (Txn.read_batch txn ~table:"orderline" ~rids:(List.map snd lines))
            in
            if live <> i order.(6) then
              violations :=
                Printf.sprintf "order %d/%d/%d: O_OL_CNT=%d but %d lines" w_id d_id o_id
                  (i order.(6)) live
                :: !violations
      end)
    orders;
  !violations

let check_all pn ~(scale : Spec.scale) =
  Database.with_txn pn (fun txn ->
      let violations = ref [] in
      for w_id = 1 to scale.warehouses do
        violations := check_ytd txn ~scale ~w_id @ !violations;
        for d_id = 1 to scale.districts_per_wh do
          violations := check_order_ids txn ~w_id ~d_id @ !violations;
          violations := check_order_lines txn ~w_id ~d_id ~sample:37 @ !violations
        done
      done;
      !violations)
