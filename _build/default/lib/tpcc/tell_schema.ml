(* TPC-C schema for Tell.  Column sets follow the specification; the ten
   S_DIST_xx fields of STOCK are collapsed into one (the benchmark logic
   reads exactly one of them per order line), which shrinks the simulated
   memory footprint without changing access patterns. *)

open Tell_core

let col name ty = { Schema.col_name = name; col_type = ty }
let int_col name = col name Value.T_int
let float_col name = col name Value.T_float
let str_col name = col name Value.T_str

let warehouse =
  Schema.make_table ~name:"warehouse"
    ~columns:
      [
        int_col "w_id"; str_col "w_name"; str_col "w_street"; str_col "w_city";
        str_col "w_state"; str_col "w_zip"; float_col "w_tax"; float_col "w_ytd";
      ]
    ~primary_key:[ "w_id" ] ~secondary:[]

let district =
  Schema.make_table ~name:"district"
    ~columns:
      [
        int_col "d_w_id"; int_col "d_id"; str_col "d_name"; str_col "d_street";
        str_col "d_city"; str_col "d_state"; str_col "d_zip"; float_col "d_tax";
        float_col "d_ytd"; int_col "d_next_o_id";
      ]
    ~primary_key:[ "d_w_id"; "d_id" ] ~secondary:[]

let customer =
  Schema.make_table ~name:"customer"
    ~columns:
      [
        int_col "c_w_id"; int_col "c_d_id"; int_col "c_id"; str_col "c_first";
        str_col "c_middle"; str_col "c_last"; str_col "c_street"; str_col "c_city";
        str_col "c_state"; str_col "c_zip"; str_col "c_phone"; int_col "c_since";
        str_col "c_credit"; float_col "c_credit_lim"; float_col "c_discount";
        float_col "c_balance"; float_col "c_ytd_payment"; int_col "c_payment_cnt";
        int_col "c_delivery_cnt"; str_col "c_data";
      ]
    ~primary_key:[ "c_w_id"; "c_d_id"; "c_id" ]
    ~secondary:[ ("idx_customer_name", [ "c_w_id"; "c_d_id"; "c_last"; "c_first" ], false) ]

let history =
  Schema.make_table ~name:"history"
    ~columns:
      [
        int_col "h_c_id"; int_col "h_c_d_id"; int_col "h_c_w_id"; int_col "h_d_id";
        int_col "h_w_id"; int_col "h_date"; float_col "h_amount"; str_col "h_data";
      ]
    ~primary_key:[] ~secondary:[]

let neworder =
  Schema.make_table ~name:"neworder"
    ~columns:[ int_col "no_w_id"; int_col "no_d_id"; int_col "no_o_id" ]
    ~primary_key:[ "no_w_id"; "no_d_id"; "no_o_id" ]
    ~secondary:[]

let orders =
  Schema.make_table ~name:"orders"
    ~columns:
      [
        int_col "o_w_id"; int_col "o_d_id"; int_col "o_id"; int_col "o_c_id";
        int_col "o_entry_d"; int_col "o_carrier_id"; int_col "o_ol_cnt"; int_col "o_all_local";
      ]
    ~primary_key:[ "o_w_id"; "o_d_id"; "o_id" ]
    ~secondary:[ ("idx_orders_customer", [ "o_w_id"; "o_d_id"; "o_c_id"; "o_id" ], false) ]

let orderline =
  Schema.make_table ~name:"orderline"
    ~columns:
      [
        int_col "ol_w_id"; int_col "ol_d_id"; int_col "ol_o_id"; int_col "ol_number";
        int_col "ol_i_id"; int_col "ol_supply_w_id"; int_col "ol_delivery_d";
        int_col "ol_quantity"; float_col "ol_amount"; str_col "ol_dist_info";
      ]
    ~primary_key:[ "ol_w_id"; "ol_d_id"; "ol_o_id"; "ol_number" ]
    ~secondary:[]

let item =
  Schema.make_table ~name:"item"
    ~columns:
      [ int_col "i_id"; int_col "i_im_id"; str_col "i_name"; float_col "i_price"; str_col "i_data" ]
    ~primary_key:[ "i_id" ] ~secondary:[]

let stock =
  Schema.make_table ~name:"stock"
    ~columns:
      [
        int_col "s_w_id"; int_col "s_i_id"; int_col "s_quantity"; str_col "s_dist";
        float_col "s_ytd"; int_col "s_order_cnt"; int_col "s_remote_cnt"; str_col "s_data";
      ]
    ~primary_key:[ "s_w_id"; "s_i_id" ] ~secondary:[]

let all_tables =
  [ warehouse; district; customer; history; neworder; orders; orderline; item; stock ]
