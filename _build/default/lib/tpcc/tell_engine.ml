(* The five TPC-C transactions against Tell's transaction API.

   Record accesses go through the primary-key / secondary B+trees exactly
   as the paper describes (Figure 4): index lookup yields a rid, the rid
   read yields the record with all its versions.  Like the paper's PNs,
   transaction programs are precompiled code, not SQL text (the SQL layer
   exists and is exercised by examples and tests). *)

module Sim = Tell_sim
open Tell_core

type t = {
  db : Database.t;
  pns : Pn.t array;
  scale : Spec.scale;
}

type conn = { engine : t; pn : Pn.t }

let create db ~pns ~scale = { db; pns = Array.of_list pns; scale }

let name _ = "tell"

let connect t ~terminal_id = { engine = t; pn = t.pns.(terminal_id mod Array.length t.pns) }

let now_ts conn = Sim.Engine.now (Pn.engine conn.pn)

(* --- small helpers -------------------------------------------------------------- *)

exception Row_missing of string

let pk index_table = "pk_" ^ index_table

let find_rid txn ~table key =
  match Txn.index_lookup txn ~index:(pk table) ~key:(Codec.encode_key key) with
  | [ rid ] -> rid
  | [] -> raise (Row_missing table)
  | rid :: _ -> rid

let read_by_pk txn ~table key =
  let rid = find_rid txn ~table key in
  match Txn.read txn ~table ~rid with
  | Some tuple -> (rid, tuple)
  | None -> raise (Row_missing table)

let prefix_range txn ~index prefix =
  let lo = Codec.encode_key prefix in
  Txn.index_range txn ~index ~lo ~hi:(Codec.encode_key_successor prefix)

let f = Value.as_float
let i = Value.as_int
let s = Value.as_string

(* Clause 2.5.2.2: select by last name takes the ceiling-middle customer
   ordered by first name. *)
let customer_by_selector txn ~scale:_ ~w_id ~d_id selector =
  match selector with
  | Spec.By_id c_id ->
      read_by_pk txn ~table:"customer" [ Value.Int w_id; Value.Int d_id; Value.Int c_id ]
  | Spec.By_last_name last -> (
      let entries =
        prefix_range txn ~index:"idx_customer_name"
          [ Value.Int w_id; Value.Int d_id; Value.Str last ]
      in
      let rids = List.map snd entries in
      let rows = Txn.read_batch txn ~table:"customer" ~rids in
      let rows =
        List.sort (fun (_, a) (_, b) -> String.compare (s a.(3)) (s b.(3))) rows
      in
      let n = List.length rows in
      if n = 0 then raise (Row_missing "customer-by-name")
      else
        match List.nth_opt rows ((n - 1) / 2) with
        | Some row -> row
        | None -> raise (Row_missing "customer-by-name"))

(* --- NEW-ORDER (clause 2.4) ------------------------------------------------------- *)

let new_order conn txn (input : Spec.new_order_input) =
  let w_id = input.no_w_id and d_id = input.no_d_id in
  let _, warehouse = read_by_pk txn ~table:"warehouse" [ Value.Int w_id ] in
  let w_tax = f warehouse.(6) in
  let d_rid, district = read_by_pk txn ~table:"district" [ Value.Int w_id; Value.Int d_id ] in
  let d_tax = f district.(7) in
  let o_id = i district.(9) in
  let district' = Array.copy district in
  district'.(9) <- Value.Int (o_id + 1);
  Txn.update txn ~table:"district" ~rid:d_rid district';
  let _, customer =
    read_by_pk txn ~table:"customer" [ Value.Int w_id; Value.Int d_id; Value.Int input.no_c_id ]
  in
  let c_discount = f customer.(14) in
  let all_local = List.for_all (fun (_, sw, _) -> sw = w_id) input.items in
  let ol_cnt = List.length input.items in
  ignore
    (Txn.insert txn ~table:"orders"
       [|
         Value.Int w_id; Value.Int d_id; Value.Int o_id; Value.Int input.no_c_id;
         Value.Int (now_ts conn); Value.Int 0; Value.Int ol_cnt;
         Value.Int (if all_local then 1 else 0);
       |]);
  ignore (Txn.insert txn ~table:"neworder" [| Value.Int w_id; Value.Int d_id; Value.Int o_id |]);
  let total = ref 0.0 in
  let items =
    (* An unused item number triggers the specified 1 % rollback. *)
    if input.invalid_item then
      match List.rev input.items with
      | (_, sw, qty) :: rest -> List.rev ((0, sw, qty) :: rest)
      | [] -> input.items
    else input.items
  in
  let item_missing =
    List.exists
      (fun (i_id, supply_w, quantity) ->
        match
          if i_id = 0 then None
          else
            try Some (read_by_pk txn ~table:"item" [ Value.Int i_id ]) with Row_missing _ -> None
        with
        | None -> true
        | Some (_, item) ->
            let price = f item.(3) in
            let s_rid, stock =
              read_by_pk txn ~table:"stock" [ Value.Int supply_w; Value.Int i_id ]
            in
            let s_qty = i stock.(2) in
            let new_qty = if s_qty >= quantity + 10 then s_qty - quantity else s_qty - quantity + 91 in
            let stock' = Array.copy stock in
            stock'.(2) <- Value.Int new_qty;
            stock'.(4) <- Value.Float (f stock.(4) +. float_of_int quantity);
            stock'.(5) <- Value.Int (i stock.(5) + 1);
            if supply_w <> w_id then stock'.(6) <- Value.Int (i stock.(6) + 1);
            Txn.update txn ~table:"stock" ~rid:s_rid stock';
            let amount = float_of_int quantity *. price in
            total := !total +. amount;
            let ol_number = 1 + List.length (Txn.pending_rows txn ~table:"orderline") in
            ignore
              (Txn.insert txn ~table:"orderline"
                 [|
                   Value.Int w_id; Value.Int d_id; Value.Int o_id; Value.Int ol_number;
                   Value.Int i_id; Value.Int supply_w; Value.Int 0; Value.Int quantity;
                   Value.Float amount; Value.Str (s stock.(3));
                 |]);
            false)
      items
  in
  if item_missing then begin
    Txn.abort txn;
    Engine_intf.User_abort
  end
  else begin
    ignore (!total *. (1.0 +. w_tax +. d_tax) *. (1.0 -. c_discount));
    Txn.commit txn;
    Engine_intf.Committed
  end

(* --- PAYMENT (clause 2.5) ----------------------------------------------------------- *)

let payment conn txn (input : Spec.payment_input) =
  let w_rid, warehouse = read_by_pk txn ~table:"warehouse" [ Value.Int input.p_w_id ] in
  let warehouse' = Array.copy warehouse in
  warehouse'.(7) <- Value.Float (f warehouse.(7) +. input.p_amount);
  Txn.update txn ~table:"warehouse" ~rid:w_rid warehouse';
  let d_rid, district =
    read_by_pk txn ~table:"district" [ Value.Int input.p_w_id; Value.Int input.p_d_id ]
  in
  let district' = Array.copy district in
  district'.(8) <- Value.Float (f district.(8) +. input.p_amount);
  Txn.update txn ~table:"district" ~rid:d_rid district';
  let c_rid, customer =
    customer_by_selector txn ~scale:conn.engine.scale ~w_id:input.p_c_w_id ~d_id:input.p_c_d_id
      input.p_customer
  in
  let customer' = Array.copy customer in
  customer'.(15) <- Value.Float (f customer.(15) -. input.p_amount);
  customer'.(16) <- Value.Float (f customer.(16) +. input.p_amount);
  customer'.(17) <- Value.Int (i customer.(17) + 1);
  if s customer.(12) = "BC" then
    customer'.(19) <-
      Value.Str
        (String.sub
           (Printf.sprintf "%d %d %d %d %.2f|%s" (i customer.(2)) input.p_c_d_id input.p_c_w_id
              input.p_d_id input.p_amount (s customer.(19)))
           0
           (min 60
              (String.length
                 (Printf.sprintf "%d %d %d %d %.2f|%s" (i customer.(2)) input.p_c_d_id
                    input.p_c_w_id input.p_d_id input.p_amount (s customer.(19))))));
  Txn.update txn ~table:"customer" ~rid:c_rid customer';
  ignore
    (Txn.insert txn ~table:"history"
       [|
         customer.(2); Value.Int input.p_c_d_id; Value.Int input.p_c_w_id;
         Value.Int input.p_d_id; Value.Int input.p_w_id; Value.Int (now_ts conn);
         Value.Float input.p_amount;
         Value.Str (s warehouse.(1) ^ "    " ^ s district.(2));
       |]);
  Txn.commit txn;
  Engine_intf.Committed

(* --- ORDER-STATUS (clause 2.6) ------------------------------------------------------- *)

let order_status conn txn (input : Spec.order_status_input) =
  let _, customer =
    customer_by_selector txn ~scale:conn.engine.scale ~w_id:input.os_w_id ~d_id:input.os_d_id
      input.os_customer
  in
  let c_id = i customer.(2) in
  (* The customer's most recent order: highest key under the
     (w, d, c) prefix of the order-customer index. *)
  let entries =
    prefix_range txn ~index:"idx_orders_customer"
      [ Value.Int input.os_w_id; Value.Int input.os_d_id; Value.Int c_id ]
  in
  (match List.rev entries with
  | [] -> ()  (* a scaled-down population may leave a customer orderless *)
  | (_, o_rid) :: _ -> (
      match Txn.read txn ~table:"orders" ~rid:o_rid with
      | None -> ()
      | Some order ->
          let o_id = i order.(2) in
          let lines =
            prefix_range txn ~index:(pk "orderline")
              [ Value.Int input.os_w_id; Value.Int input.os_d_id; Value.Int o_id ]
          in
          let rows = Txn.read_batch txn ~table:"orderline" ~rids:(List.map snd lines) in
          List.iter (fun (_, line) -> ignore (i line.(4), i line.(7), f line.(8))) rows));
  Txn.commit txn;
  Engine_intf.Committed

(* --- DELIVERY (clause 2.7) ------------------------------------------------------------ *)

let delivery conn txn (input : Spec.delivery_input) =
  let w_id = input.dl_w_id in
  for d_id = 1 to conn.engine.scale.districts_per_wh do
    (* Oldest undelivered order of the district. *)
    let lo = Codec.encode_key [ Value.Int w_id; Value.Int d_id ] in
    let hi = Codec.encode_key_successor [ Value.Int w_id; Value.Int d_id ] in
    match Txn.index_range txn ~index:(pk "neworder") ~lo ~hi with
    | [] -> ()
    | (_, no_rid) :: _ -> (
        match Txn.read txn ~table:"neworder" ~rid:no_rid with
        | None -> ()
        | Some no_row ->
            let o_id = i no_row.(2) in
            Txn.delete txn ~table:"neworder" ~rid:no_rid;
            let o_rid, order =
              read_by_pk txn ~table:"orders" [ Value.Int w_id; Value.Int d_id; Value.Int o_id ]
            in
            let order' = Array.copy order in
            order'.(5) <- Value.Int input.dl_carrier_id;
            Txn.update txn ~table:"orders" ~rid:o_rid order';
            let lines =
              prefix_range txn ~index:(pk "orderline")
                [ Value.Int w_id; Value.Int d_id; Value.Int o_id ]
            in
            let rows = Txn.read_batch txn ~table:"orderline" ~rids:(List.map snd lines) in
            let total = ref 0.0 in
            List.iter
              (fun (rid, line) ->
                total := !total +. f line.(8);
                let line' = Array.copy line in
                line'.(6) <- Value.Int (now_ts conn);
                Txn.update txn ~table:"orderline" ~rid line')
              rows;
            let c_rid, customer =
              read_by_pk txn ~table:"customer"
                [ Value.Int w_id; Value.Int d_id; order.(3) ]
            in
            let customer' = Array.copy customer in
            customer'.(15) <- Value.Float (f customer.(15) +. !total);
            customer'.(18) <- Value.Int (i customer.(18) + 1);
            Txn.update txn ~table:"customer" ~rid:c_rid customer')
  done;
  Txn.commit txn;
  Engine_intf.Committed

(* --- STOCK-LEVEL (clause 2.8) ---------------------------------------------------------- *)

let stock_level _conn txn (input : Spec.stock_level_input) =
  let _, district =
    read_by_pk txn ~table:"district" [ Value.Int input.sl_w_id; Value.Int input.sl_d_id ]
  in
  let next_o = i district.(9) in
  let lo =
    Codec.encode_key [ Value.Int input.sl_w_id; Value.Int input.sl_d_id; Value.Int (max 1 (next_o - 20)) ]
  in
  let hi = Codec.encode_key [ Value.Int input.sl_w_id; Value.Int input.sl_d_id; Value.Int next_o ] in
  let lines = Txn.index_range txn ~index:(pk "orderline") ~lo ~hi in
  let rows = Txn.read_batch txn ~table:"orderline" ~rids:(List.map snd lines) in
  let item_ids = List.sort_uniq Int.compare (List.map (fun (_, line) -> i line.(4)) rows) in
  (* Batched point lookups: one store round per involved leaf instead of
     one sequential traversal per item (§5.1 batching). *)
  let stock_keys =
    List.map (fun i_id -> Codec.encode_key [ Value.Int input.sl_w_id; Value.Int i_id ]) item_ids
  in
  let tree = Pn.btree (Txn.pn txn) ~index:(pk "stock") in
  let stock_rids = List.concat_map snd (Btree.lookup_many tree ~keys:stock_keys) in
  let stocks = Txn.read_batch txn ~table:"stock" ~rids:stock_rids in
  let low = ref 0 in
  List.iter (fun (_, stock) -> if i stock.(2) < input.sl_threshold then incr low) stocks;
  Txn.commit txn;
  Engine_intf.Committed

(* --- dispatch ---------------------------------------------------------------------------- *)

let execute conn input =
  let txn = Txn.begin_txn conn.pn in
  let abort_if_running () =
    if Txn.status txn = Txn.Running then try Txn.abort txn with _ -> ()
  in
  try
    match input with
    | Spec.New_order no -> new_order conn txn no
    | Spec.Payment p -> payment conn txn p
    | Spec.Order_status os -> order_status conn txn os
    | Spec.Delivery d -> delivery conn txn d
    | Spec.Stock_level sl -> stock_level conn txn sl
  with
  | Txn.Conflict reason ->
      abort_if_running ();
      Engine_intf.Aborted reason
  | Row_missing what ->
      abort_if_running ();
      Engine_intf.Aborted ("missing row: " ^ what)
