(* Shared in-memory row storage for the partitioned baseline models:
   per-table hash maps from (integer key list) to tuples, in the same
   column layouts as [Tell_tpcc.Tell_schema].  The baselines' concurrency
   control and cost models differ; their data plane is this. *)

open Tell_core

type t = { tables : (string, (int list, Value.t array) Hashtbl.t) Hashtbl.t }

let create () = { tables = Hashtbl.create 16 }

let table t name =
  match Hashtbl.find_opt t.tables name with
  | Some table -> table
  | None ->
      let table = Hashtbl.create 1024 in
      Hashtbl.replace t.tables name table;
      table

let get t ~table:name ~key = Hashtbl.find_opt (table t name) key
let put t ~table:name ~key row = Hashtbl.replace (table t name) key row
let remove t ~table:name ~key = Hashtbl.remove (table t name) key

let fold t ~table:name ~init ~f =
  Hashtbl.fold (fun key row acc -> f acc key row) (table t name) init

(* Orderly scans over integer-keyed prefixes: collect then sort (the
   baselines' executors are not latency-modelled per row on local scans —
   their cost models charge per logical operation instead). *)
let prefix_entries t ~table:name ~prefix =
  let plen = List.length prefix in
  let matches key =
    let rec check p k =
      match (p, k) with
      | [], _ -> true
      | ph :: pt, kh :: kt -> ph = kh && check pt kt
      | _ :: _, [] -> false
    in
    List.length key >= plen && check prefix key
  in
  let rows = fold t ~table:name ~init:[] ~f:(fun acc key row -> if matches key then (key, row) :: acc else acc) in
  List.sort (fun (k1, _) (k2, _) -> compare k1 k2) rows
