(* MySQL Cluster (NDB) style partitioned engine (§6.4).

   Architecture per the paper: SQL nodes federate queries towards data
   nodes that store warehouse-partitioned data in memory and replicate
   synchronously.  Every row operation is a statement that pays
   SQL-node processing plus a network round trip to the owning data node;
   writes take exclusive row locks held until a two-phase commit across
   all participant data nodes.  Single-partition transactions are not
   blocked by distributed ones (which is why the paper measures MySQL
   Cluster slightly ahead of VoltDB on the standard mix), but every
   transaction pays the federation and 2PC tax — so it scales flatly. *)

module Sim = Tell_sim
module Spec = Tell_tpcc.Spec
module Engine_intf = Tell_tpcc.Engine_intf

type config = {
  n_data_nodes : int;
  n_sql_nodes : int;
  cores_per_node : int;
  replicas : int;  (** synchronous copies per fragment (1 = RF1) *)
  net_profile : Sim.Net.profile;
  statement_ns : int;  (** SQL-node processing per (prepared) statement *)
  dn_op_ns : int;  (** data-node processing per row operation *)
  epoch_commit_ns : int;
      (** cluster-global commit pipeline occupancy per transaction: NDB
          acknowledges commits through global-checkpoint epochs, a
          cluster-wide mechanism that does not scale with node count —
          the flat throughput of Figure 8 *)
  lock_timeout_ns : int;
  seed : int;
}

let default_config =
  {
    n_data_nodes = 3;
    n_sql_nodes = 2;
    cores_per_node = 8;
    replicas = 1;
    net_profile = { Sim.Net.ethernet_10g with name = "ipoib"; base_latency_ns = 25_000 };
    statement_ns = 8_000;
    dn_op_ns = 2_500;
    epoch_commit_ns = 140_000;
    lock_timeout_ns = 20_000_000;
    seed = 55;
  }

type lock = { mutable owner : int option; waiters : Sim.Engine.resume Queue.t }

type data_node = { dn_id : int; cpu : Sim.Resource.t; store : Row_store.t }

type sql_node = { cpu : Sim.Resource.t }

type t = {
  engine : Sim.Engine.t;
  config : config;
  scale : Spec.scale;
  data_nodes : data_node array;
  sql_nodes : sql_node array;
  net : Sim.Net.t;
  epoch_pipeline : Sim.Resource.t;
  locks : (string * int list, lock) Hashtbl.t;
  mutable unique : int;
  mutable next_txn : int;
  mutable lock_timeouts : int;
}

let create engine ~(config : config) ~(scale : Spec.scale) =
  let rng = Sim.Rng.make config.seed in
  let data_nodes =
    Array.init config.n_data_nodes (fun dn_id ->
        {
          dn_id;
          cpu = Sim.Resource.create engine ~servers:config.cores_per_node (Printf.sprintf "ndb-dn%d" dn_id);
          store = Row_store.create ();
        })
  in
  let sql_nodes =
    Array.init config.n_sql_nodes (fun i ->
        { cpu = Sim.Resource.create engine ~servers:config.cores_per_node (Printf.sprintf "ndb-sql%d" i) })
  in
  let t =
    {
      engine;
      config;
      scale;
      data_nodes;
      sql_nodes;
      net = Sim.Net.create engine rng config.net_profile;
      epoch_pipeline = Sim.Resource.create engine ~servers:1 "ndb-epoch";
      locks = Hashtbl.create 4096;
      unique = 0;
      next_txn = 0;
      lock_timeouts = 0;
    }
  in
  let dn_of_wh w = data_nodes.((w - 1) mod config.n_data_nodes) in
  Tell_tpcc.Population.generate ~scale ~seed:(config.seed + 1) ~emit:(fun ~table ~key row ->
      match (table, key) with
      | "item", _ ->
          (* ITEM is small and read-only: present on every data node. *)
          Array.iter (fun dn -> Row_store.put dn.store ~table ~key row) data_nodes
      | _, w :: _ -> Row_store.put (dn_of_wh w).store ~table ~key row
      | _, [] -> invalid_arg "ndb load: keyless row");
  t

let name _ = "mysql-cluster"
let lock_timeouts t = t.lock_timeouts

let dn_of_wh t w = t.data_nodes.((w - 1) mod t.config.n_data_nodes)

let dn_of_key t ~table key =
  match (table, key) with
  | "item", _ -> t.data_nodes.(0)
  | _, w :: _ -> dn_of_wh t w
  | _, [] -> invalid_arg "ndb: keyless row"

(* --- row locks ----------------------------------------------------------------- *)

let lock_of t id =
  match Hashtbl.find_opt t.locks id with
  | Some lock -> lock
  | None ->
      let lock = { owner = None; waiters = Queue.create () } in
      Hashtbl.replace t.locks id lock;
      lock

(* Exclusive lock with a timeout: NDB resolves deadlocks by aborting the
   waiter after TransactionDeadlockDetectionTimeout.  Waiters re-contend
   on every wake (releases wake everyone), so a waiter that timed out
   cannot swallow a wake-up meant for another. *)
let acquire_lock t ~txn_id id =
  let deadline = Sim.Engine.now t.engine + t.config.lock_timeout_ns in
  let rec contend () =
    let lock = lock_of t id in
    match lock.owner with
    | None -> lock.owner <- Some txn_id
    | Some owner when owner = txn_id -> ()
    | Some _ ->
        if Sim.Engine.now t.engine >= deadline then begin
          t.lock_timeouts <- t.lock_timeouts + 1;
          raise (Tpcc_rows.Engine_abort "lock timeout")
        end;
        let fired = ref false in
        Sim.Engine.suspend t.engine (fun r ->
            let once f = if not !fired then begin fired := true; f () end in
            Queue.push
              { Sim.Engine.resume = (fun () -> once r.resume); cancel = (fun e -> once (fun () -> r.cancel e)) }
              lock.waiters;
            Sim.Engine.schedule t.engine
              ~delay:(max 0 (deadline - Sim.Engine.now t.engine))
              (fun () -> once r.resume));
        contend ()
  in
  contend ()

let release_locks t ~txn_id held =
  List.iter
    (fun id ->
      let lock = lock_of t id in
      if lock.owner = Some txn_id then begin
        lock.owner <- None;
        let rec wake_all () =
          match Queue.take_opt lock.waiters with
          | None -> ()
          | Some r ->
              Sim.Engine.schedule t.engine r.resume;
              wake_all ()
        in
        wake_all ()
      end)
    held

(* --- per-transaction context ----------------------------------------------------- *)

type txn_state = {
  txn_id : int;
  sql : sql_node;
  mutable held : (string * int list) list;
  mutable participants : int list;  (* data-node ids *)
  mutable undo : (unit -> unit) list;
  mutable row_writes : int;
}

(* One statement: SQL-node processing + round trip to the data node +
   data-node processing.  This per-operation federation cost is the heart
   of NDB's cost structure. *)
let statement t st (dn : data_node) ~bytes ~f =
  Sim.Resource.use st.sql.cpu ~demand:t.config.statement_ns;
  Sim.Net.transfer t.net ~bytes;
  Sim.Resource.use dn.cpu ~demand:t.config.dn_op_ns;
  let result = f () in
  Sim.Net.transfer t.net ~bytes:128;
  result

let note_participant st (dn : data_node) =
  if not (List.mem dn.dn_id st.participants) then st.participants <- dn.dn_id :: st.participants

let ctx t st =
  let read ~locking ~table ~key =
    let dn = dn_of_key t ~table key in
    note_participant st dn;
    statement t st dn ~bytes:96 ~f:(fun () ->
        if locking then begin
          acquire_lock t ~txn_id:st.txn_id (table, key);
          if not (List.mem (table, key) st.held) then st.held <- (table, key) :: st.held
        end;
        Row_store.get dn.store ~table ~key)
  in
  {
    Tpcc_rows.read = (fun ~table ~key -> read ~locking:false ~table ~key);
    read_for_update = (fun ~table ~key -> read ~locking:true ~table ~key);
    write =
      (fun ~table ~key row ->
        let dn = dn_of_key t ~table key in
        note_participant st dn;
        st.row_writes <- st.row_writes + 1;
        statement t st dn ~bytes:256 ~f:(fun () ->
            acquire_lock t ~txn_id:st.txn_id (table, key);
            if not (List.mem (table, key) st.held) then st.held <- (table, key) :: st.held;
            let previous = Row_store.get dn.store ~table ~key in
            st.undo <-
              (fun () ->
                match previous with
                | Some old -> Row_store.put dn.store ~table ~key old
                | None -> Row_store.remove dn.store ~table ~key)
              :: st.undo;
            Row_store.put dn.store ~table ~key row));
    delete =
      (fun ~table ~key ->
        let dn = dn_of_key t ~table key in
        note_participant st dn;
        statement t st dn ~bytes:96 ~f:(fun () ->
            acquire_lock t ~txn_id:st.txn_id (table, key);
            if not (List.mem (table, key) st.held) then st.held <- (table, key) :: st.held;
            let previous = Row_store.get dn.store ~table ~key in
            st.undo <-
              (fun () ->
                match previous with
                | Some old -> Row_store.put dn.store ~table ~key old
                | None -> ())
              :: st.undo;
            Row_store.remove dn.store ~table ~key));
    prefix =
      (fun ~table ~prefix ->
        match prefix with
        | w :: _ ->
            let dn = dn_of_wh t w in
            note_participant st dn;
            statement t st dn ~bytes:96 ~f:(fun () -> Row_store.prefix_entries dn.store ~table ~prefix)
        | [] -> invalid_arg "ndb: keyless prefix");
    now = (fun () -> Sim.Engine.now t.engine);
    unique =
      (fun () ->
        t.unique <- t.unique + 1;
        t.unique);
  }

(* Two-phase commit with synchronous fragment replication: one
   prepare+replicate round and one commit round per participant, in
   parallel across participants. *)
let two_phase_commit t st =
  let round ~bytes ~demand =
    let acks =
      List.map
        (fun dn_id ->
          let ack = Sim.Ivar.create t.engine in
          let dn = t.data_nodes.(dn_id) in
          Sim.Engine.spawn t.engine (fun () ->
              Sim.Net.transfer t.net ~bytes;
              Sim.Resource.use dn.cpu ~demand;
              (* Synchronous replication of the fragment changes. *)
              for _ = 2 to t.config.replicas do
                Sim.Net.transfer t.net ~bytes;
                Sim.Resource.use dn.cpu ~demand:(demand / 2)
              done;
              Sim.Net.transfer t.net ~bytes:64;
              Sim.Ivar.fill ack ());
          ack)
        st.participants
    in
    List.iter Sim.Ivar.read acks
  in
  let write_demand = t.config.dn_op_ns * max 1 st.row_writes / max 1 (List.length st.participants) in
  round ~bytes:256 ~demand:write_demand;
  (* The commit acknowledgement rides the cluster-global epoch. *)
  Sim.Resource.use t.epoch_pipeline ~demand:t.config.epoch_commit_ns;
  round ~bytes:64 ~demand:1_000

(* --- ENGINE interface -------------------------------------------------------------- *)

type conn = { t : t; sql : sql_node }

let connect t ~terminal_id = { t; sql = t.sql_nodes.(terminal_id mod Array.length t.sql_nodes) }

let execute conn input =
  let t = conn.t in
  t.next_txn <- t.next_txn + 1;
  let st =
    { txn_id = t.next_txn; sql = conn.sql; held = []; participants = []; undo = []; row_writes = 0 }
  in
  let finish outcome =
    release_locks t ~txn_id:st.txn_id st.held;
    outcome
  in
  match Tpcc_rows.run (ctx t st) ~districts:t.scale.districts_per_wh input with
  | `Done ->
      two_phase_commit t st;
      finish Engine_intf.Committed
  | `User_abort ->
      List.iter (fun undo -> undo ()) st.undo;
      finish Engine_intf.User_abort
  | exception Tpcc_rows.Engine_abort reason ->
      List.iter (fun undo -> undo ()) st.undo;
      finish (Engine_intf.Aborted reason)
