(* TPC-C transaction logic over an abstract row-access context — shared by
   the three baseline models, whose concurrency control and cost models
   plug in through the context's callbacks.  Column layouts are those of
   [Tell_tpcc.Tell_schema]. *)

open Tell_core
module Spec = Tell_tpcc.Spec

exception Engine_abort of string
(** Raised by a context on lock timeout / OCC conflict; the model converts
    it into an [Aborted] outcome after undoing its own state. *)

type ctx = {
  read : table:string -> key:int list -> Value.t array option;
  read_for_update : table:string -> key:int list -> Value.t array option;
      (** Locking read: rows that will be written back must be read through
          this so lock-based models avoid lost updates. *)
  write : table:string -> key:int list -> Value.t array -> unit;
  delete : table:string -> key:int list -> unit;
  prefix : table:string -> prefix:int list -> (int list * Value.t array) list;
  now : unit -> int;
  unique : unit -> int;
}

let f = Value.as_float
let i = Value.as_int
let s = Value.as_string

let required ~what = function
  | Some row -> row
  | None -> raise (Engine_abort ("missing row: " ^ what))

let new_order ctx (input : Spec.new_order_input) =
  let w_id = input.no_w_id and d_id = input.no_d_id in
  let warehouse = required ~what:"warehouse" (ctx.read ~table:"warehouse" ~key:[ w_id ]) in
  let district =
    required ~what:"district" (ctx.read_for_update ~table:"district" ~key:[ w_id; d_id ])
  in
  let o_id = i district.(9) in
  let district' = Array.copy district in
  district'.(9) <- Value.Int (o_id + 1);
  ctx.write ~table:"district" ~key:[ w_id; d_id ] district';
  let customer =
    required ~what:"customer" (ctx.read ~table:"customer" ~key:[ w_id; d_id; input.no_c_id ])
  in
  ignore (f warehouse.(6), f district.(7), f customer.(14));
  let all_local = List.for_all (fun (_, sw, _) -> sw = w_id) input.items in
  let items =
    if input.invalid_item then
      match List.rev input.items with
      | (_, sw, qty) :: rest -> List.rev ((0, sw, qty) :: rest)
      | [] -> input.items
    else input.items
  in
  (* Validate items before writing order rows so that the user abort rolls
     back trivially in every model. *)
  let resolved =
    List.map
      (fun (i_id, supply_w, qty) ->
        ((if i_id = 0 then None else ctx.read ~table:"item" ~key:[ i_id ]), i_id, supply_w, qty))
      items
  in
  if List.exists (fun (item, _, _, _) -> item = None) resolved then `User_abort
  else begin
    ctx.write ~table:"orders" ~key:[ w_id; d_id; o_id ]
      [|
        Value.Int w_id; Value.Int d_id; Value.Int o_id; Value.Int input.no_c_id;
        Value.Int (ctx.now ()); Value.Int 0; Value.Int (List.length items);
        Value.Int (if all_local then 1 else 0);
      |];
    ctx.write ~table:"neworder" ~key:[ w_id; d_id; o_id ]
      [| Value.Int w_id; Value.Int d_id; Value.Int o_id |];
    List.iteri
      (fun idx (item, i_id, supply_w, qty) ->
        let item = required ~what:"item" item in
        let stock =
          required ~what:"stock" (ctx.read_for_update ~table:"stock" ~key:[ supply_w; i_id ])
        in
        let s_qty = i stock.(2) in
        let stock' = Array.copy stock in
        stock'.(2) <- Value.Int (if s_qty >= qty + 10 then s_qty - qty else s_qty - qty + 91);
        stock'.(4) <- Value.Float (f stock.(4) +. float_of_int qty);
        stock'.(5) <- Value.Int (i stock.(5) + 1);
        if supply_w <> w_id then stock'.(6) <- Value.Int (i stock.(6) + 1);
        ctx.write ~table:"stock" ~key:[ supply_w; i_id ] stock';
        ctx.write ~table:"orderline" ~key:[ w_id; d_id; o_id; idx + 1 ]
          [|
            Value.Int w_id; Value.Int d_id; Value.Int o_id; Value.Int (idx + 1);
            Value.Int i_id; Value.Int supply_w; Value.Int 0; Value.Int qty;
            Value.Float (float_of_int qty *. f item.(3)); Value.Str (s stock.(3));
          |])
      resolved;
    `Done
  end

let select_customer ctx ~w_id ~d_id ~for_update selector =
  match selector with
  | Spec.By_id c_id ->
      let read = if for_update then ctx.read_for_update else ctx.read in
      ( [ w_id; d_id; c_id ],
        required ~what:"customer" (read ~table:"customer" ~key:[ w_id; d_id; c_id ]) )
  | Spec.By_last_name last -> (
      let candidates =
        List.filter
          (fun (_, row) -> s row.(5) = last)
          (ctx.prefix ~table:"customer" ~prefix:[ w_id; d_id ])
      in
      let sorted =
        List.sort (fun (_, a) (_, b) -> String.compare (s a.(3)) (s b.(3))) candidates
      in
      let n = List.length sorted in
      match List.nth_opt sorted ((n - 1) / 2) with
      | None -> raise (Engine_abort "customer by name not found")
      | Some (key, _) ->
          let read = if for_update then ctx.read_for_update else ctx.read in
          (key, required ~what:"customer" (read ~table:"customer" ~key)))

let payment ctx (input : Spec.payment_input) =
  let warehouse =
    required ~what:"warehouse"
      (ctx.read_for_update ~table:"warehouse" ~key:[ input.p_w_id ])
  in
  let warehouse' = Array.copy warehouse in
  warehouse'.(7) <- Value.Float (f warehouse.(7) +. input.p_amount);
  ctx.write ~table:"warehouse" ~key:[ input.p_w_id ] warehouse';
  let district =
    required ~what:"district"
      (ctx.read_for_update ~table:"district" ~key:[ input.p_w_id; input.p_d_id ])
  in
  let district' = Array.copy district in
  district'.(8) <- Value.Float (f district.(8) +. input.p_amount);
  ctx.write ~table:"district" ~key:[ input.p_w_id; input.p_d_id ] district';
  let c_key, customer =
    select_customer ctx ~w_id:input.p_c_w_id ~d_id:input.p_c_d_id ~for_update:true
      input.p_customer
  in
  let customer' = Array.copy customer in
  customer'.(15) <- Value.Float (f customer.(15) -. input.p_amount);
  customer'.(16) <- Value.Float (f customer.(16) +. input.p_amount);
  customer'.(17) <- Value.Int (i customer.(17) + 1);
  ctx.write ~table:"customer" ~key:c_key customer';
  ctx.write ~table:"history"
    ~key:[ input.p_c_w_id; input.p_c_d_id; i customer.(2); ctx.unique () ]
    [|
      customer.(2); Value.Int input.p_c_d_id; Value.Int input.p_c_w_id;
      Value.Int input.p_d_id; Value.Int input.p_w_id; Value.Int (ctx.now ());
      Value.Float input.p_amount; Value.Str (s warehouse.(1) ^ " " ^ s district.(2));
    |]

let order_status ctx (input : Spec.order_status_input) =
  let _, customer =
    select_customer ctx ~w_id:input.os_w_id ~d_id:input.os_d_id ~for_update:false
      input.os_customer
  in
  let c_id = i customer.(2) in
  let orders =
    List.filter
      (fun (_, row) -> i row.(3) = c_id)
      (ctx.prefix ~table:"orders" ~prefix:[ input.os_w_id; input.os_d_id ])
  in
  match List.rev orders with
  | [] -> ()
  | (_, order) :: _ ->
      let o_id = i order.(2) in
      let lines =
        ctx.prefix ~table:"orderline" ~prefix:[ input.os_w_id; input.os_d_id; o_id ]
      in
      List.iter (fun (_, line) -> ignore (i line.(4), i line.(7), f line.(8))) lines

let delivery ctx ~districts (input : Spec.delivery_input) =
  let w_id = input.dl_w_id in
  for d_id = 1 to districts do
    match ctx.prefix ~table:"neworder" ~prefix:[ w_id; d_id ] with
    | [] -> ()
    | (no_key, no_row) :: _ ->
        let o_id = i no_row.(2) in
        ctx.delete ~table:"neworder" ~key:no_key;
        let order =
          required ~what:"orders" (ctx.read_for_update ~table:"orders" ~key:[ w_id; d_id; o_id ])
        in
        let order' = Array.copy order in
        order'.(5) <- Value.Int input.dl_carrier_id;
        ctx.write ~table:"orders" ~key:[ w_id; d_id; o_id ] order';
        let lines = ctx.prefix ~table:"orderline" ~prefix:[ w_id; d_id; o_id ] in
        let total = ref 0.0 in
        List.iter
          (fun (key, line) ->
            total := !total +. f line.(8);
            let line' = Array.copy line in
            line'.(6) <- Value.Int (ctx.now ());
            ctx.write ~table:"orderline" ~key line')
          lines;
        let c_key = [ w_id; d_id; i order.(3) ] in
        let customer =
          required ~what:"customer" (ctx.read_for_update ~table:"customer" ~key:c_key)
        in
        let customer' = Array.copy customer in
        customer'.(15) <- Value.Float (f customer.(15) +. !total);
        customer'.(18) <- Value.Int (i customer.(18) + 1);
        ctx.write ~table:"customer" ~key:c_key customer'
  done

let stock_level ctx (input : Spec.stock_level_input) =
  let district =
    required ~what:"district" (ctx.read ~table:"district" ~key:[ input.sl_w_id; input.sl_d_id ])
  in
  let next_o = i district.(9) in
  let lines =
    List.filter
      (fun (key, _) -> match key with _ :: _ :: o :: _ -> o >= next_o - 20 && o < next_o | _ -> false)
      (ctx.prefix ~table:"orderline" ~prefix:[ input.sl_w_id; input.sl_d_id ])
  in
  let item_ids = List.sort_uniq Int.compare (List.map (fun (_, line) -> i line.(4)) lines) in
  let low = ref 0 in
  List.iter
    (fun i_id ->
      match ctx.read ~table:"stock" ~key:[ input.sl_w_id; i_id ] with
      | Some stock -> if i stock.(2) < input.sl_threshold then incr low
      | None -> ())
    item_ids;
  ignore !low

(* Warehouses a transaction touches — the partitioning question. *)
let warehouses_touched = function
  | Spec.New_order no -> List.sort_uniq Int.compare (no.no_w_id :: List.map (fun (_, sw, _) -> sw) no.items)
  | Spec.Payment p -> List.sort_uniq Int.compare [ p.p_w_id; p.p_c_w_id ]
  | Spec.Order_status os -> [ os.os_w_id ]
  | Spec.Delivery d -> [ d.dl_w_id ]
  | Spec.Stock_level sl -> [ sl.sl_w_id ]

let run ctx ~districts (input : Spec.txn_input) =
  match input with
  | Spec.New_order no -> (new_order ctx no :> [ `Done | `User_abort ])
  | Spec.Payment p ->
      payment ctx p;
      `Done
  | Spec.Order_status os ->
      order_status ctx os;
      `Done
  | Spec.Delivery d ->
      delivery ctx ~districts d;
      `Done
  | Spec.Stock_level sl ->
      stock_level ctx sl;
      `Done
