lib/baselines/tpcc_rows.ml: Array Int List String Tell_core Tell_tpcc Value
