lib/baselines/row_store.ml: Hashtbl List Tell_core Value
