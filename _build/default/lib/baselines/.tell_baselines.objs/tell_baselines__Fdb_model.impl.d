lib/baselines/fdb_model.ml: Array Hashtbl List Printf Row_store Tell_core Tell_sim Tell_tpcc Tpcc_rows
