lib/baselines/voltdb_model.ml: Array Int List Printf Row_store Tell_sim Tell_tpcc Tpcc_rows
