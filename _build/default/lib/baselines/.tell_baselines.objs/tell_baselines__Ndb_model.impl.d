lib/baselines/ndb_model.ml: Array Hashtbl List Printf Queue Row_store Tell_sim Tell_tpcc Tpcc_rows
