(* VoltDB-style partitioned engine (H-Store execution model, §6.4).

   Tables are horizontally partitioned by warehouse across
   [partitions_per_node] partitions per node; each partition is owned by a
   single-threaded executor fiber that runs transactions serially without
   any concurrency control.  Single-partition transactions are the fast
   path: one client round trip, one serial execution, synchronous
   replication to K replicas.  Multi-partition transactions go through a
   global initiator (a mutex) and fence {e every} partition for the
   duration of the transaction — the cost structure that makes VoltDB
   collapse under the standard TPC-C mix (Figure 8) and win on the
   perfectly shardable variant (Figure 9). *)

module Sim = Tell_sim
module Spec = Tell_tpcc.Spec
module Engine_intf = Tell_tpcc.Engine_intf

type config = {
  n_nodes : int;
  partitions_per_node : int;
  cores_per_node : int;
  k_factor : int;  (** number of extra replicas: 0 = RF1, 2 = RF3 *)
  net_profile : Sim.Net.profile;
  sp_base_ns : int;  (** fixed stored-procedure invocation cost *)
  row_op_ns : int;  (** per-row execution cost *)
  mp_overhead_ns : int;  (** multi-partition planning/coordination at the initiator *)
  seed : int;
}

let default_config =
  {
    n_nodes = 3;
    partitions_per_node = 6;
    cores_per_node = 8;
    k_factor = 0;
    (* VoltDB speaks TCP/IP over InfiniBand: no RDMA, kernel latencies. *)
    net_profile = { Sim.Net.ethernet_10g with name = "ipoib"; base_latency_ns = 25_000 };
    (* Calibrated against the paper's measurements (§6.4, Table 4): the
       authors observed ~1k transactions/s per partition and hundreds of
       milliseconds for multi-partition transactions. *)
    sp_base_ns = 750_000;
    row_op_ns = 2_000;
    mp_overhead_ns = 2_000_000;
    seed = 99;
  }

type node = { cpu : Sim.Resource.t }

type job =
  | Work of { run : unit -> unit; done_ : unit Sim.Ivar.t }
  | Fence of { arrivals : int ref; all_arrived : unit Sim.Ivar.t; release : unit Sim.Ivar.t }

type partition = { p_id : int; store : Row_store.t; queue : job Sim.Mailbox.t; node : node }

type t = {
  engine : Sim.Engine.t;
  config : config;
  scale : Spec.scale;
  partitions : partition array;
  nodes : node array;
  net : Sim.Net.t;
  mp_initiator : Sim.Mutex.t;
  mutable unique : int;
  mutable single_part_txns : int;
  mutable multi_part_txns : int;
}

let n_partitions t = Array.length t.partitions
let partition_of_wh t w = (w - 1) mod n_partitions t

let start_executor t partition =
  Sim.Engine.spawn t.engine (fun () ->
      while true do
        match Sim.Mailbox.recv partition.queue with
        | Work { run; done_ } ->
            run ();
            Sim.Ivar.fill done_ ()
        | Fence { arrivals; all_arrived; release } ->
            incr arrivals;
            if !arrivals = n_partitions t then Sim.Ivar.fill all_arrived ();
            Sim.Ivar.read release
      done)

let create engine ~(config : config) ~(scale : Spec.scale) =
  let rng = Sim.Rng.make config.seed in
  let nodes =
    Array.init config.n_nodes (fun i ->
        { cpu = Sim.Resource.create engine ~servers:config.cores_per_node (Printf.sprintf "volt%d" i) })
  in
  let partitions =
    Array.init (config.n_nodes * config.partitions_per_node) (fun p_id ->
        {
          p_id;
          store = Row_store.create ();
          queue = Sim.Mailbox.create engine;
          node = nodes.(p_id / config.partitions_per_node);
        })
  in
  let t =
    {
      engine;
      config;
      scale;
      partitions;
      nodes;
      net = Sim.Net.create engine rng config.net_profile;
      mp_initiator = Sim.Mutex.create engine;
      unique = 0;
      single_part_txns = 0;
      multi_part_txns = 0;
    }
  in
  Array.iter (fun p -> start_executor t p) partitions;
  (* Load the population: warehouse-partitioned, read-only ITEM replicated
     everywhere. *)
  Tell_tpcc.Population.generate ~scale ~seed:(config.seed + 1) ~emit:(fun ~table ~key row ->
      match (table, key) with
      | "item", _ -> Array.iter (fun p -> Row_store.put p.store ~table ~key row) partitions
      | _, w :: _ -> Row_store.put partitions.(partition_of_wh t w).store ~table ~key row
      | _, [] -> invalid_arg "voltdb load: keyless row");
  t

let name _ = "voltdb"

let stats t = (t.single_part_txns, t.multi_part_txns)

(* Row-access context bound to one partition; row operations charge the
   owning node's CPU (the executor fiber is doing the work). *)
let partition_ctx t partition rows_touched =
  let charge () =
    rows_touched := !rows_touched + 1;
    Sim.Resource.use partition.node.cpu ~demand:t.config.row_op_ns
  in
  let store = partition.store in
  {
    Tpcc_rows.read =
      (fun ~table ~key ->
        charge ();
        Row_store.get store ~table ~key);
    read_for_update =
      (fun ~table ~key ->
        charge ();
        Row_store.get store ~table ~key);
    write =
      (fun ~table ~key row ->
        charge ();
        Row_store.put store ~table ~key row);
    delete =
      (fun ~table ~key ->
        charge ();
        Row_store.remove store ~table ~key);
    prefix =
      (fun ~table ~prefix ->
        charge ();
        Row_store.prefix_entries store ~table ~prefix);
    now = (fun () -> Sim.Engine.now t.engine);
    unique =
      (fun () ->
        t.unique <- t.unique + 1;
        t.unique);
  }

(* Global context for fenced multi-partition work: operations route to the
   owning partition's store; the executors are parked on the fence, so
   direct access is race-free. *)
let global_ctx t rows_touched =
  let route key =
    match key with
    | w :: _ -> t.partitions.(partition_of_wh t w)
    | [] -> invalid_arg "voltdb: keyless row"
  in
  let charge partition =
    rows_touched := !rows_touched + 1;
    (* Plan-fragment distribution: every row operation of a fenced
       multi-partition transaction pays a coordination round trip. *)
    Sim.Net.transfer t.net ~bytes:128;
    Sim.Resource.use partition.node.cpu ~demand:t.config.row_op_ns;
    Sim.Net.transfer t.net ~bytes:128
  in
  {
    Tpcc_rows.read =
      (fun ~table ~key ->
        if table = "item" then Row_store.get t.partitions.(0).store ~table ~key
        else begin
          let p = route key in
          charge p;
          Row_store.get p.store ~table ~key
        end);
    read_for_update =
      (fun ~table ~key ->
        let p = route key in
        charge p;
        Row_store.get p.store ~table ~key);
    write =
      (fun ~table ~key row ->
        let p = route key in
        charge p;
        Row_store.put p.store ~table ~key row);
    delete =
      (fun ~table ~key ->
        let p = route key in
        charge p;
        Row_store.remove p.store ~table ~key);
    prefix =
      (fun ~table ~prefix ->
        match prefix with
        | w :: _ ->
            let p = t.partitions.(partition_of_wh t w) in
            charge p;
            Row_store.prefix_entries p.store ~table ~prefix
        | [] -> invalid_arg "voltdb: keyless prefix");
    now = (fun () -> Sim.Engine.now t.engine);
    unique =
      (fun () ->
        t.unique <- t.unique + 1;
        t.unique);
  }

(* Synchronous K-safety: replicas re-execute the procedure, so the reply
   waits for one round trip plus the replica's execution time. *)
let replicate t ~home_partition ~rows =
  if t.config.k_factor > 0 then begin
    let acks =
      List.init t.config.k_factor (fun k ->
          let ack = Sim.Ivar.create t.engine in
          let replica =
            t.partitions.((home_partition + ((k + 1) * t.config.partitions_per_node))
                          mod n_partitions t)
          in
          Sim.Engine.spawn t.engine (fun () ->
              Sim.Net.transfer t.net ~bytes:256;
              Sim.Resource.use replica.node.cpu
                ~demand:(t.config.sp_base_ns + (rows * t.config.row_op_ns));
              Sim.Net.transfer t.net ~bytes:64;
              Sim.Ivar.fill ack ());
          ack)
    in
    List.iter Sim.Ivar.read acks
  end

let run_single t ~partition input =
  t.single_part_txns <- t.single_part_txns + 1;
  let p = t.partitions.(partition) in
  Sim.Net.transfer t.net ~bytes:256;
  let done_ = Sim.Ivar.create t.engine in
  let outcome = ref `Done in
  let rows = ref 0 in
  Sim.Mailbox.send p.queue
    (Work
       {
         run =
           (fun () ->
             Sim.Resource.use p.node.cpu ~demand:t.config.sp_base_ns;
             let ctx = partition_ctx t p rows in
             (match Tpcc_rows.run ctx ~districts:t.scale.districts_per_wh input with
             | `Done -> ()
             | `User_abort -> outcome := `User_abort);
             replicate t ~home_partition:partition ~rows:!rows);
         done_;
       });
  Sim.Ivar.read done_;
  Sim.Net.transfer t.net ~bytes:128;
  match !outcome with
  | `Done -> Engine_intf.Committed
  | `User_abort -> Engine_intf.User_abort

let run_multi t input =
  t.multi_part_txns <- t.multi_part_txns + 1;
  Sim.Mutex.with_lock t.mp_initiator (fun () ->
      Sim.Net.transfer t.net ~bytes:256;
      let arrivals = ref 0 in
      let all_arrived = Sim.Ivar.create t.engine in
      let release = Sim.Ivar.create t.engine in
      Array.iter
        (fun p ->
          Sim.Engine.spawn t.engine (fun () ->
              Sim.Net.transfer t.net ~bytes:64;
              Sim.Mailbox.send p.queue (Fence { arrivals; all_arrived; release })))
        t.partitions;
      Sim.Ivar.read all_arrived;
      (* Initiator-side planning and coordination overhead; the barrier
         rounds grow with the number of partitions to fence, which is why
         adding nodes makes the standard mix slower (Figure 8). *)
      Sim.Engine.sleep t.engine (t.config.mp_overhead_ns + (150_000 * n_partitions t));
      let rows = ref 0 in
      let ctx = global_ctx t rows in
      let outcome = Tpcc_rows.run ctx ~districts:t.scale.districts_per_wh input in
      (* Fragment distribution and result collection rounds. *)
      Sim.Net.transfer t.net ~bytes:512;
      Sim.Net.transfer t.net ~bytes:256;
      Sim.Ivar.fill release ();
      Sim.Net.transfer t.net ~bytes:128;
      match outcome with
      | `Done -> Engine_intf.Committed
      | `User_abort -> Engine_intf.User_abort)

(* --- ENGINE interface ------------------------------------------------------------ *)

type conn = { t : t }

let connect t ~terminal_id:_ = { t }

let execute conn input =
  let t = conn.t in
  let parts =
    List.sort_uniq Int.compare
      (List.map (partition_of_wh t) (Tpcc_rows.warehouses_touched input))
  in
  match parts with
  | [ partition ] -> run_single t ~partition input
  | _ -> run_multi t input
