(* FoundationDB-style shared-data engine (§6.5).

   Same architectural family as Tell — stateless SQL processing over a
   shared, replicated in-memory key-value store — but with the two cost
   structures the paper blames for the 30x gap:

   - commit validation is {e centralised}: every transaction's read and
     write set flows through a proxy/resolver pipeline with bounded
     throughput (optimistic serialisable conflict checking against
     recently committed versions);
   - the (then new) SQL layer issues one TCP round trip per row operation
     with significant per-operation processing, and does not exploit
     RDMA.

   Data operations are real: reads are versioned against the read
   version, writes are buffered and applied atomically at commit, and
   conflicting transactions abort — so TPC-C results remain consistent. *)

module Sim = Tell_sim
module Spec = Tell_tpcc.Spec
module Engine_intf = Tell_tpcc.Engine_intf

type config = {
  n_storage : int;
  n_sql : int;
  cores_per_node : int;
  replicas : int;  (** synchronous copies of every mutation (3 = triple) *)
  net_profile : Sim.Net.profile;
  sql_op_ns : int;  (** SQL-layer processing per row operation *)
  storage_op_ns : int;
  resolver_key_ns : int;  (** resolver work per read/write-set key *)
  commit_base_ns : int;
  seed : int;
}

let default_config =
  {
    n_storage = 3;
    n_sql = 3;
    cores_per_node = 8;
    replicas = 3;
    net_profile = { Sim.Net.ethernet_10g with name = "ipoib"; base_latency_ns = 25_000 };
    sql_op_ns = 40_000;
    storage_op_ns = 2_000;
    resolver_key_ns = 30_000;
    (* Calibrated to the paper's measurements (Table 4: 149 ms mean
       response; §6.5: 2.7k-10k TpmC): the young SQL layer committed
       through a slow centralised proxy/resolver/tlog pipeline. *)
    commit_base_ns = 12_000_000;
    seed = 77;
  }

type t = {
  engine : Sim.Engine.t;
  config : config;
  scale : Spec.scale;
  store : Row_store.t;
  storage_cpus : Sim.Resource.t array;
  sql_cpus : Sim.Resource.t array;
  commit_pipeline : Sim.Resource.t;  (** proxy + resolver + tlog, the central stage *)
  net : Sim.Net.t;
  last_write : (string * int list, int) Hashtbl.t;  (** key -> commit version *)
  mutable version : int;
  mutable unique : int;
  mutable conflicts : int;
}

let create engine ~(config : config) ~(scale : Spec.scale) =
  let rng = Sim.Rng.make config.seed in
  let t =
    {
      engine;
      config;
      scale;
      store = Row_store.create ();
      storage_cpus =
        Array.init config.n_storage (fun i ->
            Sim.Resource.create engine ~servers:config.cores_per_node (Printf.sprintf "fdb-ss%d" i));
      sql_cpus =
        Array.init config.n_sql (fun i ->
            Sim.Resource.create engine ~servers:config.cores_per_node (Printf.sprintf "fdb-sql%d" i));
      (* The pipeline is provisioned with the cluster (proxies/resolvers
         are processes on the same nodes), so capacity grows with nodes —
         FDB does scale, just from a very low base (§6.5). *)
      commit_pipeline = Sim.Resource.create engine ~servers:config.n_storage "fdb-commit";
      net = Sim.Net.create engine rng config.net_profile;
      last_write = Hashtbl.create 4096;
      version = 0;
      unique = 0;
      conflicts = 0;
    }
  in
  Tell_tpcc.Population.generate ~scale ~seed:(config.seed + 1) ~emit:(fun ~table ~key row ->
      Row_store.put t.store ~table ~key row);
  t

let name _ = "foundationdb"
let conflicts t = t.conflicts

let storage_for t ~table ~key = t.storage_cpus.(Hashtbl.hash (table, key) mod t.config.n_storage)

type buffered = Put of Tell_core.Value.t array | Del

type txn_state = {
  read_version : int;
  sql : Sim.Resource.t;
  reads : (string * int list, unit) Hashtbl.t;
  writes : (string * int list, buffered) Hashtbl.t;
  mutable write_order : (string * int list) list;
}

(* One row operation through the SQL layer: client-side processing plus a
   TCP round trip to the owning storage server.  No request combining. *)
let row_op t st ~table ~key ~bytes ~f =
  Sim.Resource.use st.sql ~demand:t.config.sql_op_ns;
  Sim.Net.transfer t.net ~bytes;
  Sim.Resource.use (storage_for t ~table ~key) ~demand:t.config.storage_op_ns;
  let result = f () in
  Sim.Net.transfer t.net ~bytes:128;
  result

let buffered_read st ~table ~key =
  match Hashtbl.find_opt st.writes (table, key) with
  | Some (Put row) -> Some (Some row)
  | Some Del -> Some None
  | None -> None

let ctx t st =
  let read ~table ~key =
    match buffered_read st ~table ~key with
    | Some result -> result
    | None ->
        Hashtbl.replace st.reads (table, key) ();
        row_op t st ~table ~key ~bytes:96 ~f:(fun () -> Row_store.get t.store ~table ~key)
  in
  let buffer_write ~table ~key value =
    if not (Hashtbl.mem st.writes (table, key)) then
      st.write_order <- (table, key) :: st.write_order;
    Hashtbl.replace st.writes (table, key) value
  in
  {
    Tpcc_rows.read;
    (* Optimistic engine: a "locking" read is just a read whose key lands
       in the conflict-checked read set. *)
    read_for_update = read;
    write =
      (fun ~table ~key row ->
        Sim.Resource.use st.sql ~demand:t.config.sql_op_ns;
        buffer_write ~table ~key (Put row));
    delete =
      (fun ~table ~key ->
        Sim.Resource.use st.sql ~demand:t.config.sql_op_ns;
        buffer_write ~table ~key Del);
    prefix =
      (fun ~table ~prefix ->
        (* A range read: one round trip, per-row service cost, overlaid
           with this transaction's own buffered writes. *)
        let stored =
          row_op t st ~table ~key:prefix ~bytes:96 ~f:(fun () ->
              Row_store.prefix_entries t.store ~table ~prefix)
        in
        Sim.Resource.use (storage_for t ~table ~key:prefix)
          ~demand:(List.length stored * 200);
        let matches key =
          let rec check p k =
            match (p, k) with
            | [], _ -> true
            | ph :: pt, kh :: kt -> ph = kh && check pt kt
            | _ :: _, [] -> false
          in
          check prefix key
        in
        let overlaid =
          List.filter_map
            (fun (key, row) ->
              Hashtbl.replace st.reads (table, key) ();
              match Hashtbl.find_opt st.writes (table, key) with
              | Some (Put row') -> Some (key, row')
              | Some Del -> None
              | None -> Some (key, row))
            stored
        in
        let additions =
          Hashtbl.fold
            (fun (tbl, key) value acc ->
              match value with
              | Put row
                when tbl = table && matches key
                     && not (List.exists (fun (k, _) -> k = key) overlaid) ->
                  (key, row) :: acc
              | Put _ | Del -> acc)
            st.writes []
        in
        List.sort (fun (k1, _) (k2, _) -> compare k1 k2) (overlaid @ additions));
    now = (fun () -> Sim.Engine.now t.engine);
    unique =
      (fun () ->
        t.unique <- t.unique + 1;
        t.unique);
  }

(* Centralised commit: ship read+write sets to the proxy, resolve
   conflicts against recently committed versions, make mutations durable
   on [replicas] tlogs, apply. *)
let commit t st =
  let n_keys = Hashtbl.length st.reads + Hashtbl.length st.writes in
  Sim.Net.transfer t.net ~bytes:(128 + (n_keys * 48));
  Sim.Resource.use t.commit_pipeline
    ~demand:(t.config.commit_base_ns + (n_keys * t.config.resolver_key_ns));
  let conflicted =
    Hashtbl.fold
      (fun key () acc ->
        acc
        ||
        match Hashtbl.find_opt t.last_write key with
        | Some v -> v > st.read_version
        | None -> false)
      st.reads false
  in
  if conflicted then begin
    t.conflicts <- t.conflicts + 1;
    Sim.Net.transfer t.net ~bytes:64;
    `Conflict
  end
  else begin
    t.version <- t.version + 1;
    let commit_version = t.version in
    (* Resolution and application are one atomic step (no suspension in
       between): otherwise two conflicting transactions could both pass
       the check against a stale conflict window. *)
    List.iter
      (fun (table, key) ->
        Hashtbl.replace t.last_write (table, key) commit_version;
        match Hashtbl.find_opt st.writes (table, key) with
        | Some (Put row) -> Row_store.put t.store ~table ~key row
        | Some Del -> Row_store.remove t.store ~table ~key
        | None -> ())
      (List.rev st.write_order);
    (* Durable on every tlog replica before acknowledging the client. *)
    let acks =
      List.init (max 1 (t.config.replicas - 1)) (fun _ ->
          let ack = Sim.Ivar.create t.engine in
          Sim.Engine.spawn t.engine (fun () ->
              Sim.Net.transfer t.net ~bytes:(64 + (Hashtbl.length st.writes * 96));
              Sim.Ivar.fill ack ());
          ack)
    in
    List.iter Sim.Ivar.read acks;
    Sim.Net.transfer t.net ~bytes:64;
    `Committed
  end

(* --- ENGINE interface --------------------------------------------------------------- *)

type conn = { t : t; sql : Sim.Resource.t }

let connect t ~terminal_id = { t; sql = t.sql_cpus.(terminal_id mod Array.length t.sql_cpus) }

let execute conn input =
  let t = conn.t in
  (* Fetch the read version from the proxy (one round trip). *)
  Sim.Net.transfer t.net ~bytes:64;
  Sim.Resource.use t.commit_pipeline ~demand:1_000;
  let st =
    {
      read_version = t.version;
      sql = conn.sql;
      reads = Hashtbl.create 64;
      writes = Hashtbl.create 16;
      write_order = [];
    }
  in
  Sim.Net.transfer t.net ~bytes:64;
  match Tpcc_rows.run (ctx t st) ~districts:t.scale.districts_per_wh input with
  | `Done -> (
      match commit t st with
      | `Committed -> Engine_intf.Committed
      | `Conflict -> Engine_intf.Aborted "occ conflict")
  | `User_abort -> Engine_intf.User_abort
  | exception Tpcc_rows.Engine_abort reason -> Engine_intf.Aborted reason
