type partition = { mutable replicas : int list }

type t = { partitions : partition array; mutable version : int }

let create ~n_partitions ~n_nodes ~replication_factor =
  if replication_factor > n_nodes then
    invalid_arg "Directory.create: replication factor exceeds node count";
  let chain p =
    List.init replication_factor (fun i -> (p + i) mod n_nodes)
  in
  {
    partitions = Array.init n_partitions (fun p -> { replicas = chain p });
    version = 0;
  }

let n_partitions t = Array.length t.partitions
let version t = t.version

let partition_of_key t key = Hashtbl.hash key mod Array.length t.partitions

let master t p =
  match t.partitions.(p).replicas with
  | m :: _ -> m
  | [] -> invalid_arg "Directory.master: partition has no replicas"

let replicas t p = t.partitions.(p).replicas
let backups t p = match t.partitions.(p).replicas with [] -> [] | _ :: tail -> tail

let set_replicas t p chain =
  if chain = [] then invalid_arg "Directory.set_replicas: empty chain";
  t.partitions.(p).replicas <- chain;
  t.version <- t.version + 1

let masters_snapshot t = Array.init (Array.length t.partitions) (master t)
