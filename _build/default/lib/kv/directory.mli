(** Partition directory: maps keys to replica chains.

    The key space is hash-partitioned; each partition has a replica chain
    whose head is the master.  The management node mutates the directory on
    fail-over; clients keep a cached copy of the master assignment and
    refresh it (a simulated RPC) when they hit a dead node. *)

type t

val create : n_partitions:int -> n_nodes:int -> replication_factor:int -> t
val n_partitions : t -> int
val version : t -> int
val partition_of_key : t -> Op.key -> int
val master : t -> int -> int

val replicas : t -> int -> int list
(** Full replica chain of a partition, master first. *)

val backups : t -> int -> int list

val set_replicas : t -> int -> int list -> unit
(** Replace a partition's replica chain (management node only); bumps the
    directory version. *)

val masters_snapshot : t -> int array
(** Current master per partition — what a client caches. *)
