lib/kv/cluster.mli: Directory Op Storage_node Tell_sim
