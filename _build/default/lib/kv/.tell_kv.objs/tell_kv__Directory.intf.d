lib/kv/directory.mli: Op
