lib/kv/op.ml: List String
