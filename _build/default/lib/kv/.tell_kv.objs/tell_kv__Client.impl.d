lib/kv/client.ml: Array Cluster Directory Hashtbl List Op Option Printf Queue Storage_node String Tell_sim
