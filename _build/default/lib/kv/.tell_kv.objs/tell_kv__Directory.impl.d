lib/kv/directory.ml: Array Hashtbl List
