lib/kv/client.mli: Cluster Op Tell_sim
