lib/kv/storage_node.ml: Bytes Hashtbl Int64 List Op Option Printf String Tell_sim
