lib/kv/storage_node.mli: Op Tell_sim
