lib/kv/cluster.ml: Array Directory List Option Storage_node String Tell_sim
