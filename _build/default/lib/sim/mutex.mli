(** FIFO mutual exclusion between fibers. *)

type t

val create : Engine.t -> t
val lock : t -> unit
val unlock : t -> unit
val locked : t -> bool

val with_lock : t -> (unit -> 'a) -> 'a
(** Releases on exception. *)
