type profile = {
  name : string;
  base_latency_ns : int;
  per_byte_ns : float;
  jitter : float;
}

(* 40 Gbit QDR InfiniBand with RDMA verbs: ~2.5 us one-way including NIC
   processing, kernel bypass.  ~5 GB/s of usable bandwidth. *)
let infiniband = { name = "infiniband"; base_latency_ns = 2_500; per_byte_ns = 0.25; jitter = 0.05 }

(* 10 Gbit Ethernet through the OS stack: tens of microseconds one-way. *)
let ethernet_10g =
  { name = "ethernet-10g"; base_latency_ns = 32_000; per_byte_ns = 0.9; jitter = 0.10 }

let profile_of_string = function
  | "infiniband" | "ib" -> Some infiniband
  | "ethernet-10g" | "ethernet" | "eth" -> Some ethernet_10g
  | _ -> None

type t = {
  engine : Engine.t;
  rng : Rng.t;
  profile : profile;
  mutable bytes_sent : int;
}

let create engine rng profile = { engine; rng; profile; bytes_sent = 0 }
let profile t = t.profile

let delay t ~bytes =
  let p = t.profile in
  let nominal = float_of_int p.base_latency_ns +. (p.per_byte_ns *. float_of_int bytes) in
  let sampled = Rng.gaussian t.rng ~mean:nominal ~stddev:(nominal *. p.jitter) in
  int_of_float (Float.max sampled (0.5 *. nominal))

let transfer t ~bytes =
  t.bytes_sent <- t.bytes_sent + bytes;
  Engine.sleep t.engine (delay t ~bytes)

let bytes_sent t = t.bytes_sent
let reset_counters t = t.bytes_sent <- 0
