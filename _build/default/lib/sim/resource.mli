(** FCFS queueing resource with [k] parallel servers.

    Models a CPU (or any capacity-limited stage): a fiber calling {!use}
    waits until one of the [k] servers is free, occupies it for the given
    service demand of virtual time, then releases it.  Utilisation and
    queueing statistics are tracked so benchmarks can report saturation. *)

type t

val create : Engine.t -> servers:int -> string -> t
val label : t -> string
val servers : t -> int

val use : t -> demand:int -> unit
(** [use t ~demand] blocks the calling fiber for queueing delay plus
    [demand] ns of service. *)

val in_use : t -> int
val queue_length : t -> int

val busy_time : t -> int
(** Cumulative server-occupancy time (ns x servers), for utilisation:
    [busy_time /. (elapsed * servers)]. *)
