type 'a t = {
  engine : Engine.t;
  messages : 'a Queue.t;
  waiters : Engine.resume Queue.t;
}

let create engine = { engine; messages = Queue.create (); waiters = Queue.create () }

let send t v =
  Queue.push v t.messages;
  match Queue.take_opt t.waiters with
  | None -> ()
  | Some r -> Engine.schedule t.engine r.resume

let rec recv t =
  match Queue.take_opt t.messages with
  | Some v -> v
  | None ->
      Engine.suspend t.engine (fun r -> Queue.push r t.waiters);
      (* A message was enqueued for us, but another fiber may have raced us
         to it at the same virtual instant; loop until we obtain one. *)
      recv t

let try_recv t = Queue.take_opt t.messages
let length t = Queue.length t.messages
