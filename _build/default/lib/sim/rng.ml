type t = Random.State.t

let make seed = Random.State.make [| seed; 0x7e11; seed lxor 0x5eed |]

let split t =
  let seed = Random.State.bits t in
  Random.State.make [| seed; Random.State.bits t |]

let int t bound = Random.State.int t bound
let int_incl t lo hi =
  if hi < lo then invalid_arg "Rng.int_incl: empty range";
  lo + Random.State.int t (hi - lo + 1)

let float t bound = Random.State.float t bound
let bool t = Random.State.bool t

(* Box-Muller; one value per call keeps the stream simple and deterministic. *)
let gaussian t ~mean ~stddev =
  let u1 = 1.0 -. Random.State.float t 1.0 in
  let u2 = Random.State.float t 1.0 in
  mean +. (stddev *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let exponential t ~mean =
  let u = 1.0 -. Random.State.float t 1.0 in
  -.mean *. log u

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(Random.State.int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = Random.State.int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let alpha_string t ~min_len ~max_len =
  let len = int_incl t min_len max_len in
  String.init len (fun _ -> Char.chr (Char.code 'a' + Random.State.int t 26))

let numeric_string t ~len =
  String.init len (fun _ -> Char.chr (Char.code '0' + Random.State.int t 10))
