type t = {
  engine : Engine.t;
  mutable locked : bool;
  waiters : Engine.resume Queue.t;
}

let create engine = { engine; locked = false; waiters = Queue.create () }

let locked t = t.locked

let unlock t =
  if not t.locked then invalid_arg "Mutex.unlock: not locked";
  match Queue.take_opt t.waiters with
  | Some r -> Engine.schedule t.engine r.resume
  | None -> t.locked <- false

(* A resumed waiter owns the lock; if cancellation strikes at the
   suspension point the ownership must be passed on, not leaked. *)
let lock t =
  if not t.locked then t.locked <- true
  else
    try Engine.suspend t.engine (fun r -> Queue.push r t.waiters)
    with e ->
      unlock t;
      raise e

let with_lock t f =
  lock t;
  Fun.protect ~finally:(fun () -> unlock t) f
