(** Unbounded FIFO message queue between fibers. *)

type 'a t

val create : Engine.t -> 'a t
val send : 'a t -> 'a -> unit

val recv : 'a t -> 'a
(** Suspends the calling fiber until a message is available. *)

val try_recv : 'a t -> 'a option
val length : 'a t -> int
