type 'a state = Empty of Engine.resume list | Full of 'a | Failed of exn

type 'a t = { engine : Engine.t; mutable state : 'a state }

let create engine = { engine; state = Empty [] }

let is_filled t = match t.state with Empty _ -> false | Full _ | Failed _ -> true

let wake t waiters =
  (* Resume at the current virtual instant, preserving arrival order. *)
  List.iter (fun (r : Engine.resume) -> Engine.schedule t.engine r.resume) (List.rev waiters)

let fill t v =
  match t.state with
  | Full _ | Failed _ -> invalid_arg "Ivar.fill: already filled"
  | Empty waiters ->
      t.state <- Full v;
      wake t waiters

let fill_exn t e =
  match t.state with
  | Full _ | Failed _ -> invalid_arg "Ivar.fill_exn: already filled"
  | Empty waiters ->
      t.state <- Failed e;
      wake t waiters

let read t =
  match t.state with
  | Full v -> v
  | Failed e -> raise e
  | Empty _ ->
      Engine.suspend t.engine (fun r ->
          match t.state with
          | Empty waiters -> t.state <- Empty (r :: waiters)
          | Full _ | Failed _ -> r.resume ());
      (* Re-examine: the ivar is necessarily filled once we are resumed. *)
      (match t.state with
      | Full v -> v
      | Failed e -> raise e
      | Empty _ -> assert false)

let peek t = match t.state with Full v -> Some v | Empty _ | Failed _ -> None
