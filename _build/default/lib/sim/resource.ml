type t = {
  engine : Engine.t;
  label : string;
  servers : int;
  mutable busy : int;
  waiting : Engine.resume Queue.t;
  mutable busy_time : int;
}

let create engine ~servers label =
  if servers <= 0 then invalid_arg "Resource.create: servers must be positive";
  { engine; label; servers; busy = 0; waiting = Queue.create (); busy_time = 0 }

let label t = t.label
let servers t = t.servers
let in_use t = t.busy
let queue_length t = Queue.length t.waiting

let release t =
  match Queue.take_opt t.waiting with
  | Some r -> Engine.schedule t.engine r.resume
  | None -> t.busy <- t.busy - 1

(* A resumed waiter has had a server slot transferred to it by the
   releaser, so if cancellation strikes at the suspension point the slot
   must be handed on; likewise during service.  Without this, killing a
   node's fibers would silently shrink resources shared with survivors. *)
let acquire t =
  if t.busy < t.servers then t.busy <- t.busy + 1
  else
    try Engine.suspend t.engine (fun r -> Queue.push r t.waiting)
    with e ->
      release t;
      raise e

let use t ~demand =
  assert (demand >= 0);
  acquire t;
  (try Engine.sleep t.engine demand
   with e ->
     release t;
     raise e);
  t.busy_time <- t.busy_time + demand;
  release t

let busy_time t = t.busy_time
