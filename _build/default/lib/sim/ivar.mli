(** Write-once synchronisation variable for fibers ("incremental variable").

    The canonical building block for simulated RPC: the caller creates an
    ivar, sends a request event, and {!read}s the ivar; the responder
    {!fill}s it when the reply arrives. *)

type 'a t

val create : Engine.t -> 'a t
val fill : 'a t -> 'a -> unit

val fill_exn : 'a t -> exn -> unit
(** Complete the ivar with an exception: readers re-raise it. *)

val is_filled : 'a t -> bool

val read : 'a t -> 'a
(** Suspend the calling fiber until the ivar is filled; returns immediately
    if it already is. *)

val peek : 'a t -> 'a option
