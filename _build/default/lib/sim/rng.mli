(** Deterministic random-number generation for simulations.

    Thin wrapper over [Random.State] with the distributions simulations
    need.  Every component derives its own stream with {!split} so that
    adding a component does not perturb the draws of the others. *)

type t

val make : int -> t
val split : t -> t

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). *)

val int_incl : t -> int -> int -> int
(** [int_incl t lo hi] is uniform in [lo, hi], inclusive. *)

val float : t -> float -> float
val bool : t -> bool

val gaussian : t -> mean:float -> stddev:float -> float
val exponential : t -> mean:float -> float

val pick : t -> 'a array -> 'a
val shuffle : t -> 'a array -> unit

val alpha_string : t -> min_len:int -> max_len:int -> string
(** Random string of letters, for synthetic record payloads. *)

val numeric_string : t -> len:int -> string
