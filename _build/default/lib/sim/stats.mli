(** Measurement utilities: counters, running moments, latency histograms. *)

module Counter : sig
  type t

  val create : string -> t
  val incr : ?by:int -> t -> unit
  val value : t -> int
  val reset : t -> unit
  val name : t -> string
end

module Moments : sig
  (** Streaming mean / standard deviation (Welford). *)

  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val stddev : t -> float
  val min : t -> float
  val max : t -> float
  val reset : t -> unit
end

module Histogram : sig
  (** Log-linear histogram (HDR-style): values are bucketed with bounded
      relative error (~3 %), supporting percentile queries over latency
      distributions without storing samples. *)

  type t

  val create : unit -> t
  val add : t -> int -> unit
  val count : t -> int

  val percentile : t -> float -> int
  (** [percentile t 99.0] is an upper bound of the 99th percentile value;
      0 when empty. *)

  val mean : t -> float
  val stddev : t -> float
  val merge_into : src:t -> dst:t -> unit
  val reset : t -> unit
end
