lib/sim/engine.ml: Effect Fmt Heap Printexc
