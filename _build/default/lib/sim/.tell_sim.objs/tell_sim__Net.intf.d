lib/sim/net.mli: Engine Rng
