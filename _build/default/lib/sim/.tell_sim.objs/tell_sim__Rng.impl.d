lib/sim/rng.ml: Array Char Float Random String
