lib/sim/rng.mli:
