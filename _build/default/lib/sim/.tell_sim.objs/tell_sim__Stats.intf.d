lib/sim/stats.mli:
