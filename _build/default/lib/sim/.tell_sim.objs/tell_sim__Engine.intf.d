lib/sim/engine.mli:
