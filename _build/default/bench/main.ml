(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§6) — run with no arguments for the full sweep, or pass
   experiment names (fig5 fig8 table3 ...) and/or "quick".

   A bechamel suite of micro-benchmarks on the core data structures
   (snapshot descriptors, record codec, key codec, histogram) runs first;
   the macro experiments then drive the full simulated cluster. *)

let microbenchmarks () =
  let open Bechamel in
  let open Tell_core in
  print_endline "=== Micro-benchmarks (bechamel) ===";
  let snapshot =
    let base = Version_set.of_base 100_000 in
    let vs = List.fold_left Version_set.add base [ 100_002; 100_005; 100_009 ] in
    Test.make ~name:"version_set.mem"
      (Staged.stage (fun () -> ignore (Version_set.mem vs 100_005)))
  in
  let vs_add =
    let vs = Version_set.of_base 5_000 in
    Test.make ~name:"version_set.add"
      (Staged.stage (fun () -> ignore (Version_set.add vs 5_002)))
  in
  let record =
    let r =
      List.fold_left
        (fun acc v ->
          Record.add_version acc ~version:v
            (Record.Tuple [| Value.Int v; Value.Str "payload"; Value.Float 3.14 |]))
        Record.empty [ 1; 5; 9; 12 ]
    in
    let encoded = Record.encode r in
    Test.make ~name:"record.decode+gc"
      (Staged.stage (fun () ->
           let r = Record.decode encoded in
           ignore (Record.gc r ~lav:9)))
  in
  let key_codec =
    Test.make ~name:"codec.encode_key"
      (Staged.stage (fun () ->
           ignore (Codec.encode_key [ Value.Int 42; Value.Str "WAREHOUSE"; Value.Int 7 ])))
  in
  let histogram =
    let h = Tell_sim.Stats.Histogram.create () in
    Test.make ~name:"histogram.add"
      (Staged.stage (fun () -> Tell_sim.Stats.Histogram.add h 123_456))
  in
  let tests =
    Test.make_grouped ~name:"core" [ snapshot; vs_add; record; key_codec; histogram ]
  in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.3) ~kde:None () in
  let raw = Benchmark.all cfg instances tests in
  List.iter
    (fun instance ->
      let result = Analyze.all ols instance raw in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ estimate ] -> Printf.printf "  %-36s %10.1f ns/op\n%!" name estimate
          | Some _ | None -> Printf.printf "  %-36s (no estimate)\n%!" name)
        result)
    instances

let () =
  let args = Array.to_list Sys.argv in
  let quick = List.mem "quick" args in
  let intensity = if quick then Tell_harness.Experiments.Quick else Tell_harness.Experiments.Full in
  let chosen = List.filter (fun a -> List.mem a Tell_harness.Experiments.names) args in
  microbenchmarks ();
  (match chosen with
  | [] -> Tell_harness.Experiments.all intensity
  | names -> List.iter (fun name -> Tell_harness.Experiments.by_name name intensity) names);
  print_endline "\nbench: done"
