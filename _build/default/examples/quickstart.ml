(* Quickstart: bring up a Tell deployment inside the simulator, create a
   schema over SQL, run transactions, and watch snapshot isolation and
   conflict detection at work.

     dune exec examples/quickstart.exe *)

module Sim = Tell_sim
module Kv = Tell_kv
open Tell_core

let print_rows label result =
  Printf.printf "%s\n" label;
  match result with
  | Sql_plan.Rows { columns; rows } ->
      Printf.printf "  %s\n" (String.concat " | " columns);
      List.iter
        (fun row ->
          Printf.printf "  %s\n"
            (String.concat " | " (Array.to_list (Array.map Value.to_string row))))
        rows
  | Sql_plan.Affected n -> Printf.printf "  %d row(s) affected\n" n
  | Sql_plan.Created -> Printf.printf "  ok\n"

let () =
  (* One simulation engine; everything below runs in virtual time. *)
  let engine = Sim.Engine.create () in

  (* A storage cluster of 3 nodes with 2-fold replication, one commit
     manager, and two processing nodes sharing all data. *)
  let kv_config =
    { Kv.Cluster.default_config with n_storage_nodes = 3; replication_factor = 2 }
  in
  let db = Database.create engine ~kv_config ~n_commit_managers:1 () in
  let pn1 = Database.add_pn db () in
  let pn2 = Database.add_pn db () in

  Sim.Engine.spawn engine (fun () ->
      (* DDL and data manipulation through the SQL layer. *)
      let exec pn sql = Database.exec pn sql in
      ignore
        (exec pn1
           "CREATE TABLE accounts (id INT, owner TEXT, balance INT, PRIMARY KEY (id))");
      ignore (exec pn1 "CREATE INDEX idx_owner ON accounts (owner)");
      ignore
        (exec pn1
           "INSERT INTO accounts VALUES (1, 'alice', 120), (2, 'bob', 80), (3, 'carol', 250)");

      (* Any processing node sees the shared data instantly. *)
      print_rows "All accounts (read from the second PN):"
        (exec pn2 "SELECT id, owner, balance FROM accounts ORDER BY id");

      (* A multi-statement transaction: transfer 50 from alice to bob. *)
      Database.with_txn pn1 (fun txn ->
          ignore (Database.exec_in txn "UPDATE accounts SET balance = balance - 50 WHERE id = 1");
          ignore (Database.exec_in txn "UPDATE accounts SET balance = balance + 50 WHERE id = 2"));
      print_rows "After the transfer:"
        (exec pn2 "SELECT owner, balance FROM accounts ORDER BY id");

      (* Snapshot isolation: a reader opened before a concurrent update
         keeps seeing its snapshot. *)
      let reader = Txn.begin_txn pn2 in
      ignore (exec pn1 "UPDATE accounts SET balance = 0 WHERE owner = 'carol'");
      print_rows "Reader's snapshot (opened before carol was zeroed):"
        (Database.exec_in reader "SELECT owner, balance FROM accounts WHERE id = 3");
      Txn.commit reader;
      print_rows "A fresh transaction sees the update:"
        (exec pn2 "SELECT owner, balance FROM accounts WHERE id = 3");

      (* Write-write conflicts: the second writer loses and is rolled
         back, detected by a single LL/SC store-conditional. *)
      let t1 = Txn.begin_txn pn1 in
      let t2 = Txn.begin_txn pn2 in
      ignore (Database.exec_in t1 "UPDATE accounts SET balance = 111 WHERE id = 1");
      ignore (Database.exec_in t2 "UPDATE accounts SET balance = 222 WHERE id = 1");
      Txn.commit t1;
      (match Txn.commit t2 with
      | () -> Printf.printf "unexpected: second writer committed\n"
      | exception Txn.Conflict reason -> Printf.printf "second writer aborted: %s\n" reason);
      print_rows "Surviving value:" (exec pn2 "SELECT balance FROM accounts WHERE id = 1");

      (* Aggregates over the shared data. *)
      print_rows "Total balance:" (exec pn1 "SELECT COUNT(*), SUM(balance) FROM accounts"));

  Sim.Engine.run engine ~until:60_000_000_000 ();
  Printf.printf "quickstart: done (virtual time %.3f ms)\n"
    (float_of_int (Sim.Engine.now engine) /. 1e6)
