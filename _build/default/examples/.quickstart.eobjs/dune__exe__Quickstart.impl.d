examples/quickstart.ml: Array Database List Printf Sql_plan String Tell_core Tell_kv Tell_sim Txn Value
