examples/elastic_scaling.ml: Database List Printf Tell_core Tell_kv Tell_sim Tell_tpcc
