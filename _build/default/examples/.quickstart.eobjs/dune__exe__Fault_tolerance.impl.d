examples/fault_tolerance.ml: Database List Pn Printf Tell_core Tell_kv Tell_sim Tell_tpcc
