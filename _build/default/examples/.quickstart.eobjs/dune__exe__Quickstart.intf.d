examples/quickstart.mli:
