examples/mixed_workload.ml: Database List Printf Pushdown Query Sql_plan Tell_core Tell_kv Tell_sim Tell_tpcc Value
