(* Elasticity (§2.1, §3): processing nodes are added on demand — without
   any data movement or repartitioning — and throughput follows.  This is
   the operational-flexibility argument against partitioned designs, where
   growing the cluster means splitting and migrating partitions.

     dune exec examples/elastic_scaling.exe *)

module Sim = Tell_sim
module Kv = Tell_kv
open Tell_core
module Tpcc = Tell_tpcc

let scale = Tpcc.Spec.sim_scale ~warehouses:8
let threads_per_pn = 8
let phase_ns = 250_000_000

let () =
  let engine = Sim.Engine.create () in
  let db = Database.create engine () in
  let _ = Tpcc.Loader.load (Database.cluster db) ~scale ~seed:1 in
  let committed = ref 0 in
  let stop = ref false in
  let rng = Sim.Rng.make 5 in
  let next_terminal = ref 0 in

  (* Terminals bound to one PN; more are spawned whenever a PN joins. *)
  let spawn_terminals tell =
    for _ = 1 to threads_per_pn do
      let terminal_id = !next_terminal in
      incr next_terminal;
      let term_rng = Sim.Rng.split rng in
      Sim.Engine.spawn engine (fun () ->
          let conn = Tpcc.Tell_engine.connect tell ~terminal_id in
          let home_w = (terminal_id mod scale.warehouses) + 1 in
          while not !stop do
            let input = Tpcc.Spec.gen_txn term_rng ~scale ~mix:Tpcc.Spec.standard_mix ~home_w in
            match Tpcc.Tell_engine.execute conn input with
            | Tpcc.Engine_intf.Committed -> incr committed
            | Tpcc.Engine_intf.Aborted _ | Tpcc.Engine_intf.User_abort -> ()
          done)
    done
  in

  Sim.Engine.spawn engine (fun () ->
      let throughput_of phase_start =
        60e9 *. float_of_int (!committed - phase_start) /. float_of_int phase_ns
      in
      (* Phase 1: two processing nodes. *)
      let pns = ref [ Database.add_pn db (); Database.add_pn db () ] in
      let tell = Tpcc.Tell_engine.create db ~pns:!pns ~scale in
      spawn_terminals tell;
      spawn_terminals tell;
      Sim.Engine.sleep engine phase_ns;
      let before = !committed in
      Sim.Engine.sleep engine phase_ns;
      Printf.printf "phase 1: 2 PNs  -> %7.0f committed txns/min\n%!" (throughput_of before);

      (* Phase 2: double the processing layer, live.  No data moves; the
         new PNs immediately operate on the shared store. *)
      let t_grow = Sim.Engine.now engine in
      pns := !pns @ [ Database.add_pn db (); Database.add_pn db () ];
      let tell' = Tpcc.Tell_engine.create db ~pns:(List.filteri (fun i _ -> i >= 2) !pns) ~scale in
      spawn_terminals tell';
      spawn_terminals tell';
      Printf.printf "added 2 PNs at t=%.0f ms (zero data movement)\n%!"
        (float_of_int t_grow /. 1e6);
      Sim.Engine.sleep engine phase_ns;
      let before = !committed in
      Sim.Engine.sleep engine phase_ns;
      Printf.printf "phase 2: 4 PNs  -> %7.0f committed txns/min\n%!" (throughput_of before);
      stop := true);

  Sim.Engine.run engine ~until:4_000_000_000 ();
  Printf.printf "elastic scaling: done\n"
