(* Mixed workloads on shared data (§2.1, §5.2): OLTP terminals hammer
   TPC-C on two processing nodes while a third processing node runs
   analytical queries over the very same live data — no ETL, no replica
   lag, no partitioning decisions.

     dune exec examples/mixed_workload.exe *)

module Sim = Tell_sim
module Kv = Tell_kv
open Tell_core
module Tpcc = Tell_tpcc

let scale = Tpcc.Spec.sim_scale ~warehouses:4

let () =
  let engine = Sim.Engine.create () in
  let kv_config = { Kv.Cluster.default_config with n_storage_nodes = 3 } in
  let db = Database.create engine ~kv_config () in
  let oltp_pns = [ Database.add_pn db (); Database.add_pn db () ] in
  let olap_pn = Database.add_pn db () in
  let _ = Tpcc.Loader.load (Database.cluster db) ~scale ~seed:1 in
  let tell = Tpcc.Tell_engine.create db ~pns:oltp_pns ~scale in

  (* OLTP side: 16 terminals in a closed loop. *)
  let committed = ref 0 in
  let stop = ref false in
  let rng = Sim.Rng.make 9 in
  for terminal_id = 0 to 15 do
    let term_rng = Sim.Rng.split rng in
    Sim.Engine.spawn engine (fun () ->
        let conn = Tpcc.Tell_engine.connect tell ~terminal_id in
        let home_w = (terminal_id mod scale.warehouses) + 1 in
        while not !stop do
          let input = Tpcc.Spec.gen_txn term_rng ~scale ~mix:Tpcc.Spec.standard_mix ~home_w in
          match Tpcc.Tell_engine.execute conn input with
          | Tpcc.Engine_intf.Committed -> incr committed
          | Tpcc.Engine_intf.Aborted _ | Tpcc.Engine_intf.User_abort -> ()
        done)
  done;

  (* OLAP side: periodic analytics on the same data, on its own PN, using
     plain SQL.  Every query runs inside one consistent snapshot. *)
  Sim.Engine.spawn engine (fun () ->
      for round = 1 to 3 do
        Sim.Engine.sleep engine 100_000_000;
        let t0 = !committed in
        let result =
          Database.exec olap_pn
            "SELECT ol_supply_w_id, COUNT(*), SUM(ol_amount) FROM orderline \
             GROUP BY ol_supply_w_id ORDER BY ol_supply_w_id"
        in
        let oltp_during = !committed - t0 in
        Printf.printf "analytics round %d (t=%.0f ms) — OLTP committed %d txns during the scan\n"
          round
          (float_of_int (Sim.Engine.now engine) /. 1e6)
          oltp_during;
        (match result with
        | Sql_plan.Rows { rows; _ } ->
            List.iter
              (fun row ->
                match row with
                | [| Value.Int w; Value.Int n; total |] ->
                    Printf.printf "  warehouse %d: %6d order lines, revenue %12s\n" w n
                      (Value.to_string total)
                | _ -> ())
              rows
        | _ -> ())
      done;
      (* Final round with §5.2 operator push-down: the selection and
         projection execute inside the storage nodes, so only the
         aggregation inputs travel over the network. *)
      let net = Tell_kv.Cluster.net (Database.cluster db) in
      Tell_sim.Net.reset_counters net;
      let open_lines =
        Database.with_txn olap_pn (fun txn ->
            let undelivered =
              Query.Binop (Query.Eq, Query.Col 6, Query.Lit (Value.Int 0))
            in
            List.length
              (Query.to_list
                 (Pushdown.scan txn ~table:"orderline" ~predicate:undelivered
                    ~projection:[ 8 ] ())))
      in
      Printf.printf
        "push-down analytics: %d undelivered order lines counted with %d KB of network traffic\n"
        open_lines
        (Tell_sim.Net.bytes_sent net / 1024);
      stop := true);

  Sim.Engine.run engine ~until:2_000_000_000 ();
  Printf.printf "mixed workload: %d OLTP transactions committed alongside 3 analytical scans\n"
    !committed
