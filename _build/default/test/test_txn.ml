(* Transaction-level semantics of distributed SI: the anomalies snapshot
   isolation must prevent (lost update, dirty read, non-repeatable read,
   phantom-ish re-reads), the one it famously allows (write skew — a
   positive test documenting §4.1's limitation), and the bookkeeping
   around read-your-writes, deletes, and inserts. *)

module Sim = Tell_sim
module Kv = Tell_kv
open Tell_core

let run_sim f =
  let engine = Sim.Engine.create () in
  let result = ref None in
  Sim.Engine.spawn engine (fun () -> result := Some (f engine));
  Sim.Engine.run engine ~until:60_000_000_000 ();
  match !result with Some r -> r | None -> Alcotest.fail "did not finish"

let make_pn engine =
  let kv_config =
    { Kv.Cluster.default_config with n_storage_nodes = 3; replication_factor = 1 }
  in
  let db = Database.create engine ~kv_config () in
  (db, Database.add_pn db ())

let setup pn rows =
  ignore (Database.exec pn "CREATE TABLE t (id INT, v INT, PRIMARY KEY (id))");
  List.iter
    (fun (id, v) -> ignore (Database.exec pn (Printf.sprintf "INSERT INTO t VALUES (%d, %d)" id v)))
    rows

let rid_of pn id =
  Database.with_txn pn (fun txn ->
      match Txn.index_lookup txn ~index:"pk_t" ~key:(Codec.encode_key [ Value.Int id ]) with
      | [ rid ] -> rid
      | _ -> Alcotest.fail "pk lookup")

let value_of pn id =
  match Database.exec pn (Printf.sprintf "SELECT v FROM t WHERE id = %d" id) with
  | Sql_plan.Rows { rows = [ [| Value.Int v |] ]; _ } -> v
  | _ -> Alcotest.fail "read failed"

let test_lost_update_prevented () =
  run_sim (fun engine ->
      let _, pn = make_pn engine in
      setup pn [ (1, 100) ];
      let rid = rid_of pn 1 in
      (* Classic increment race: both read 100, both write 101; SI must
         abort one so the final value reflects exactly one increment. *)
      let attempt () =
        let txn = Txn.begin_txn pn in
        match Txn.read txn ~table:"t" ~rid with
        | Some row ->
            Txn.update txn ~table:"t" ~rid [| row.(0); Value.Int (Value.as_int row.(1) + 1) |];
            (txn, true)
        | None -> (txn, false)
      in
      let t1, _ = attempt () in
      let t2, _ = attempt () in
      let commits = ref 0 in
      (try Txn.commit t1; incr commits with Txn.Conflict _ -> ());
      (try Txn.commit t2; incr commits with Txn.Conflict _ -> ());
      Alcotest.(check int) "exactly one increment survived" 1 !commits;
      Alcotest.(check int) "value" 101 (value_of pn 1))

let test_no_dirty_reads () =
  run_sim (fun engine ->
      let _, pn = make_pn engine in
      setup pn [ (1, 10) ];
      let rid = rid_of pn 1 in
      let writer = Txn.begin_txn pn in
      Txn.update writer ~table:"t" ~rid [| Value.Int 1; Value.Int 999 |];
      (* The write is buffered on the PN: nobody else may see it. *)
      Alcotest.(check int) "buffered write invisible" 10 (value_of pn 1);
      Txn.abort writer;
      Alcotest.(check int) "after abort still old" 10 (value_of pn 1))

let test_repeatable_reads_under_churn () =
  run_sim (fun engine ->
      let _, pn = make_pn engine in
      setup pn [ (1, 1); (2, 2); (3, 3) ];
      let reader = Txn.begin_txn pn in
      let sum () =
        match Database.exec_in reader "SELECT SUM(v) FROM t" with
        | Sql_plan.Rows { rows = [ [| v |] ]; _ } -> Value.as_int v
        | _ -> Alcotest.fail "sum"
      in
      let s0 = sum () in
      (* Concurrent committed churn: updates, an insert, and a delete. *)
      ignore (Database.exec pn "UPDATE t SET v = 100 WHERE id = 1");
      ignore (Database.exec pn "INSERT INTO t VALUES (4, 400)");
      ignore (Database.exec pn "DELETE FROM t WHERE id = 3");
      Alcotest.(check int) "same snapshot, same sum" s0 (sum ());
      Txn.commit reader;
      Alcotest.(check int) "fresh txn sees the churn" (100 + 2 + 400)
        (Database.with_txn pn (fun txn ->
             match Database.exec_in txn "SELECT SUM(v) FROM t" with
             | Sql_plan.Rows { rows = [ [| v |] ]; _ } -> Value.as_int v
             | _ -> Alcotest.fail "sum")))

(* SI permits write skew (§4.1 notes serializable SI as future work):
   two transactions read both rows, each updates a different one, both
   commit.  This test documents the behaviour. *)
let test_write_skew_allowed () =
  run_sim (fun engine ->
      let _, pn = make_pn engine in
      setup pn [ (1, 50); (2, 50) ];
      let rid1 = rid_of pn 1 and rid2 = rid_of pn 2 in
      let t1 = Txn.begin_txn pn in
      let t2 = Txn.begin_txn pn in
      let read_both txn = (Txn.read txn ~table:"t" ~rid:rid1, Txn.read txn ~table:"t" ~rid:rid2) in
      ignore (read_both t1);
      ignore (read_both t2);
      Txn.update t1 ~table:"t" ~rid:rid1 [| Value.Int 1; Value.Int 0 |];
      Txn.update t2 ~table:"t" ~rid:rid2 [| Value.Int 2; Value.Int 0 |];
      Txn.commit t1;
      (match Txn.commit t2 with
      | () -> ()
      | exception Txn.Conflict _ -> Alcotest.fail "disjoint write sets must not conflict under SI");
      Alcotest.(check int) "both zeroed (write skew)" 0 (value_of pn 1 + value_of pn 2))

(* The same schedule as the write-skew test, under the serializable
   extension: the second committer must now abort. *)
let test_write_skew_prevented_serializable () =
  run_sim (fun engine ->
      let _, pn = make_pn engine in
      setup pn [ (1, 50); (2, 50) ];
      let rid1 = rid_of pn 1 and rid2 = rid_of pn 2 in
      let t1 = Txn.begin_txn ~isolation:Txn.Serializable pn in
      let t2 = Txn.begin_txn ~isolation:Txn.Serializable pn in
      let read_both txn = (Txn.read txn ~table:"t" ~rid:rid1, Txn.read txn ~table:"t" ~rid:rid2) in
      ignore (read_both t1);
      ignore (read_both t2);
      Txn.update t1 ~table:"t" ~rid:rid1 [| Value.Int 1; Value.Int 0 |];
      Txn.update t2 ~table:"t" ~rid:rid2 [| Value.Int 2; Value.Int 0 |];
      let commits = ref 0 in
      (try Txn.commit t1; incr commits with Txn.Conflict _ -> ());
      (try Txn.commit t2; incr commits with Txn.Conflict _ -> ());
      Alcotest.(check int) "exactly one commits (write skew prevented)" 1 !commits;
      Alcotest.(check int) "invariant x + y >= 50 preserved" 50 (value_of pn 1 + value_of pn 2);
      (* Non-conflicting serializable transactions still commit freely. *)
      let t3 = Txn.begin_txn ~isolation:Txn.Serializable pn in
      (match Txn.read t3 ~table:"t" ~rid:rid1 with
      | Some row -> Txn.update t3 ~table:"t" ~rid:rid1 [| row.(0); Value.Int 7 |]
      | None -> Alcotest.fail "read failed");
      Txn.commit t3;
      Alcotest.(check int) "serializable commit applied" 7 (value_of pn 1))

let test_serializable_validation_rolls_back () =
  run_sim (fun engine ->
      let _, pn = make_pn engine in
      setup pn [ (1, 10); (2, 20) ];
      let rid1 = rid_of pn 1 and rid2 = rid_of pn 2 in
      (* t reads row 2, writes row 1; a concurrent committed update to
         row 2 must abort t and leave no trace of its write to row 1. *)
      let t = Txn.begin_txn ~isolation:Txn.Serializable pn in
      ignore (Txn.read t ~table:"t" ~rid:rid2);
      Txn.update t ~table:"t" ~rid:rid1 [| Value.Int 1; Value.Int 111 |];
      ignore (Database.exec pn "UPDATE t SET v = 999 WHERE id = 2");
      (match Txn.commit t with
      | () -> Alcotest.fail "stale read must fail serializable validation"
      | exception Txn.Conflict _ -> ());
      Alcotest.(check int) "write rolled back" 10 (value_of pn 1))

let test_read_your_writes () =
  run_sim (fun engine ->
      let _, pn = make_pn engine in
      setup pn [ (1, 10) ];
      Database.with_txn pn (fun txn ->
          ignore (Database.exec_in txn "UPDATE t SET v = 20 WHERE id = 1");
          (match Database.exec_in txn "SELECT v FROM t WHERE id = 1" with
          | Sql_plan.Rows { rows = [ [| Value.Int 20 |] ]; _ } -> ()
          | _ -> Alcotest.fail "own update not visible");
          ignore (Database.exec_in txn "INSERT INTO t VALUES (9, 90)");
          (match Database.exec_in txn "SELECT COUNT(*) FROM t" with
          | Sql_plan.Rows { rows = [ [| Value.Int 2 |] ]; _ } -> ()
          | _ -> Alcotest.fail "own insert not visible in scan");
          ignore (Database.exec_in txn "DELETE FROM t WHERE id = 1");
          match Database.exec_in txn "SELECT COUNT(*) FROM t" with
          | Sql_plan.Rows { rows = [ [| Value.Int 1 |] ]; _ } -> ()
          | _ -> Alcotest.fail "own delete not visible"))

let test_delete_insert_interplay () =
  run_sim (fun engine ->
      let _, pn = make_pn engine in
      setup pn [ (1, 10) ];
      ignore (Database.exec pn "DELETE FROM t WHERE id = 1");
      Alcotest.(check int) "gone" 0
        (match Database.exec pn "SELECT COUNT(*) FROM t" with
        | Sql_plan.Rows { rows = [ [| Value.Int n |] ]; _ } -> n
        | _ -> -1);
      (* Re-insert under the same primary key (new rid underneath). *)
      ignore (Database.exec pn "INSERT INTO t VALUES (1, 11)");
      Alcotest.(check int) "re-inserted" 11 (value_of pn 1))

let test_concurrent_delete_update_conflict () =
  run_sim (fun engine ->
      let _, pn = make_pn engine in
      setup pn [ (1, 10) ];
      let rid = rid_of pn 1 in
      let deleter = Txn.begin_txn pn in
      let updater = Txn.begin_txn pn in
      Txn.delete deleter ~table:"t" ~rid;
      Txn.update updater ~table:"t" ~rid [| Value.Int 1; Value.Int 42 |];
      Txn.commit deleter;
      (match Txn.commit updater with
      | () -> Alcotest.fail "update over a concurrent delete must conflict"
      | exception Txn.Conflict _ -> ());
      Alcotest.(check int) "row deleted" 0
        (match Database.exec pn "SELECT COUNT(*) FROM t" with
        | Sql_plan.Rows { rows = [ [| Value.Int n |] ]; _ } -> n
        | _ -> -1))

let test_finished_txn_rejects_ops () =
  run_sim (fun engine ->
      let _, pn = make_pn engine in
      setup pn [ (1, 10) ];
      let rid = rid_of pn 1 in
      let txn = Txn.begin_txn pn in
      Txn.commit txn;
      (match Txn.read txn ~table:"t" ~rid with
      | _ -> Alcotest.fail "read after commit must raise"
      | exception Txn.Finished -> ());
      match Txn.commit txn with
      | _ -> Alcotest.fail "double commit must raise"
      | exception Txn.Finished -> ())

let () =
  Alcotest.run "txn"
    [
      ( "isolation",
        [
          Alcotest.test_case "lost update prevented" `Quick test_lost_update_prevented;
          Alcotest.test_case "no dirty reads" `Quick test_no_dirty_reads;
          Alcotest.test_case "repeatable reads under churn" `Quick test_repeatable_reads_under_churn;
          Alcotest.test_case "write skew allowed (SI)" `Quick test_write_skew_allowed;
          Alcotest.test_case "write skew prevented (serializable)" `Quick
            test_write_skew_prevented_serializable;
          Alcotest.test_case "serializable validation rollback" `Quick
            test_serializable_validation_rolls_back;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "read your writes" `Quick test_read_your_writes;
          Alcotest.test_case "delete/insert interplay" `Quick test_delete_insert_interplay;
          Alcotest.test_case "delete vs update conflict" `Quick test_concurrent_delete_update_conflict;
          Alcotest.test_case "finished txn rejects ops" `Quick test_finished_txn_rejects_ops;
        ] );
    ]
