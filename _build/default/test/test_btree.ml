(* The latch-free B+tree: model-based random testing against a reference
   map, bulk construction, concurrent insertions from several processing
   nodes, and structural invariants (§5.3). *)

module Sim = Tell_sim
module Kv = Tell_kv
open Tell_core

module Entry_set = Set.Make (struct
  type t = string * int

  let compare = compare
end)

let with_cluster f =
  let engine = Sim.Engine.create () in
  let cluster =
    Kv.Cluster.create engine { Kv.Cluster.default_config with n_storage_nodes = 3 }
  in
  let result = ref None in
  Sim.Engine.spawn engine (fun () -> result := Some (f engine cluster));
  Sim.Engine.run engine ~until:120_000_000_000 ();
  match !result with Some r -> r | None -> Alcotest.fail "simulation did not finish"

let client cluster = Kv.Client.create cluster ~group:(Sim.Engine.root_group (Kv.Cluster.engine cluster))

(* Random operation sequence checked against a set model. *)
let test_model_random () =
  with_cluster (fun _engine cluster ->
      let kv = client cluster in
      Btree.create kv ~name:"model";
      let tree = Btree.attach kv ~name:"model" in
      let rng = Random.State.make [| 1234 |] in
      let model = ref Entry_set.empty in
      for _step = 1 to 1_500 do
        let key = Printf.sprintf "k%03d" (Random.State.int rng 200) in
        let rid = Random.State.int rng 5 in
        match Random.State.int rng 10 with
        | 0 | 1 | 2 | 3 | 4 | 5 ->
            Btree.insert tree ~key ~rid;
            model := Entry_set.add (key, rid) !model
        | 6 | 7 ->
            Btree.remove tree ~key ~rid;
            model := Entry_set.remove (key, rid) !model
        | 8 ->
            let expected =
              Entry_set.elements (Entry_set.filter (fun (k, _) -> k = key) !model)
              |> List.map snd
            in
            Alcotest.(check (list int)) ("lookup " ^ key) expected (Btree.lookup tree ~key)
        | _ ->
            let lo = Printf.sprintf "k%03d" (Random.State.int rng 200) in
            let hi = Printf.sprintf "k%03d" (Random.State.int rng 200) in
            let lo, hi = if lo <= hi then (lo, hi) else (hi, lo) in
            let expected =
              Entry_set.elements (Entry_set.filter (fun (k, _) -> lo <= k && k < hi) !model)
            in
            Alcotest.(check (list (pair string int)))
              (Printf.sprintf "range [%s,%s)" lo hi)
              expected (Btree.range tree ~lo ~hi)
      done;
      Btree.check_invariants tree;
      (* Final full-range sweep. *)
      let all = Btree.range tree ~lo:"" ~hi:"\xff" in
      Alcotest.(check (list (pair string int))) "final contents" (Entry_set.elements !model) all)

(* Enough sequential insertions to force leaf, inner, and root splits. *)
let test_many_inserts_split () =
  with_cluster (fun _engine cluster ->
      let kv = client cluster in
      Btree.create kv ~name:"big";
      let tree = Btree.attach kv ~name:"big" in
      let n = 5_000 in
      for i = 1 to n do
        Btree.insert tree ~key:(Printf.sprintf "key%06d" i) ~rid:i
      done;
      Btree.check_invariants tree;
      Alcotest.(check int) "all entries present" n
        (List.length (Btree.range tree ~lo:"" ~hi:"\xff"));
      (* Point lookups across the range. *)
      for i = 1 to n do
        if i mod 137 = 0 then
          Alcotest.(check (list int))
            (Printf.sprintf "lookup %d" i)
            [ i ]
            (Btree.lookup tree ~key:(Printf.sprintf "key%06d" i))
      done)

(* Concurrent inserters on separate clients (PNs): all entries must end up
   present, without latches, through LL/SC retries alone. *)
let test_concurrent_inserts () =
  with_cluster (fun engine cluster ->
      let kv0 = client cluster in
      Btree.create kv0 ~name:"conc";
      let n_workers = 6 in
      let per_worker = 300 in
      let done_count = ref 0 in
      for w = 0 to n_workers - 1 do
        Sim.Engine.spawn engine (fun () ->
            let kv = client cluster in
            let tree = Btree.attach kv ~name:"conc" in
            for i = 0 to per_worker - 1 do
              let key = Printf.sprintf "k%05d" ((i * n_workers) + w) in
              Btree.insert tree ~key ~rid:w;
              (* Interleave aggressively. *)
              if i mod 7 = 0 then Sim.Engine.sleep engine 1_000
            done;
            incr done_count)
      done;
      (* Wait for every worker. *)
      while !done_count < n_workers do
        Sim.Engine.sleep engine 1_000_000
      done;
      let tree = Btree.attach kv0 ~name:"conc" in
      Btree.check_invariants tree;
      let all = Btree.range tree ~lo:"" ~hi:"\xff" in
      Alcotest.(check int) "all concurrent inserts present" (n_workers * per_worker)
        (List.length all))

(* Bulk construction must agree with incremental construction. *)
let test_bulk_matches_incremental () =
  with_cluster (fun _engine cluster ->
      let entries =
        List.init 2_000 (fun i -> (Printf.sprintf "key%05d" (i * 7 mod 2000), i mod 3))
      in
      let kv = client cluster in
      List.iter
        (fun (key, data) -> Kv.Client.put kv key data)
        (List.map (fun (k, v) -> (k, v)) []);
      ignore kv;
      (* Install bulk cells directly. *)
      List.iter
        (fun (key, data) -> Kv.Cluster.poke cluster ~key ~data)
        (Btree.bulk_cells ~name:"bulk" ~entries);
      let tree = Btree.attach kv ~name:"bulk" in
      Btree.check_invariants tree;
      let expected = List.sort_uniq compare entries in
      Alcotest.(check (list (pair string int)))
        "bulk-built tree contains exactly the entries" expected
        (Btree.range tree ~lo:"" ~hi:"\xff");
      (* And it must remain fully updatable. *)
      Btree.insert tree ~key:"key99999" ~rid:1;
      Btree.remove tree ~key:"key00000" ~rid:0;
      Btree.check_invariants tree;
      Alcotest.(check (list int)) "insert after bulk" [ 1 ] (Btree.lookup tree ~key:"key99999"))

let test_range_limit () =
  with_cluster (fun _engine cluster ->
      let kv = client cluster in
      Btree.create kv ~name:"lim";
      let tree = Btree.attach kv ~name:"lim" in
      for i = 1 to 500 do
        Btree.insert tree ~key:(Printf.sprintf "k%04d" i) ~rid:i
      done;
      let first_10 = Btree.range_limit tree ~lo:"" ~hi:"\xff" ~limit:10 in
      Alcotest.(check int) "limit honoured" 10 (List.length first_10);
      Alcotest.(check (pair string int)) "first entry" ("k0001", 1)
        (match first_10 with e :: _ -> e | [] -> Alcotest.fail "empty"))

let test_lookup_many () =
  with_cluster (fun _engine cluster ->
      let kv = client cluster in
      Btree.create kv ~name:"many";
      let tree = Btree.attach kv ~name:"many" in
      for i = 1 to 2_000 do
        Btree.insert tree ~key:(Printf.sprintf "k%05d" i) ~rid:i
      done;
      let keys =
        List.map (fun i -> Printf.sprintf "k%05d" i) [ 1; 57; 58; 1999; 1500; 12345; 3 ]
      in
      let results = Btree.lookup_many tree ~keys in
      Alcotest.(check int) "one result per key" (List.length keys) (List.length results);
      List.iter2
        (fun key (rkey, rids) ->
          Alcotest.(check string) "input order preserved" key rkey;
          Alcotest.(check (list int)) ("rids for " ^ key) (Btree.lookup tree ~key) rids)
        keys results;
      (* And the batched path agrees after mutations invalidate caches. *)
      Btree.remove tree ~key:"k00057" ~rid:57;
      Btree.insert tree ~key:"k00057" ~rid:5757;
      match Btree.lookup_many tree ~keys:[ "k00057" ] with
      | [ (_, rids) ] -> Alcotest.(check (list int)) "fresh value" [ 5757 ] rids
      | _ -> Alcotest.fail "single result expected")

let test_duplicate_keys () =
  with_cluster (fun _engine cluster ->
      let kv = client cluster in
      Btree.create kv ~name:"dup";
      let tree = Btree.attach kv ~name:"dup" in
      (* Many rids under the same attribute key (non-unique index). *)
      for rid = 1 to 200 do
        Btree.insert tree ~key:"same" ~rid
      done;
      Alcotest.(check int) "all duplicates" 200 (List.length (Btree.lookup tree ~key:"same"));
      Btree.remove tree ~key:"same" ~rid:77;
      let rids = Btree.lookup tree ~key:"same" in
      Alcotest.(check int) "one removed" 199 (List.length rids);
      Alcotest.(check bool) "right one removed" false (List.mem 77 rids))

let () =
  Alcotest.run "btree"
    [
      ( "btree",
        [
          Alcotest.test_case "model-based random ops" `Quick test_model_random;
          Alcotest.test_case "splits under sequential load" `Quick test_many_inserts_split;
          Alcotest.test_case "concurrent inserts (latch-free)" `Quick test_concurrent_inserts;
          Alcotest.test_case "bulk build = incremental" `Quick test_bulk_matches_incremental;
          Alcotest.test_case "range limit" `Quick test_range_limit;
          Alcotest.test_case "duplicate keys" `Quick test_duplicate_keys;
          Alcotest.test_case "lookup_many batched" `Quick test_lookup_many;
        ] );
    ]
