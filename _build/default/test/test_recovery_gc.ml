(* Recovery (§4.4) and garbage collection (§5.4): multi-PN crashes,
   recovery idempotence, the transaction-log checkpoint, eager and lazy
   version GC, and index-entry GC. *)

module Sim = Tell_sim
module Kv = Tell_kv
open Tell_core

let run_sim f =
  let engine = Sim.Engine.create () in
  let result = ref None in
  Sim.Engine.spawn engine (fun () -> result := Some (f engine));
  Sim.Engine.run engine ~until:120_000_000_000 ();
  match !result with Some r -> r | None -> Alcotest.fail "did not finish"

let make_db engine =
  let kv_config =
    { Kv.Cluster.default_config with n_storage_nodes = 3; replication_factor = 1 }
  in
  Database.create engine ~kv_config ()

let setup_rows pn n =
  ignore (Database.exec pn "CREATE TABLE t (id INT, v INT, PRIMARY KEY (id))");
  for i = 1 to n do
    ignore (Database.exec pn (Printf.sprintf "INSERT INTO t VALUES (%d, %d)" i i))
  done

let rid_of pn ~id =
  Database.with_txn pn (fun txn ->
      match Txn.index_lookup txn ~index:"pk_t" ~key:(Codec.encode_key [ Value.Int id ]) with
      | [ rid ] -> rid
      | _ -> Alcotest.fail "pk lookup")

(* Walk a transaction into the applied-but-unflagged state by hand (the
   state a PN crash leaves behind mid-commit). *)
let wedge_transaction pn ~rid ~value =
  let txn = Txn.begin_txn pn in
  let entry =
    {
      Txlog.tid = Txn.tid txn;
      pn_id = Pn.id pn;
      timestamp = 0;
      write_set = [ Keys.record ~table:"t" ~rid ];
      committed = false;
    }
  in
  Txlog.append (Pn.kv pn) entry;
  let key = Keys.record ~table:"t" ~rid in
  (match Kv.Client.get (Pn.kv pn) key with
  | Some (data, token) ->
      let record =
        Record.add_version (Record.decode data) ~version:(Txn.tid txn)
          (Record.Tuple [| Value.Int rid; Value.Int value |])
      in
      (match Kv.Client.put_if (Pn.kv pn) key (Some token) (Record.encode record) with
      | `Ok _ -> ()
      | `Conflict -> Alcotest.fail "wedge apply failed")
  | None -> Alcotest.fail "record missing")

let test_multi_pn_recovery () =
  run_sim (fun _engine ->
      let db = make_db _engine in
      let pn1 = Database.add_pn db () in
      let pn2 = Database.add_pn db () in
      let pn3 = Database.add_pn db () in
      setup_rows pn1 10;
      let rid4 = rid_of pn1 ~id:4 and rid7 = rid_of pn2 ~id:7 in
      wedge_transaction pn1 ~rid:rid4 ~value:444;
      wedge_transaction pn2 ~rid:rid7 ~value:777;
      Database.crash_pn db pn1;
      Database.crash_pn db pn2;
      (* One recovery process handles both failed nodes (§4.4.1). *)
      Alcotest.(check int) "two transactions rolled back" 2 (Database.recover_crashed_pns db);
      List.iter
        (fun id ->
          match Database.exec pn3 (Printf.sprintf "SELECT v FROM t WHERE id = %d" id) with
          | Sql_plan.Rows { rows = [ [| Value.Int v |] ]; _ } ->
              Alcotest.(check int) (Printf.sprintf "row %d restored" id) id v
          | _ -> Alcotest.fail "read failed")
        [ 4; 7 ];
      (* Idempotence: running recovery again finds nothing. *)
      Alcotest.(check int) "nothing left to recover" 0 (Database.recover_crashed_pns db))

let test_committed_txns_survive_recovery () =
  run_sim (fun _engine ->
      let db = make_db _engine in
      let pn1 = Database.add_pn db () in
      let pn2 = Database.add_pn db () in
      setup_rows pn1 5;
      (* A properly committed transaction of pn1, then a crash: recovery
         must NOT roll committed work back. *)
      ignore (Database.exec pn1 "UPDATE t SET v = 1000 WHERE id = 2");
      Database.crash_pn db pn1;
      let _ = Database.recover_crashed_pns db in
      match Database.exec pn2 "SELECT v FROM t WHERE id = 2" with
      | Sql_plan.Rows { rows = [ [| Value.Int 1000 |] ]; _ } -> ()
      | _ -> Alcotest.fail "committed update lost")

let test_eager_gc_compacts () =
  run_sim (fun _engine ->
      let db = make_db _engine in
      let pn = Database.add_pn db () in
      setup_rows pn 3;
      let rid = rid_of pn ~id:1 in
      (* Many sequential updates: old versions must be collected along the
         way (each write-back GCs versions below the lav). *)
      for round = 1 to 30 do
        ignore (Database.exec pn (Printf.sprintf "UPDATE t SET v = %d WHERE id = 1" round))
      done;
      match Database.with_txn pn (fun txn -> Txn.read_record txn ~table:"t" ~rid) with
      | Some record ->
          let n = List.length (Record.versions record) in
          Alcotest.(check bool)
            (Printf.sprintf "versions compacted (%d left)" n)
            true (n <= 3)
      | None -> Alcotest.fail "record missing")

let test_lazy_gc_sweep () =
  run_sim (fun engine ->
      let db = make_db engine in
      let pn = Database.add_pn db () in
      setup_rows pn 3;
      (* Updates while a long-running transaction pins the lav. *)
      let pinner = Txn.begin_txn pn in
      for round = 1 to 5 do
        ignore (Database.exec pn (Printf.sprintf "UPDATE t SET v = %d WHERE id = 2" round))
      done;
      Txn.commit pinner;
      (* Give the commit manager a moment, then sweep. *)
      Sim.Engine.sleep engine 10_000_000;
      let gc = Database.gc db in
      Gc_task.run_once gc ~tables:(Database.tables db);
      let stats = Gc_task.stats gc in
      Alcotest.(check bool)
        (Printf.sprintf "versions dropped (%d)" stats.versions_dropped)
        true
        (stats.versions_dropped > 0);
      (* Data unchanged. *)
      match Database.exec pn "SELECT v FROM t WHERE id = 2" with
      | Sql_plan.Rows { rows = [ [| Value.Int 5 |] ]; _ } -> ()
      | _ -> Alcotest.fail "GC changed visible data")

let test_index_gc () =
  run_sim (fun engine ->
      let db = make_db engine in
      let pn = Database.add_pn db () in
      ignore (Database.exec pn "CREATE TABLE t (id INT, tag TEXT, PRIMARY KEY (id))");
      ignore (Database.exec pn "CREATE INDEX idx_tag ON t (tag)");
      ignore (Database.exec pn "INSERT INTO t VALUES (1, 'old'), (2, 'old'), (3, 'keep')");
      (* Move both rows away from 'old': the stale index entries survive
         (version-unaware index) until GC. *)
      ignore (Database.exec pn "UPDATE t SET tag = 'new' WHERE id = 1");
      ignore (Database.exec pn "UPDATE t SET tag = 'new' WHERE id = 2");
      Sim.Engine.sleep engine 10_000_000;
      let gc = Database.gc db in
      Gc_task.run_once gc ~tables:(Database.tables db);
      let stats = Gc_task.stats gc in
      Alcotest.(check bool)
        (Printf.sprintf "stale index entries dropped (%d)" stats.index_entries_dropped)
        true
        (stats.index_entries_dropped > 0);
      (* Queries remain correct afterwards. *)
      (match Database.exec pn "SELECT COUNT(*) FROM t WHERE tag = 'new'" with
      | Sql_plan.Rows { rows = [ [| Value.Int 2 |] ]; _ } -> ()
      | _ -> Alcotest.fail "post-GC query wrong");
      match Database.exec pn "SELECT COUNT(*) FROM t WHERE tag = 'old'" with
      | Sql_plan.Rows { rows = [ [| Value.Int 0 |] ]; _ } -> ()
      | _ -> Alcotest.fail "old tag should be empty")

let test_log_truncation () =
  run_sim (fun _engine ->
      let db = make_db _engine in
      let pn = Database.add_pn db () in
      setup_rows pn 10;
      let before = List.length (Txlog.scan (Pn.kv pn) ~min_tid:0) in
      Alcotest.(check bool) "log has entries" true (before > 5);
      (* Everything is decided: the whole log below the lav can go. *)
      let cm = List.nth (Database.commit_managers db) 0 in
      Txlog.truncate_below (Pn.kv pn) ~min_tid:(Commit_manager.current_lav cm);
      let after = List.length (Txlog.scan (Pn.kv pn) ~min_tid:0) in
      Alcotest.(check bool)
        (Printf.sprintf "log truncated (%d -> %d)" before after)
        true (after < before))

let () =
  Alcotest.run "recovery_gc"
    [
      ( "recovery",
        [
          Alcotest.test_case "multi-PN crash recovery" `Quick test_multi_pn_recovery;
          Alcotest.test_case "committed work survives" `Quick test_committed_txns_survive_recovery;
        ] );
      ( "gc",
        [
          Alcotest.test_case "eager version GC" `Quick test_eager_gc_compacts;
          Alcotest.test_case "lazy GC sweep" `Quick test_lazy_gc_sweep;
          Alcotest.test_case "index entry GC" `Quick test_index_gc;
          Alcotest.test_case "log truncation" `Quick test_log_truncation;
        ] );
    ]
