(* Unit and property tests for the simulation substrate. *)

module Sim = Tell_sim

let run ?(until = 10_000_000_000) f =
  let engine = Sim.Engine.create () in
  f engine;
  Sim.Engine.run engine ~until ();
  engine

(* --- event ordering ------------------------------------------------------------ *)

let test_event_order () =
  let log = ref [] in
  let _ =
    run (fun engine ->
        Sim.Engine.schedule engine ~delay:30 (fun () -> log := 3 :: !log);
        Sim.Engine.schedule engine ~delay:10 (fun () -> log := 1 :: !log);
        Sim.Engine.schedule engine ~delay:20 (fun () -> log := 2 :: !log);
        (* Same-instant events keep FIFO order. *)
        Sim.Engine.schedule engine ~delay:10 (fun () -> log := 11 :: !log))
  in
  Alcotest.(check (list int)) "timestamp then FIFO order" [ 1; 11; 2; 3 ] (List.rev !log)

let test_sleep_advances_clock () =
  let observed = ref (-1) in
  let engine =
    run (fun engine ->
        Sim.Engine.spawn engine (fun () ->
            Sim.Engine.sleep engine 1_234;
            Sim.Engine.sleep engine 766;
            observed := Sim.Engine.now engine))
  in
  Alcotest.(check int) "clock after sleeps" 2_000 !observed;
  Alcotest.(check int) "engine clock keeps running to the horizon" 10_000_000_000
    (Sim.Engine.now engine)

let test_heap_property =
  QCheck.Test.make ~name:"heap pops in nondecreasing time order" ~count:200
    QCheck.(list (int_bound 10_000))
    (fun times ->
      let heap = Tell_sim.Heap.create () in
      List.iter (fun t -> Tell_sim.Heap.push heap ~time:t ()) times;
      let rec drain last =
        match Tell_sim.Heap.pop heap with
        | None -> true
        | Some (t, ()) -> t >= last && drain t
      in
      drain min_int)

(* --- cancellation ----------------------------------------------------------------- *)

let test_group_cancellation () =
  let progressed = ref 0 in
  let cancelled = ref false in
  let _ =
    run (fun engine ->
        let group = Sim.Engine.make_group engine "victim" in
        Sim.Engine.spawn engine ~group (fun () ->
            match
              incr progressed;
              Sim.Engine.sleep engine 1_000;
              incr progressed;
              Sim.Engine.sleep engine 1_000_000;
              incr progressed
            with
            | () -> ()
            | exception Sim.Engine.Cancelled ->
                cancelled := true;
                raise Sim.Engine.Cancelled);
        Sim.Engine.schedule engine ~delay:5_000 (fun () -> Sim.Engine.Group.kill group))
  in
  Alcotest.(check int) "stopped at the suspension point" 2 !progressed;
  Alcotest.(check bool) "observed Cancelled" true !cancelled

(* --- resources ---------------------------------------------------------------------- *)

let test_resource_serializes () =
  (* 4 jobs of 100ns on a 2-server resource: finish at 100, 100, 200, 200. *)
  let finish_times = ref [] in
  let _ =
    run (fun engine ->
        let cpu = Sim.Resource.create engine ~servers:2 "cpu" in
        for _ = 1 to 4 do
          Sim.Engine.spawn engine (fun () ->
              Sim.Resource.use cpu ~demand:100;
              finish_times := Sim.Engine.now engine :: !finish_times)
        done)
  in
  Alcotest.(check (list int)) "queueing delays" [ 100; 100; 200; 200 ] (List.sort compare !finish_times)

let test_resource_utilization () =
  let busy = ref 0 in
  let _ =
    run (fun engine ->
        let cpu = Sim.Resource.create engine ~servers:1 "cpu" in
        for _ = 1 to 10 do
          Sim.Engine.spawn engine (fun () -> Sim.Resource.use cpu ~demand:50)
        done;
        Sim.Engine.schedule engine ~delay:1_000 (fun () -> busy := Sim.Resource.busy_time cpu))
  in
  Alcotest.(check int) "total service time accounted" 500 !busy

(* --- ivar / mailbox / mutex ----------------------------------------------------------- *)

let test_ivar () =
  let results = ref [] in
  let _ =
    run (fun engine ->
        let iv = Sim.Ivar.create engine in
        for i = 1 to 3 do
          Sim.Engine.spawn engine (fun () ->
              let v = Sim.Ivar.read iv in
              results := (i, v, Sim.Engine.now engine) :: !results)
        done;
        Sim.Engine.schedule engine ~delay:500 (fun () -> Sim.Ivar.fill iv 42))
  in
  Alcotest.(check int) "all readers woken" 3 (List.length !results);
  List.iter
    (fun (_, v, t) ->
      Alcotest.(check int) "value" 42 v;
      Alcotest.(check int) "time of wake" 500 t)
    !results

let test_ivar_exn () =
  let raised = ref false in
  let _ =
    run (fun engine ->
        let iv = Sim.Ivar.create engine in
        Sim.Engine.spawn engine (fun () ->
            match Sim.Ivar.read iv with
            | _ -> ()
            | exception Failure msg -> raised := msg = "boom");
        Sim.Engine.schedule engine ~delay:10 (fun () -> Sim.Ivar.fill_exn iv (Failure "boom")))
  in
  Alcotest.(check bool) "exception propagated to reader" true !raised

let test_mailbox_fifo () =
  let received = ref [] in
  let _ =
    run (fun engine ->
        let mb = Sim.Mailbox.create engine in
        Sim.Engine.spawn engine (fun () ->
            for _ = 1 to 5 do
              received := Sim.Mailbox.recv mb :: !received
            done);
        Sim.Engine.schedule engine ~delay:100 (fun () -> List.iter (Sim.Mailbox.send mb) [ 1; 2; 3; 4; 5 ]))
  in
  Alcotest.(check (list int)) "FIFO delivery" [ 1; 2; 3; 4; 5 ] (List.rev !received)

let test_mutex_exclusion () =
  let inside = ref 0 in
  let max_inside = ref 0 in
  let _ =
    run (fun engine ->
        let m = Sim.Mutex.create engine in
        for _ = 1 to 8 do
          Sim.Engine.spawn engine (fun () ->
              Sim.Mutex.with_lock m (fun () ->
                  incr inside;
                  max_inside := max !max_inside !inside;
                  Sim.Engine.sleep engine 100;
                  decr inside))
        done)
  in
  Alcotest.(check int) "mutual exclusion" 1 !max_inside

(* --- determinism ------------------------------------------------------------------------ *)

let test_determinism () =
  let trace () =
    let log = Buffer.create 256 in
    let engine = Sim.Engine.create () in
    let rng = Sim.Rng.make 7 in
    let net = Sim.Net.create engine rng Sim.Net.infiniband in
    for i = 1 to 5 do
      Sim.Engine.spawn engine (fun () ->
          Sim.Net.transfer net ~bytes:(i * 100);
          Buffer.add_string log (Printf.sprintf "%d@%d;" i (Sim.Engine.now engine)))
    done;
    Sim.Engine.run engine ();
    Buffer.contents log
  in
  Alcotest.(check string) "same seed, same trace" (trace ()) (trace ())

(* --- statistics --------------------------------------------------------------------------- *)

let test_histogram_percentiles =
  QCheck.Test.make ~name:"histogram percentile within quantisation error of exact" ~count:50
    QCheck.(list_of_size (Gen.int_range 50 300) (int_range 1 5_000_000))
    (fun samples ->
      let h = Sim.Stats.Histogram.create () in
      List.iter (Sim.Stats.Histogram.add h) samples;
      let sorted = List.sort compare samples in
      let n = List.length sorted in
      List.for_all
        (fun p ->
          let rank = max 0 (min (n - 1) (int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1)) in
          let exact = List.nth sorted rank in
          let approx = Sim.Stats.Histogram.percentile h p in
          (* Log-linear buckets bound the relative error at ~2/64. *)
          float_of_int approx >= float_of_int exact *. 0.95
          && float_of_int approx <= float_of_int exact *. 1.05)
        [ 50.0; 90.0; 99.0 ])

let test_moments () =
  let m = Sim.Stats.Moments.create () in
  List.iter (Sim.Stats.Moments.add m) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Sim.Stats.Moments.mean m);
  Alcotest.(check (float 1e-6)) "stddev (sample)" 2.13809 (Sim.Stats.Moments.stddev m)

let () =
  Alcotest.run "sim"
    [
      ( "engine",
        [
          Alcotest.test_case "event ordering" `Quick test_event_order;
          Alcotest.test_case "sleep advances clock" `Quick test_sleep_advances_clock;
          QCheck_alcotest.to_alcotest test_heap_property;
          Alcotest.test_case "group cancellation" `Quick test_group_cancellation;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
      ( "resources",
        [
          Alcotest.test_case "FCFS queueing" `Quick test_resource_serializes;
          Alcotest.test_case "utilization accounting" `Quick test_resource_utilization;
        ] );
      ( "sync",
        [
          Alcotest.test_case "ivar broadcast" `Quick test_ivar;
          Alcotest.test_case "ivar exception" `Quick test_ivar_exn;
          Alcotest.test_case "mailbox fifo" `Quick test_mailbox_fifo;
          Alcotest.test_case "mutex exclusion" `Quick test_mutex_exclusion;
        ] );
      ( "stats",
        [
          QCheck_alcotest.to_alcotest test_histogram_percentiles;
          Alcotest.test_case "moments" `Quick test_moments;
        ] );
    ]
