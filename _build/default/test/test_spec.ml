(* The TPC-C workload generator: mix proportions, NURand ranges,
   last-name construction, remote-access rates, and the shardable
   variant's purity. *)

module Rng = Tell_sim.Rng
module Spec = Tell_tpcc.Spec

let scale = Spec.sim_scale ~warehouses:10

let sample_txns mix n =
  let rng = Rng.make 42 in
  List.init n (fun _ -> Spec.gen_txn rng ~scale ~mix ~home_w:3)

let share pred txns =
  100.0 *. float_of_int (List.length (List.filter pred txns)) /. float_of_int (List.length txns)

let test_mix_proportions () =
  let txns = sample_txns Spec.standard_mix 100_000 in
  let close label expected actual =
    Alcotest.(check bool)
      (Printf.sprintf "%s ~%.0f%% (got %.2f%%)" label expected actual)
      true
      (Float.abs (expected -. actual) < 1.0)
  in
  close "new-order" 45.0 (share (function Spec.New_order _ -> true | _ -> false) txns);
  close "payment" 43.0 (share (function Spec.Payment _ -> true | _ -> false) txns);
  close "delivery" 4.0 (share (function Spec.Delivery _ -> true | _ -> false) txns);
  close "order-status" 4.0 (share (function Spec.Order_status _ -> true | _ -> false) txns);
  close "stock-level" 4.0 (share (function Spec.Stock_level _ -> true | _ -> false) txns)

let test_nurand_in_range () =
  let rng = Rng.make 7 in
  for _ = 1 to 50_000 do
    let c = Spec.random_c_id rng ~scale in
    Alcotest.(check bool) "c_id in range" true (c >= 1 && c <= scale.customers_per_district);
    let i = Spec.random_i_id rng ~scale in
    Alcotest.(check bool) "i_id in range" true (i >= 1 && i <= scale.items)
  done

let test_nurand_skew () =
  (* NURand is non-uniform: the most popular decile must be hit clearly
     more often than the least popular one. *)
  let rng = Rng.make 9 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let i = Spec.random_i_id rng ~scale in
    let b = (i - 1) * 10 / scale.items in
    buckets.(b) <- buckets.(b) + 1
  done;
  let mx = Array.fold_left max 0 buckets and mn = Array.fold_left min max_int buckets in
  Alcotest.(check bool)
    (Printf.sprintf "skewed (max bucket %d, min bucket %d)" mx mn)
    true
    (float_of_int mx > 1.15 *. float_of_int mn)

let test_last_names () =
  Alcotest.(check string) "0" "BARBARBAR" (Spec.last_name 0);
  Alcotest.(check string) "371" "PRICALLYOUGHT" (Spec.last_name 371);
  Alcotest.(check string) "999" "EINGEINGEING" (Spec.last_name 999);
  (* Generated names must exist in the (scaled) population. *)
  let rng = Rng.make 3 in
  for _ = 1 to 10_000 do
    let name = Spec.random_last_name rng ~scale in
    let found = ref false in
    for c = 0 to min 999 (scale.customers_per_district - 1) do
      if Spec.last_name c = name then found := true
    done;
    Alcotest.(check bool) ("name exists: " ^ name) true !found
  done

let test_remote_rates () =
  let txns = sample_txns Spec.standard_mix 200_000 in
  let remote_payment =
    share
      (function Spec.Payment p -> p.p_c_w_id <> p.p_w_id | _ -> false)
      (List.filter (function Spec.Payment _ -> true | _ -> false) txns)
  in
  Alcotest.(check bool)
    (Printf.sprintf "~15%% remote payments (got %.2f%%)" remote_payment)
    true
    (Float.abs (remote_payment -. 15.0) < 1.5);
  let remote_order_lines, total_lines =
    List.fold_left
      (fun (r, t) txn ->
        match txn with
        | Spec.New_order no ->
            ( r + List.length (List.filter (fun (_, sw, _) -> sw <> no.no_w_id) no.items),
              t + List.length no.items )
        | _ -> (r, t))
      (0, 0) txns
  in
  let pct = 100.0 *. float_of_int remote_order_lines /. float_of_int total_lines in
  Alcotest.(check bool) (Printf.sprintf "~1%% remote order lines (got %.2f%%)" pct) true
    (Float.abs (pct -. 1.0) < 0.3)

let test_shardable_is_local () =
  let txns = sample_txns Spec.shardable_mix 100_000 in
  List.iter
    (fun txn ->
      match Tell_baselines.Tpcc_rows.warehouses_touched txn with
      | [ _ ] -> ()
      | whs -> Alcotest.failf "shardable txn touches %d warehouses" (List.length whs))
    txns

let test_invalid_item_rate () =
  let txns = sample_txns Spec.standard_mix 200_000 in
  let new_orders = List.filter (function Spec.New_order _ -> true | _ -> false) txns in
  let pct = share (function Spec.New_order no -> no.invalid_item | _ -> false) new_orders in
  Alcotest.(check bool) (Printf.sprintf "~1%% rollbacks (got %.2f%%)" pct) true
    (Float.abs (pct -. 1.0) < 0.3)

let () =
  Alcotest.run "spec"
    [
      ( "generator",
        [
          Alcotest.test_case "mix proportions" `Quick test_mix_proportions;
          Alcotest.test_case "nurand ranges" `Quick test_nurand_in_range;
          Alcotest.test_case "nurand skew" `Quick test_nurand_skew;
          Alcotest.test_case "last names" `Quick test_last_names;
          Alcotest.test_case "remote-access rates" `Quick test_remote_rates;
          Alcotest.test_case "shardable mix is single-warehouse" `Quick test_shardable_is_local;
          Alcotest.test_case "invalid-item rate" `Quick test_invalid_item_rate;
        ] );
    ]
