(* The §5.2 push-down extension: storage-side selection/projection must be
   observationally equivalent to the PN-side scan pipeline, respect
   snapshots and the transaction's own writes, and actually reduce network
   traffic. *)

module Sim = Tell_sim
module Kv = Tell_kv
open Tell_core

let run_sim f =
  let engine = Sim.Engine.create () in
  let result = ref None in
  Sim.Engine.spawn engine (fun () -> result := Some (f engine));
  Sim.Engine.run engine ~until:60_000_000_000 ();
  match !result with Some r -> r | None -> Alcotest.fail "did not finish"

let make_pn engine =
  let kv_config =
    { Kv.Cluster.default_config with n_storage_nodes = 3; replication_factor = 1 }
  in
  let db = Database.create engine ~kv_config () in
  (db, Database.add_pn db ())

let seed pn n =
  ignore (Database.exec pn "CREATE TABLE m (id INT, grp INT, v INT, PRIMARY KEY (id))");
  for i = 1 to n do
    ignore
      (Database.exec pn (Printf.sprintf "INSERT INTO m VALUES (%d, %d, %d)" i (i mod 5) (i * 10)))
  done

let rows_as_ints it =
  List.map (fun r -> Array.to_list (Array.map Value.as_int r)) (Query.to_list it)
  |> List.sort compare

let test_expr_codec =
  let open Query in
  let exprs =
    [
      Col 3;
      Lit (Value.Str "hello");
      Binop (And, Binop (Gt, Col 1, Lit (Value.Int 5)), Not (Is_null (Col 0)));
      Binop (Add, Binop (Mul, Col 0, Lit (Value.Float 1.5)), Lit Value.Null);
    ]
  in
  QCheck.Test.make ~name:"expr codec round trip" ~count:1
    QCheck.(always ())
    (fun () ->
      List.for_all
        (fun e ->
          let buf = Buffer.create 32 in
          Pushdown.encode_expr buf e;
          let decoded, _ = Pushdown.decode_expr (Buffer.contents buf) 0 in
          decoded = e)
        exprs)

let test_equivalent_to_pn_scan () =
  run_sim (fun engine ->
      let _, pn = make_pn engine in
      seed pn 300;
      let predicate = Query.Binop (Query.Eq, Query.Col 1, Query.Lit (Value.Int 2)) in
      Database.with_txn pn (fun txn ->
          let via_pn =
            rows_as_ints
              (Query.project [ Query.Col 0; Query.Col 2 ]
                 (Query.filter predicate (Query.seq_scan txn ~table:"m")))
          in
          let via_sn =
            rows_as_ints (Pushdown.scan txn ~table:"m" ~predicate ~projection:[ 0; 2 ] ())
          in
          Alcotest.(check bool) "non-empty" true (List.length via_pn > 10);
          Alcotest.(check bool) "identical result sets" true (via_pn = via_sn)))

let test_sees_own_writes () =
  run_sim (fun engine ->
      let _, pn = make_pn engine in
      seed pn 20;
      Database.with_txn pn (fun txn ->
          ignore (Database.exec_in txn "INSERT INTO m VALUES (999, 2, 12345)");
          let predicate = Query.Binop (Query.Eq, Query.Col 1, Query.Lit (Value.Int 2)) in
          let rows = rows_as_ints (Pushdown.scan txn ~table:"m" ~predicate ()) in
          Alcotest.(check bool) "pending insert included" true
            (List.exists (fun r -> r = [ 999; 2; 12345 ]) rows)))

let test_respects_snapshot () =
  run_sim (fun engine ->
      let _, pn = make_pn engine in
      seed pn 20;
      let reader = Txn.begin_txn pn in
      ignore (Database.exec pn "UPDATE m SET v = 0 WHERE id = 7");
      let rows = rows_as_ints (Pushdown.scan reader ~table:"m" ()) in
      Alcotest.(check bool) "snapshot value, not the concurrent update" true
        (List.exists (fun r -> r = [ 7; 2; 70 ]) rows);
      Txn.commit reader;
      Database.with_txn pn (fun txn ->
          let rows = rows_as_ints (Pushdown.scan txn ~table:"m" ()) in
          Alcotest.(check bool) "fresh snapshot sees the update" true
            (List.exists (fun r -> r = [ 7; 2; 0 ]) rows)))

let test_saves_bandwidth () =
  run_sim (fun engine ->
      let _, pn = make_pn engine in
      seed pn 500;
      let net = Kv.Cluster.net (Database.cluster (fst (make_pn engine))) in
      ignore net;
      let bytes_for f =
        let net = Kv.Cluster.net (Pn.cluster pn) in
        Sim.Net.reset_counters net;
        Database.with_txn pn (fun txn -> ignore (Query.to_list (f txn)));
        Sim.Net.bytes_sent net
      in
      let predicate = Query.Binop (Query.Eq, Query.Col 1, Query.Lit (Value.Int 0)) in
      let full =
        bytes_for (fun txn -> Query.filter predicate (Query.seq_scan txn ~table:"m"))
      in
      let pushed =
        bytes_for (fun txn -> Pushdown.scan txn ~table:"m" ~predicate ~projection:[ 2 ] ())
      in
      Alcotest.(check bool)
        (Printf.sprintf "push-down moves less data (%d vs %d bytes)" pushed full)
        true
        (pushed * 3 < full))

let () =
  Alcotest.run "pushdown"
    [
      ( "pushdown",
        [
          QCheck_alcotest.to_alcotest test_expr_codec;
          Alcotest.test_case "equivalent to PN-side scan" `Quick test_equivalent_to_pn_scan;
          Alcotest.test_case "sees own writes" `Quick test_sees_own_writes;
          Alcotest.test_case "respects snapshot" `Quick test_respects_snapshot;
          Alcotest.test_case "saves bandwidth" `Quick test_saves_bandwidth;
        ] );
    ]
