(* SQL layer: lexer/parser shapes, planner behaviour (index selection,
   joins, aggregation), and executor semantics (UPDATE/DELETE with
   predicates, ORDER BY/LIMIT/DISTINCT, NULL handling). *)

module Sim = Tell_sim
module Kv = Tell_kv
open Tell_core

let run_sim f =
  let engine = Sim.Engine.create () in
  let result = ref None in
  Sim.Engine.spawn engine (fun () -> result := Some (f engine));
  Sim.Engine.run engine ~until:60_000_000_000 ();
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "simulation did not finish"

let with_db f =
  run_sim (fun engine ->
      let kv_config =
        { Kv.Cluster.default_config with n_storage_nodes = 3; replication_factor = 1 }
      in
      let db = Database.create engine ~kv_config () in
      let pn = Database.add_pn db () in
      f db pn)

let rows_to_string rows =
  String.concat "; "
    (List.map
       (fun row -> String.concat "," (Array.to_list (Array.map Value.to_string row)))
       rows)

let check_rows label expected result =
  Alcotest.(check string) label expected (rows_to_string (Database.rows result))

(* --- parser ---------------------------------------------------------------------- *)

let test_parse_errors () =
  let bad sql =
    match Sql_parser.parse sql with
    | exception Sql_ast.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %S" sql
  in
  bad "SELECT";
  bad "SELECT * FROM";
  bad "INSERT INTO t";
  bad "CREATE TABLE t (x BLOB)";
  bad "SELECT * FROM t WHERE";
  bad "UPDATE t SET";
  bad "SELECT * FROM t LIMIT x"

let test_parse_shapes () =
  (match Sql_parser.parse "SELECT a, b AS bee FROM t WHERE a > 3 ORDER BY b DESC LIMIT 5" with
  | Sql_ast.Select q ->
      Alcotest.(check int) "items" 2 (List.length q.sel_exprs);
      Alcotest.(check bool) "has where" true (q.where <> None);
      Alcotest.(check int) "order by" 1 (List.length q.order_by);
      Alcotest.(check (option int)) "limit" (Some 5) q.limit
  | _ -> Alcotest.fail "expected SELECT");
  (match Sql_parser.parse "INSERT INTO t (a, b) VALUES (1, 'x''y'), (2, NULL)" with
  | Sql_ast.Insert { columns = Some [ "a"; "b" ]; values; _ } ->
      Alcotest.(check int) "two rows" 2 (List.length values)
  | _ -> Alcotest.fail "expected INSERT with columns");
  match Sql_parser.parse "CREATE TABLE t (id INT, name VARCHAR(16), PRIMARY KEY (id))" with
  | Sql_ast.Create_table { cols; primary_key; _ } ->
      Alcotest.(check int) "cols" 2 (List.length cols);
      Alcotest.(check (list string)) "pk" [ "id" ] primary_key
  | _ -> Alcotest.fail "expected CREATE TABLE"

(* --- execution ------------------------------------------------------------------- *)

let seed_people pn =
  ignore
    (Database.exec pn "CREATE TABLE people (id INT, name TEXT, age INT, city TEXT, PRIMARY KEY (id))");
  ignore (Database.exec pn "CREATE INDEX idx_city ON people (city)");
  ignore
    (Database.exec pn
       "INSERT INTO people VALUES (1, 'ann', 34, 'zurich'), (2, 'ben', 28, 'basel'), \
        (3, 'cat', 41, 'zurich'), (4, 'dan', 28, 'bern'), (5, 'eva', 55, 'basel')")

let test_select_filtering () =
  with_db (fun _db pn ->
      seed_people pn;
      check_rows "equality via pk" "ann"
        (Database.exec pn "SELECT name FROM people WHERE id = 1");
      check_rows "range + order" "eva; cat; ann"
        (Database.exec pn "SELECT name FROM people WHERE age > 30 ORDER BY age DESC");
      check_rows "conjunction" "ben"
        (Database.exec pn "SELECT name FROM people WHERE age = 28 AND city = 'basel'");
      check_rows "disjunction + expression" "ann; dan"
        (Database.exec pn
           "SELECT name FROM people WHERE id + 3 = 4 OR (city = 'bern' AND NOT age > 99) ORDER BY name"))

let test_select_order_limit () =
  with_db (fun _db pn ->
      seed_people pn;
      check_rows "order by + limit" "eva; cat"
        (Database.exec pn "SELECT name FROM people ORDER BY age DESC LIMIT 2");
      check_rows "distinct" "28; 34; 41; 55"
        (Database.exec pn "SELECT DISTINCT age FROM people ORDER BY age"))

let test_secondary_index_used () =
  with_db (fun _db pn ->
      seed_people pn;
      check_rows "by city via secondary index" "ann; cat"
        (Database.exec pn "SELECT name FROM people WHERE city = 'zurich' ORDER BY name");
      (* Update that moves a row across index keys; the old entry must not
         resurface (version-unaware index + visibility re-check). *)
      ignore (Database.exec pn "UPDATE people SET city = 'geneva' WHERE name = 'ann'");
      check_rows "after move" "cat"
        (Database.exec pn "SELECT name FROM people WHERE city = 'zurich'");
      check_rows "new home" "ann" (Database.exec pn "SELECT name FROM people WHERE city = 'geneva'"))

let test_aggregation () =
  with_db (fun _db pn ->
      seed_people pn;
      check_rows "group by with multiple aggregates" "basel,2,83; bern,1,28; zurich,2,75"
        (Database.exec pn
           "SELECT city, COUNT(*), SUM(age) FROM people GROUP BY city ORDER BY city");
      check_rows "global aggregates" "5,186,28,55,37.2"
        (Database.exec pn
           "SELECT COUNT(*), SUM(age), MIN(age), MAX(age), AVG(age) FROM people");
      check_rows "aggregate over empty input" "0,NULL"
        (Database.exec pn "SELECT COUNT(*), SUM(age) FROM people WHERE age > 100"))

let test_join () =
  with_db (fun _db pn ->
      seed_people pn;
      ignore
        (Database.exec pn "CREATE TABLE cities (cname TEXT, country TEXT, PRIMARY KEY (cname))");
      ignore
        (Database.exec pn
           "INSERT INTO cities VALUES ('zurich', 'CH'), ('basel', 'CH'), ('paris', 'FR')");
      check_rows "equi-join via index on pk" "ann,CH; ben,CH; cat,CH; eva,CH"
        (Database.exec pn
           "SELECT p.name, c.country FROM people p, cities c WHERE p.city = c.cname ORDER BY p.name"))

let test_update_delete () =
  with_db (fun _db pn ->
      seed_people pn;
      (match Database.exec pn "UPDATE people SET age = age + 1 WHERE city = 'basel'" with
      | Sql_plan.Affected 2 -> ()
      | Sql_plan.Affected n -> Alcotest.failf "expected 2 updates, got %d" n
      | _ -> Alcotest.fail "expected Affected");
      check_rows "updated" "29; 56"
        (Database.exec pn "SELECT age FROM people WHERE city = 'basel' ORDER BY age");
      (match Database.exec pn "DELETE FROM people WHERE age > 50" with
      | Sql_plan.Affected 1 -> ()
      | _ -> Alcotest.fail "expected 1 delete");
      check_rows "post-delete count" "4" (Database.exec pn "SELECT COUNT(*) FROM people"))

let test_create_index_backfill () =
  with_db (fun _db pn ->
      seed_people pn;
      (* The index is created after the data exists: it must be backfilled
         and immediately usable. *)
      ignore (Database.exec pn "CREATE INDEX idx_age ON people (age)");
      check_rows "query through backfilled index" "ben,28; dan,28"
        (Database.exec pn "SELECT name, age FROM people WHERE age = 28 ORDER BY name"))

let test_null_semantics () =
  with_db (fun _db pn ->
      ignore (Database.exec pn "CREATE TABLE t (id INT, v INT, PRIMARY KEY (id))");
      ignore (Database.exec pn "INSERT INTO t VALUES (1, 10), (2, NULL), (3, 30)");
      check_rows "null comparisons are never true" "1"
        (Database.exec pn "SELECT id FROM t WHERE v < 20");
      check_rows "is null" "2" (Database.exec pn "SELECT id FROM t WHERE v IS NULL");
      check_rows "is not null" "1; 3"
        (Database.exec pn "SELECT id FROM t WHERE v IS NOT NULL ORDER BY id");
      check_rows "aggregates skip nulls" "2,40" (Database.exec pn "SELECT COUNT(v), SUM(v) FROM t"))

let test_in_between_like_having () =
  with_db (fun _db pn ->
      seed_people pn;
      check_rows "IN list" "ann; ben; eva"
        (Database.exec pn "SELECT name FROM people WHERE id IN (1, 2, 5) ORDER BY name");
      check_rows "NOT IN" "cat; dan"
        (Database.exec pn "SELECT name FROM people WHERE id NOT IN (1, 2, 5) ORDER BY name");
      check_rows "BETWEEN" "ann; ben; dan"
        (Database.exec pn "SELECT name FROM people WHERE age BETWEEN 28 AND 35 ORDER BY name");
      check_rows "LIKE prefix" "basel; bern"
        (Database.exec pn "SELECT DISTINCT city FROM people WHERE city LIKE 'b%' ORDER BY city");
      check_rows "LIKE with underscore" "ben"
        (Database.exec pn "SELECT name FROM people WHERE name LIKE '_en'");
      check_rows "NOT LIKE" "eva"
        (Database.exec pn
           "SELECT name FROM people WHERE name NOT LIKE '%n%' AND name NOT LIKE 'c%'");
      check_rows "HAVING over groups" "basel,2; zurich,2"
        (Database.exec pn
           "SELECT city, COUNT(*) FROM people GROUP BY city HAVING COUNT(*) > 1 ORDER BY city");
      (* IN over an indexed column still uses correct results after
         desugaring to OR. *)
      match Database.exec pn "UPDATE people SET age = 99 WHERE id IN (2, 4)" with
      | Sql_plan.Affected 2 -> ()
      | _ -> Alcotest.fail "IN in UPDATE")

let test_multi_row_transactionality () =
  with_db (fun _db pn ->
      seed_people pn;
      (* A transaction that fails mid-way must leave nothing behind. *)
      (match
         Database.with_txn pn (fun txn ->
             ignore (Database.exec_in txn "UPDATE people SET age = 0 WHERE id = 1");
             failwith "application error")
       with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "expected failure");
      check_rows "aborted update invisible" "34"
        (Database.exec pn "SELECT age FROM people WHERE id = 1"))

let () =
  Alcotest.run "sql"
    [
      ( "parser",
        [
          Alcotest.test_case "rejects malformed statements" `Quick test_parse_errors;
          Alcotest.test_case "statement shapes" `Quick test_parse_shapes;
        ] );
      ( "executor",
        [
          Alcotest.test_case "filtering" `Quick test_select_filtering;
          Alcotest.test_case "order/limit/distinct" `Quick test_select_order_limit;
          Alcotest.test_case "secondary index" `Quick test_secondary_index_used;
          Alcotest.test_case "aggregation" `Quick test_aggregation;
          Alcotest.test_case "join" `Quick test_join;
          Alcotest.test_case "update/delete" `Quick test_update_delete;
          Alcotest.test_case "create index backfill" `Quick test_create_index_backfill;
          Alcotest.test_case "null semantics" `Quick test_null_semantics;
          Alcotest.test_case "IN/BETWEEN/LIKE/HAVING" `Quick test_in_between_like_having;
          Alcotest.test_case "transactional rollback" `Quick test_multi_row_transactionality;
        ] );
    ]
