(* Property tests for the data-mapping layer: tuple/record codecs, the
   order-preserving key encoding, and record garbage collection (§5.1,
   §5.4). *)

open Tell_core

let value_gen =
  QCheck.Gen.(
    oneof
      [
        return Value.Null;
        map (fun i -> Value.Int i) int;
        map (fun f -> Value.Float f) (float_bound_inclusive 1e12);
        map (fun f -> Value.Float (-.f)) (float_bound_inclusive 1e12);
        map (fun s -> Value.Str s) (string_size ~gen:printable (int_range 0 20));
      ])

let value_arb = QCheck.make ~print:Value.to_string value_gen

let tuple_arb =
  QCheck.make
    ~print:(fun t -> String.concat "," (Array.to_list (Array.map Value.to_string t)))
    QCheck.Gen.(array_size (int_range 0 12) value_gen)

let test_tuple_roundtrip =
  QCheck.Test.make ~name:"tuple encode/decode round trip" ~count:500 tuple_arb (fun tuple ->
      let decoded, _ = Codec.decode_tuple (Codec.encode_tuple tuple) 0 in
      Array.length decoded = Array.length tuple
      && Array.for_all2 Value.equal decoded tuple)

(* Key encoding must be order-preserving for homogeneously typed columns
   (the only case the schema produces): byte-wise comparison of encoded
   keys equals lexicographic Value.compare of the component lists. *)
let typed_value_gen ty =
  QCheck.Gen.(
    match ty with
    | `Int -> map (fun i -> Value.Int i) int
    | `Float ->
        let* sign = bool in
        let* f = float_bound_inclusive 1e12 in
        return (Value.Float (if sign then f else -.f))
    | `Str -> map (fun s -> Value.Str s) (string_size ~gen:printable (int_range 0 20)))

(* A pair of keys over the same column-type signature. *)
let key_pair_gen =
  QCheck.Gen.(
    let* signature = list_size (int_range 1 4) (oneofl [ `Int; `Float; `Str ]) in
    let* a = flatten_l (List.map typed_value_gen signature) in
    let* b = flatten_l (List.map typed_value_gen signature) in
    return (a, b))

let key_pair_arb =
  QCheck.make
    ~print:(fun (a, b) ->
      Printf.sprintf "(%s) vs (%s)"
        (String.concat "," (List.map Value.to_string a))
        (String.concat "," (List.map Value.to_string b)))
    key_pair_gen

let key_arb =
  QCheck.make
    ~print:(fun l -> String.concat "," (List.map Value.to_string l))
    QCheck.Gen.(
      let* signature = list_size (int_range 1 4) (oneofl [ `Int; `Float; `Str ]) in
      flatten_l (List.map typed_value_gen signature))

let rec compare_components a b =
  match (a, b) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: xs, y :: ys -> ( match Value.compare x y with 0 -> compare_components xs ys | c -> c)

let test_key_order =
  QCheck.Test.make ~name:"key encoding is order-preserving (typed columns)" ~count:1000
    key_pair_arb
    (fun (a, b) ->
      let ea = Codec.encode_key a and eb = Codec.encode_key b in
      let c = compare_components a b in
      if c = 0 then String.equal ea eb
      else if c < 0 then String.compare ea eb < 0
      else String.compare ea eb > 0)

let test_key_prefix_successor =
  QCheck.Test.make ~name:"prefix scans: prefix <= extended key < successor" ~count:500
    QCheck.(pair key_arb value_arb)
    (fun (prefix, extra) ->
      let has_nan = List.exists (function Value.Float f -> Float.is_nan f | _ -> false) in
      QCheck.assume (not (has_nan prefix || has_nan [ extra ]));
      let lo = Codec.encode_key prefix in
      let hi = Codec.encode_key_successor prefix in
      let extended = Codec.encode_key (prefix @ [ extra ]) in
      String.compare lo extended <= 0 && String.compare extended hi < 0)

(* --- records ------------------------------------------------------------------- *)

let record_gen =
  QCheck.Gen.(
    let* versions = list_size (int_range 0 8) (int_range 1 40) in
    let versions = List.sort_uniq Int.compare versions in
    let* payloads =
      flatten_l
        (List.map
           (fun v ->
             let* tombstone = bool in
             if tombstone then return (v, Record.Tombstone)
             else
               let* t = array_size (int_range 1 4) value_gen in
               return (v, Record.Tuple t))
           versions)
    in
    return
      (List.fold_left
         (fun acc (v, p) -> Record.add_version acc ~version:v p)
         Record.empty payloads))

let record_arb =
  QCheck.make ~print:(fun r -> String.concat "," (List.map string_of_int (Record.version_numbers r))) record_gen

let test_record_roundtrip =
  QCheck.Test.make ~name:"record encode/decode round trip" ~count:300 record_arb (fun r ->
      Record.version_numbers (Record.decode (Record.encode r)) = Record.version_numbers r)

let test_versions_sorted =
  QCheck.Test.make ~name:"versions kept newest-first" ~count:300 record_arb (fun r ->
      let vs = Record.version_numbers r in
      List.sort (fun a b -> Int.compare b a) vs = vs)

(* GC safety: for any lav, (1) versions above the lav survive, (2) the
   newest version at or below the lav survives (unless the whole record is
   a dead tombstone), (3) any snapshot whose base is >= lav reads the same
   visible version before and after GC. *)
let test_gc_safety =
  QCheck.Test.make ~name:"gc never changes what a live snapshot reads" ~count:500
    QCheck.(pair record_arb (int_range 0 45))
    (fun (r, lav) ->
      let compacted, _removed = Record.gc r ~lav in
      let snapshots = List.init 10 (fun i -> lav + i) in
      List.for_all
        (fun base ->
          let visible v = v <= base in
          let before = Record.latest_visible r ~visible in
          let after = Record.latest_visible compacted ~visible in
          match (before, after) with
          | None, None -> true
          | Some b, Some a -> b.version = a.version
          | Some b, None ->
              (* Permitted only when the surviving version was a tombstone
                 wholly below the lav (the record is logically deleted for
                 everyone). *)
              b.payload = Record.Tombstone && Record.is_empty compacted
          | None, Some _ -> false)
        snapshots)

let test_gc_keeps_newest =
  QCheck.Test.make ~name:"gc keeps at least the newest version of live records" ~count:300
    QCheck.(pair record_arb (int_range 0 45))
    (fun (r, lav) ->
      let compacted, _ = Record.gc r ~lav in
      match Record.newest r with
      | None -> Record.is_empty compacted
      | Some { payload = Record.Tombstone; version } ->
          Record.is_empty compacted || Record.version_numbers compacted = Record.version_numbers r
          || List.mem version (Record.version_numbers compacted)
      | Some { version; _ } -> List.mem version (Record.version_numbers compacted))

let test_remove_version =
  QCheck.Test.make ~name:"remove_version removes exactly that version" ~count:300
    QCheck.(pair record_arb (int_range 1 40))
    (fun (r, v) ->
      let r' = Record.remove_version r ~version:v in
      (not (List.mem v (Record.version_numbers r')))
      && List.for_all
           (fun u -> u = v || List.mem u (Record.version_numbers r'))
           (Record.version_numbers r))

let () =
  Alcotest.run "record_codec"
    [
      ( "codec",
        List.map QCheck_alcotest.to_alcotest
          [ test_tuple_roundtrip; test_key_order; test_key_prefix_successor ] );
      ( "record",
        List.map QCheck_alcotest.to_alcotest
          [
            test_record_roundtrip;
            test_versions_sorted;
            test_gc_safety;
            test_gc_keeps_newest;
            test_remove_version;
          ] );
    ]
