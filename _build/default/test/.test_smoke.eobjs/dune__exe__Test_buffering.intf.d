test/test_buffering.mli:
