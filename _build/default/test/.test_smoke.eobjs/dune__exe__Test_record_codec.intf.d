test/test_record_codec.mli:
