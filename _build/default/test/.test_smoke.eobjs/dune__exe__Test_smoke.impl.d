test/test_smoke.ml: Alcotest Array Codec Database Keys List Pn Printf Record Sql_plan String Tell_core Tell_kv Tell_sim Txlog Txn Value
