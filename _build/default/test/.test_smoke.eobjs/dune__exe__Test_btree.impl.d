test/test_btree.ml: Alcotest Btree List Printf Random Set Tell_core Tell_kv Tell_sim
