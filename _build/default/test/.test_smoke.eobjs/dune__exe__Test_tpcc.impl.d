test/test_tpcc.ml: Alcotest Array Codec Database List Printf String Tell_core Tell_kv Tell_sim Tell_tpcc Txn Value
