test/test_version_set.mli:
