test/test_cm.ml: Alcotest Commit_manager Hashtbl List Printf Tell_core Tell_kv Tell_sim Version_set
