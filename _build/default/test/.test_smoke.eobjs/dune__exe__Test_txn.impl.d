test/test_txn.ml: Alcotest Array Codec Database List Printf Sql_plan Tell_core Tell_kv Tell_sim Txn Value
