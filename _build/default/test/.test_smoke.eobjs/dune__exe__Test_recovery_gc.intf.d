test/test_recovery_gc.mli:
