test/test_sim.ml: Alcotest Buffer Gen List Printf QCheck QCheck_alcotest Tell_sim
