test/test_baselines.ml: Alcotest Array Float List Printf Tell_baselines Tell_core Tell_sim Tell_tpcc Value
