test/test_cm.mli:
