test/test_sql.ml: Alcotest Array Database List Sql_ast Sql_parser Sql_plan String Tell_core Tell_kv Tell_sim Value
