test/test_query.ml: Alcotest Array List Printf Query Tell_core Value
