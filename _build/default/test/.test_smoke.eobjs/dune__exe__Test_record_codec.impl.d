test/test_record_codec.ml: Alcotest Array Codec Float Int List Printf QCheck QCheck_alcotest Record String Tell_core Value
