test/test_kv.ml: Alcotest Hashtbl List Option Printf String Tell_kv Tell_sim
