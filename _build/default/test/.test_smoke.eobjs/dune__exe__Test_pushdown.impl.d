test/test_pushdown.ml: Alcotest Array Buffer Database List Pn Printf Pushdown QCheck QCheck_alcotest Query Tell_core Tell_kv Tell_sim Txn Value
