test/test_version_set.ml: Alcotest Fmt List QCheck QCheck_alcotest Tell_core Version_set
