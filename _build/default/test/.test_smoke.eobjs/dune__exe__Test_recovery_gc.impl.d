test/test_recovery_gc.ml: Alcotest Codec Commit_manager Database Gc_task Keys List Pn Printf Record Sql_plan Tell_core Tell_kv Tell_sim Txlog Txn Value
