test/test_spec.ml: Alcotest Array Float List Printf Tell_baselines Tell_sim Tell_tpcc
