test/test_buffering.ml: Alcotest Buffer_pool Database List Pn Printf Sql_plan Tell_core Tell_kv Tell_sim Tell_tpcc Txn Value
