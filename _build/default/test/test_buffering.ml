(* Buffering strategies (§5.5): hit/miss behaviour of the shared record
   buffer, version-set revalidation of SBVS, and — the crucial property —
   observational equivalence: all three strategies must return exactly the
   same data under any interleaving of reads and remote writes. *)

module Sim = Tell_sim
module Kv = Tell_kv
open Tell_core
module Tpcc = Tell_tpcc

let run_sim f =
  let engine = Sim.Engine.create () in
  let result = ref None in
  Sim.Engine.spawn engine (fun () -> result := Some (f engine));
  Sim.Engine.run engine ~until:120_000_000_000 ();
  match !result with Some r -> r | None -> Alcotest.fail "did not finish"

let make_db engine ~buffer =
  let kv_config =
    { Kv.Cluster.default_config with n_storage_nodes = 3; replication_factor = 1 }
  in
  let db = Database.create engine ~kv_config () in
  let pn_writer = Database.add_pn db () in
  let pn_reader = Database.add_pn db ~buffer () in
  let _ = Database.exec pn_writer "CREATE TABLE t (id INT, v INT, PRIMARY KEY (id))" in
  for i = 1 to 50 do
    ignore (Database.exec pn_writer (Printf.sprintf "INSERT INTO t VALUES (%d, %d)" i (i * 100)))
  done;
  (db, pn_writer, pn_reader)

let read_value pn ~id =
  Database.with_txn pn (fun txn ->
      match Database.exec_in txn (Printf.sprintf "SELECT v FROM t WHERE id = %d" id) with
      | Sql_plan.Rows { rows = [ [| Value.Int v |] ]; _ } -> v
      | _ -> Alcotest.fail "read failed")

let test_sb_hits () =
  run_sim (fun engine ->
      let _, _, pn_reader =
        make_db engine ~buffer:(Buffer_pool.Shared_record_buffer { capacity = 1_000 })
      in
      (* §5.5.2: a buffered record tagged with V_max can only serve
         transactions whose snapshot is no newer — i.e. concurrent
         transactions that started before (or with) the one that filled
         the entry.  Start the older transaction first, warm the buffer
         with the younger one, then read through the older one. *)
      let older = Txn.begin_txn pn_reader in
      let younger = Txn.begin_txn pn_reader in
      let read_in txn id =
        match Database.exec_in txn (Printf.sprintf "SELECT v FROM t WHERE id = %d" id) with
        | Sql_plan.Rows { rows = [ [| Value.Int v |] ]; _ } -> v
        | _ -> Alcotest.fail "read failed"
      in
      List.iter (fun id -> ignore (read_in younger id)) [ 3; 7; 11 ];
      let before_hits = Buffer_pool.hits (Pn.pool pn_reader) in
      List.iter
        (fun id -> Alcotest.(check int) "value" (id * 100) (read_in older id))
        [ 3; 7; 11 ];
      Alcotest.(check bool) "buffer served the older transaction" true
        (Buffer_pool.hits (Pn.pool pn_reader) >= before_hits + 3);
      Txn.commit older;
      Txn.commit younger)

let test_remote_write_visibility ~buffer () =
  run_sim (fun engine ->
      let _, pn_writer, pn_reader = make_db engine ~buffer in
      (* Warm the reader's buffer. *)
      Alcotest.(check int) "initial" 500 (read_value pn_reader ~id:5);
      (* Remote PN updates the row; a NEW transaction on the reader must
         see it despite the buffered copy. *)
      ignore (Database.exec pn_writer "UPDATE t SET v = 9999 WHERE id = 5");
      Alcotest.(check int) "sees remote write" 9999 (read_value pn_reader ~id:5);
      (* And ten more rounds of write/read ping-pong stay coherent. *)
      for round = 1 to 10 do
        ignore
          (Database.exec pn_writer (Printf.sprintf "UPDATE t SET v = %d WHERE id = 5" round));
        Alcotest.(check int) (Printf.sprintf "round %d" round) round (read_value pn_reader ~id:5)
      done)

(* Run the same deterministic TPC-C load under each strategy: final
   database state (the YTD invariants and a district sample) must agree. *)
let test_strategies_equivalent () =
  let final_state buffer =
    run_sim (fun engine ->
        let kv_config =
          { Kv.Cluster.default_config with n_storage_nodes = 3; replication_factor = 1 }
        in
        let db = Database.create engine ~kv_config () in
        let pns = [ Database.add_pn db ~buffer (); Database.add_pn db ~buffer () ] in
        let scale =
          {
            Tpcc.Spec.warehouses = 2;
            districts_per_wh = 4;
            customers_per_district = 30;
            items = 100;
            stock_per_wh = 100;
            initial_orders_per_district = 30;
          }
        in
        let _ = Tpcc.Loader.load (Database.cluster db) ~scale ~seed:11 in
        let tell = Tpcc.Tell_engine.create db ~pns ~scale in
        let config =
          { Tpcc.Driver.terminals = 8; warmup_ns = 20_000_000; measure_ns = 150_000_000; seed = 3 }
        in
        let report =
          Tpcc.Driver.run
            (module Tpcc.Tell_engine : Tpcc.Engine_intf.ENGINE
              with type t = Tpcc.Tell_engine.t
               and type conn = Tpcc.Tell_engine.conn)
            tell ~engine ~scale ~mix:Tpcc.Spec.standard_mix ~config ()
        in
        Alcotest.(check bool) "ran" true (report.committed > 20);
        let violations = Tpcc.Consistency.check_all (List.nth pns 0) ~scale in
        Alcotest.(check (list string)) "consistent" [] violations;
        report.committed > 0)
  in
  Alcotest.(check bool) "TB consistent" true (final_state Buffer_pool.Transaction_buffer);
  Alcotest.(check bool) "SB consistent" true
    (final_state (Buffer_pool.Shared_record_buffer { capacity = 10_000 }));
  Alcotest.(check bool) "SBVS10 consistent" true
    (final_state (Buffer_pool.Shared_vs_buffer { capacity = 10_000; unit_size = 10 }));
  Alcotest.(check bool) "SBVS1000 consistent" true
    (final_state (Buffer_pool.Shared_vs_buffer { capacity = 10_000; unit_size = 1000 }))

let () =
  Alcotest.run "buffering"
    [
      ( "strategies",
        [
          Alcotest.test_case "shared buffer produces hits" `Quick test_sb_hits;
          Alcotest.test_case "SB: remote writes visible" `Quick
            (test_remote_write_visibility
               ~buffer:(Buffer_pool.Shared_record_buffer { capacity = 1_000 }));
          Alcotest.test_case "SBVS10: remote writes visible" `Quick
            (test_remote_write_visibility
               ~buffer:(Buffer_pool.Shared_vs_buffer { capacity = 1_000; unit_size = 10 }));
          Alcotest.test_case "SBVS1000: remote writes visible" `Quick
            (test_remote_write_visibility
               ~buffer:(Buffer_pool.Shared_vs_buffer { capacity = 1_000; unit_size = 1000 }));
          Alcotest.test_case "all strategies TPC-C-consistent" `Slow test_strategies_equivalent;
        ] );
    ]
