(* TPC-C integration: load a small population, run concurrent terminals,
   then verify the TPC-C consistency conditions — the strongest oracle we
   have that distributed snapshot isolation, conflict detection, rollback,
   and index maintenance interact correctly under real contention. *)

module Sim = Tell_sim
module Kv = Tell_kv
open Tell_core
module Tpcc = Tell_tpcc

let tiny_scale =
  {
    Tpcc.Spec.warehouses = 2;
    districts_per_wh = 4;
    customers_per_district = 30;
    items = 100;
    stock_per_wh = 100;
    initial_orders_per_district = 30;
  }

let build_engine ?(n_pns = 2) ?(rf = 1) ?(scale = tiny_scale) () =
  let engine = Sim.Engine.create () in
  let config =
    { Kv.Cluster.default_config with n_storage_nodes = 3; replication_factor = rf }
  in
  let db = Database.create engine ~kv_config:config () in
  let pns = List.init n_pns (fun _ -> Database.add_pn db ()) in
  let loaded = Tpcc.Loader.load (Database.cluster db) ~scale ~seed:11 in
  Alcotest.(check bool) "population loaded" true (loaded > 0);
  let tell = Tpcc.Tell_engine.create db ~pns ~scale in
  (engine, db, pns, tell)

let test_load_and_read () =
  let engine, _db, pns, _tell = build_engine () in
  let done_ = ref false in
  Sim.Engine.spawn engine (fun () ->
      let pn = List.nth pns 0 in
      Database.with_txn pn (fun txn ->
          (* Every warehouse and district row must be loaded and visible. *)
          for w = 1 to tiny_scale.warehouses do
            (match
               Txn.index_lookup txn ~index:"pk_warehouse" ~key:(Codec.encode_key [ Value.Int w ])
             with
            | [ rid ] -> (
                match Txn.read txn ~table:"warehouse" ~rid with
                | Some tuple -> Alcotest.(check int) "w_id" w (Value.as_int tuple.(0))
                | None -> Alcotest.fail "warehouse row invisible")
            | _ -> Alcotest.fail "warehouse pk lookup failed");
            for d = 1 to tiny_scale.districts_per_wh do
              match
                Txn.index_lookup txn ~index:"pk_district"
                  ~key:(Codec.encode_key [ Value.Int w; Value.Int d ])
              with
              | [ _ ] -> ()
              | _ -> Alcotest.failf "district %d/%d pk lookup failed" w d
            done
          done);
      done_ := true);
  Sim.Engine.run engine ~until:10_000_000_000 ();
  Alcotest.(check bool) "completed" true !done_

let run_mix ?(rf = 1) ?(terminals = 8) mix =
  let engine, _db, pns, tell = build_engine ~rf () in
  let config =
    { Tpcc.Driver.terminals; warmup_ns = 50_000_000; measure_ns = 400_000_000; seed = 3 }
  in
  let report =
    Tpcc.Driver.run
      (module Tpcc.Tell_engine : Tpcc.Engine_intf.ENGINE
        with type t = Tpcc.Tell_engine.t
         and type conn = Tpcc.Tell_engine.conn)
      tell ~engine ~scale:tiny_scale ~mix ~config ()
  in
  (engine, pns, report)

let test_standard_mix_runs () =
  let _, _, report = run_mix Tpcc.Spec.standard_mix in
  Alcotest.(check bool) "committed some transactions" true (report.committed > 50);
  Alcotest.(check bool) "made new orders" true (report.new_order_commits > 10);
  Alcotest.(check bool)
    (Printf.sprintf "abort rate sane (%.1f%%)" (Tpcc.Driver.abort_rate report))
    true
    (Tpcc.Driver.abort_rate report < 60.0)

let test_consistency_after_run () =
  let engine, pns, report = run_mix Tpcc.Spec.standard_mix in
  Alcotest.(check bool) "ran" true (report.committed > 0);
  (* Quiesce, then check the TPC-C consistency conditions. *)
  let violations = ref None in
  Sim.Engine.spawn engine (fun () ->
      violations := Some (Tpcc.Consistency.check_all (List.nth pns 0) ~scale:tiny_scale));
  Sim.Engine.run engine ~until:(Sim.Engine.now engine + 30_000_000_000) ();
  match !violations with
  | None -> Alcotest.fail "consistency check did not finish"
  | Some [] -> ()
  | Some violations -> Alcotest.failf "violations:\n%s" (String.concat "\n" violations)

let test_read_intensive_mix () =
  let _, _, report = run_mix Tpcc.Spec.read_intensive_mix in
  Alcotest.(check bool) "committed" true (report.committed > 50);
  (* Read-heavy mix: aborts should be much rarer than the write mix. *)
  Alcotest.(check bool)
    (Printf.sprintf "low abort rate (%.2f%%)" (Tpcc.Driver.abort_rate report))
    true
    (Tpcc.Driver.abort_rate report < 10.0)

let test_determinism () =
  (* The whole stack — engine, store, MVCC, B+tree, driver — must be a
     deterministic function of the seed. *)
  let run () =
    let _, _, report = run_mix Tpcc.Spec.standard_mix in
    (report.committed, report.aborted, report.user_aborts, report.new_order_commits)
  in
  let a = run () in
  let b = run () in
  Alcotest.(check bool)
    (Printf.sprintf "identical outcomes (%d,%d,%d,%d)"
       (match a with c, _, _, _ -> c)
       (match a with _, x, _, _ -> x)
       (match a with _, _, u, _ -> u)
       (match a with _, _, _, n -> n))
    true (a = b)

let () =
  Alcotest.run "tpcc"
    [
      ( "tell",
        [
          Alcotest.test_case "load and read population" `Quick test_load_and_read;
          Alcotest.test_case "standard mix runs" `Quick test_standard_mix_runs;
          Alcotest.test_case "consistency after concurrent run" `Quick test_consistency_after_run;
          Alcotest.test_case "read-intensive mix" `Quick test_read_intensive_mix;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
    ]
