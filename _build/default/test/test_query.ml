(* The query engine's expressions and operators, tested directly on
   in-memory row lists (no cluster needed except for the scan tests). *)

open Tell_core

let v i = Value.Int i
let row l = Array.of_list (List.map v l)

let test_eval_arithmetic () =
  let r = row [ 10; 3 ] in
  let eval e = Query.eval r e in
  Alcotest.(check bool) "add" true (Value.equal (eval (Query.Binop (Query.Add, Query.Col 0, Query.Col 1))) (v 13));
  Alcotest.(check bool) "sub" true (Value.equal (eval (Query.Binop (Query.Sub, Query.Col 0, Query.Col 1))) (v 7));
  Alcotest.(check bool) "mul" true (Value.equal (eval (Query.Binop (Query.Mul, Query.Col 0, Query.Col 1))) (v 30));
  Alcotest.(check bool) "div" true (Value.equal (eval (Query.Binop (Query.Div, Query.Col 0, Query.Col 1))) (v 3));
  Alcotest.(check bool) "mod" true (Value.equal (eval (Query.Binop (Query.Mod, Query.Col 0, Query.Col 1))) (v 1));
  Alcotest.(check bool) "mixed int/float" true
    (Value.equal
       (Query.eval [| Value.Int 1; Value.Float 0.5 |] (Query.Binop (Query.Add, Query.Col 0, Query.Col 1)))
       (Value.Float 1.5))

let test_eval_null_propagation () =
  let r = [| Value.Null; Value.Int 5 |] in
  Alcotest.(check bool) "null + x = null" true
    (Value.is_null (Query.eval r (Query.Binop (Query.Add, Query.Col 0, Query.Col 1))));
  Alcotest.(check bool) "null = x is not true" false
    (Query.eval_bool r (Query.Binop (Query.Eq, Query.Col 0, Query.Col 1)));
  Alcotest.(check bool) "null <> x is not true either" false
    (Query.eval_bool r (Query.Binop (Query.Ne, Query.Col 0, Query.Col 1)));
  Alcotest.(check bool) "is_null" true (Query.eval_bool r (Query.Is_null (Query.Col 0)))

let test_filter_project () =
  let input = Query.of_list [ row [ 1; 10 ]; row [ 2; 20 ]; row [ 3; 30 ] ] in
  let out =
    Query.to_list
      (Query.project
         [ Query.Binop (Query.Mul, Query.Col 1, Query.Lit (v 2)) ]
         (Query.filter (Query.Binop (Query.Ge, Query.Col 0, Query.Lit (v 2))) input))
  in
  Alcotest.(check int) "rows" 2 (List.length out);
  Alcotest.(check bool) "values" true
    (List.for_all2 (fun r expected -> Value.equal r.(0) (v expected)) out [ 40; 60 ])

let test_sort_stability_and_direction () =
  let input = Query.of_list [ row [ 2; 1 ]; row [ 1; 2 ]; row [ 2; 3 ]; row [ 1; 4 ] ] in
  let out = Query.to_list (Query.sort ~by:[ (Query.Col 0, `Asc) ] input) in
  (* Stable: rows with equal keys keep their input order (2nd column). *)
  Alcotest.(check (list int)) "stable sort" [ 2; 4; 1; 3 ]
    (List.map (fun r -> Value.as_int r.(1)) out);
  let desc = Query.to_list (Query.sort ~by:[ (Query.Col 0, `Desc) ] (Query.of_list [ row [ 1; 0 ]; row [ 3; 0 ]; row [ 2; 0 ] ])) in
  Alcotest.(check (list int)) "desc" [ 3; 2; 1 ] (List.map (fun r -> Value.as_int r.(0)) desc)

let test_limit_distinct () =
  let input () = Query.of_list [ row [ 1 ]; row [ 1 ]; row [ 2 ]; row [ 3 ]; row [ 2 ] ] in
  Alcotest.(check int) "limit" 3 (List.length (Query.to_list (Query.limit 3 (input ()))));
  Alcotest.(check int) "distinct" 3 (List.length (Query.to_list (Query.distinct (input ()))))

let test_nested_loop_join () =
  let outer = Query.of_list [ row [ 1 ]; row [ 2 ] ] in
  let inner outer_row =
    let k = Value.as_int outer_row.(0) in
    Query.of_list (List.init k (fun i -> row [ (k * 10) + i ]))
  in
  let out = Query.to_list (Query.nested_loop_join ~outer ~inner) in
  Alcotest.(check (list (list int))) "concatenated rows"
    [ [ 1; 10 ]; [ 2; 20 ]; [ 2; 21 ] ]
    (List.map (fun r -> Array.to_list (Array.map Value.as_int r)) out)

let test_aggregate_groups () =
  let input =
    Query.of_list [ row [ 1; 10 ]; row [ 1; 20 ]; row [ 2; 5 ]; row [ 2; 7 ]; row [ 2; 9 ] ]
  in
  let out =
    Query.to_list
      (Query.aggregate ~group_by:[ Query.Col 0 ]
         ~aggs:[ Query.Count_star; Query.Sum (Query.Col 1); Query.Avg (Query.Col 1) ]
         input)
  in
  let sorted = List.sort (fun a b -> Value.compare a.(0) b.(0)) out in
  match sorted with
  | [ g1; g2 ] ->
      Alcotest.(check int) "g1 count" 2 (Value.as_int g1.(1));
      Alcotest.(check int) "g1 sum" 30 (Value.as_int g1.(2));
      Alcotest.(check (float 1e-9)) "g2 avg" 7.0 (Value.as_float g2.(3))
  | _ -> Alcotest.fail "expected two groups"

let test_aggregate_empty_input () =
  let out =
    Query.to_list
      (Query.aggregate ~group_by:[]
         ~aggs:[ Query.Count_star; Query.Sum (Query.Col 0); Query.Min (Query.Col 0) ]
         (Query.of_list []))
  in
  match out with
  | [ r ] ->
      Alcotest.(check int) "count 0" 0 (Value.as_int r.(0));
      Alcotest.(check bool) "sum null" true (Value.is_null r.(1));
      Alcotest.(check bool) "min null" true (Value.is_null r.(2))
  | _ -> Alcotest.fail "aggregates over empty input emit one row"

let test_aggregate_empty_groups () =
  let out =
    Query.to_list (Query.aggregate ~group_by:[ Query.Col 0 ] ~aggs:[ Query.Count_star ] (Query.of_list []))
  in
  Alcotest.(check int) "no groups from empty input" 0 (List.length out)

(* Reference LIKE implementation via Str-free naive regex expansion. *)
let test_like () =
  let cases =
    [
      ("abc", "abc", true);
      ("abc", "ab", false);
      ("a%", "abc", true);
      ("%c", "abc", true);
      ("%b%", "abc", true);
      ("a_c", "abc", true);
      ("a_c", "abbc", false);
      ("%", "", true);
      ("_", "", false);
      ("a%b%c", "axxbyyc", true);
      ("a%b%c", "acb", false);
      ("%%", "anything", true);
      ("BAR%", "BARBARBAR", true);
    ]
  in
  List.iter
    (fun (pattern, text, expected) ->
      Alcotest.(check bool)
        (Printf.sprintf "%S LIKE %S" text pattern)
        expected
        (Query.eval_bool [| Value.Str text |] (Query.Like (Query.Col 0, pattern))))
    cases;
  Alcotest.(check bool) "NULL LIKE is not true" false
    (Query.eval_bool [| Value.Null |] (Query.Like (Query.Col 0, "%")))

let () =
  Alcotest.run "query"
    [
      ( "expressions",
        [
          Alcotest.test_case "arithmetic" `Quick test_eval_arithmetic;
          Alcotest.test_case "null propagation" `Quick test_eval_null_propagation;
        ] );
      ( "operators",
        [
          Alcotest.test_case "filter + project" `Quick test_filter_project;
          Alcotest.test_case "sort stability/direction" `Quick test_sort_stability_and_direction;
          Alcotest.test_case "limit + distinct" `Quick test_limit_distinct;
          Alcotest.test_case "nested-loop join" `Quick test_nested_loop_join;
          Alcotest.test_case "grouped aggregation" `Quick test_aggregate_groups;
          Alcotest.test_case "aggregate over empty input" `Quick test_aggregate_empty_input;
          Alcotest.test_case "group-by over empty input" `Quick test_aggregate_empty_groups;
          Alcotest.test_case "LIKE matching" `Quick test_like;
        ] );
    ]
