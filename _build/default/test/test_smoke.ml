(* End-to-end smoke tests: the full stack (simulator, record store, MVCC,
   B+tree, SQL) driven through small scenarios. *)

module Sim = Tell_sim
module Kv = Tell_kv
open Tell_core

(* Background service fibers (commit-manager sync, failure detector) never
   terminate, so the event queue never drains: run with a generous virtual
   deadline instead. *)
let run_sim ?(until = 60_000_000_000) f =
  let engine = Sim.Engine.create () in
  let result = ref None in
  Sim.Engine.spawn engine (fun () -> result := Some (f engine));
  Sim.Engine.run engine ~until ();
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "simulation fiber did not complete"

let small_config =
  { Kv.Cluster.default_config with n_storage_nodes = 3; replication_factor = 1 }

let make_db ?(config = small_config) ?(n_commit_managers = 1) engine =
  Database.create engine ~kv_config:config ~n_commit_managers ()

let test_kv_basic () =
  run_sim (fun engine ->
      let cluster = Kv.Cluster.create engine small_config in
      let client = Kv.Client.create cluster ~group:(Sim.Engine.root_group engine) in
      Alcotest.(check (option (pair string int))) "absent" None (Kv.Client.get client "k1");
      Kv.Client.put client "k1" "hello";
      (match Kv.Client.get client "k1" with
      | Some ("hello", token) -> (
          (* LL/SC: conditional write with the right token succeeds... *)
          match Kv.Client.put_if client "k1" (Some token) "world" with
          | `Ok _ -> ()
          | `Conflict -> Alcotest.fail "put_if with fresh token must succeed")
      | other ->
          Alcotest.failf "unexpected get result: %s"
            (match other with None -> "None" | Some (v, _) -> v));
      (* ...and with a stale token fails. *)
      (match Kv.Client.put_if client "k1" (Some 1) "stale" with
      | `Conflict -> ()
      | `Ok _ -> Alcotest.fail "stale token must conflict");
      Alcotest.(check int) "counter" 5 (Kv.Client.increment client "cnt" 5);
      Alcotest.(check int) "counter again" 8 (Kv.Client.increment client "cnt" 3))

let test_txn_commit_and_read () =
  run_sim (fun engine ->
      let db = make_db engine in
      let pn = Database.add_pn db () in
      let _ =
        Database.exec pn "CREATE TABLE accounts (id INT, owner TEXT, balance INT, PRIMARY KEY (id))"
      in
      let _ = Database.exec pn "INSERT INTO accounts VALUES (1, 'alice', 100), (2, 'bob', 50)" in
      let result = Database.exec pn "SELECT owner, balance FROM accounts WHERE id = 1" in
      (match Database.rows result with
      | [ [| Value.Str "alice"; Value.Int 100 |] ] -> ()
      | rows -> Alcotest.failf "unexpected rows (%d)" (List.length rows));
      let _ = Database.exec pn "UPDATE accounts SET balance = balance - 30 WHERE id = 1" in
      let result = Database.exec pn "SELECT balance FROM accounts WHERE id = 1" in
      match Database.rows result with
      | [ [| Value.Int 70 |] ] -> ()
      | _ -> Alcotest.fail "update not visible")

let test_snapshot_isolation () =
  run_sim (fun engine ->
      let db = make_db engine in
      let pn = Database.add_pn db () in
      let _ = Database.exec pn "CREATE TABLE t (id INT, v INT, PRIMARY KEY (id))" in
      let _ = Database.exec pn "INSERT INTO t VALUES (1, 10)" in
      (* A long-running reader must not observe a concurrent committed
         update (repeatable snapshot reads). *)
      let reader = Txn.begin_txn pn in
      let read_v () =
        match Database.exec_in reader "SELECT v FROM t WHERE id = 1" with
        | Sql_plan.Rows { rows = [ [| Value.Int v |] ]; _ } -> v
        | _ -> Alcotest.fail "bad read"
      in
      Alcotest.(check int) "before concurrent write" 10 (read_v ());
      let _ = Database.exec pn "UPDATE t SET v = 99 WHERE id = 1" in
      Alcotest.(check int) "after concurrent write (snapshot)" 10 (read_v ());
      Txn.commit reader;
      (* A fresh transaction sees the new version. *)
      match Database.exec pn "SELECT v FROM t WHERE id = 1" with
      | Sql_plan.Rows { rows = [ [| Value.Int 99 |] ]; _ } -> ()
      | _ -> Alcotest.fail "new transaction must see the update")

let test_write_write_conflict () =
  run_sim (fun engine ->
      let db = make_db engine in
      let pn = Database.add_pn db () in
      let _ = Database.exec pn "CREATE TABLE t (id INT, v INT, PRIMARY KEY (id))" in
      let _ = Database.exec pn "INSERT INTO t VALUES (1, 0)" in
      let t1 = Txn.begin_txn pn in
      let t2 = Txn.begin_txn pn in
      let rid1 =
        match Txn.index_lookup t1 ~index:"pk_t" ~key:(Codec.encode_key [ Value.Int 1 ]) with
        | [ rid ] -> rid
        | _ -> Alcotest.fail "pk lookup"
      in
      Txn.update t1 ~table:"t" ~rid:rid1 [| Value.Int 1; Value.Int 111 |];
      Txn.update t2 ~table:"t" ~rid:rid1 [| Value.Int 1; Value.Int 222 |];
      Txn.commit t1;
      (match Txn.commit t2 with
      | () -> Alcotest.fail "second writer must conflict"
      | exception Txn.Conflict _ -> ());
      (* The surviving value is t1's, and t2 left no trace. *)
      match Database.exec pn "SELECT v FROM t WHERE id = 1" with
      | Sql_plan.Rows { rows = [ [| Value.Int 111 |] ]; _ } -> ()
      | _ -> Alcotest.fail "t1's write must survive")

let test_sql_join_and_aggregate () =
  run_sim (fun engine ->
      let db = make_db engine in
      let pn = Database.add_pn db () in
      let _ = Database.exec pn "CREATE TABLE dept (id INT, name TEXT, PRIMARY KEY (id))" in
      let _ =
        Database.exec pn "CREATE TABLE emp (id INT, dept_id INT, salary INT, PRIMARY KEY (id))"
      in
      let _ = Database.exec pn "INSERT INTO dept VALUES (1, 'eng'), (2, 'ops')" in
      let _ =
        Database.exec pn
          "INSERT INTO emp VALUES (1, 1, 100), (2, 1, 200), (3, 2, 80), (4, 2, 120)"
      in
      let result =
        Database.exec pn
          "SELECT d.name, COUNT(*), SUM(e.salary) FROM dept d, emp e WHERE e.dept_id = d.id \
           GROUP BY d.name ORDER BY d.name"
      in
      match Database.rows result with
      | [
       [| Value.Str "eng"; Value.Int 2; Value.Int 300 |];
       [| Value.Str "ops"; Value.Int 2; Value.Int 200 |];
      ] ->
          ()
      | rows ->
          Alcotest.failf "unexpected join/aggregate result: %s"
            (String.concat "; "
               (List.map
                  (fun row ->
                    String.concat ","
                      (Array.to_list (Array.map Value.to_string row)))
                  rows)))

let test_pn_crash_recovery () =
  run_sim (fun engine ->
      let db = make_db engine in
      let pn1 = Database.add_pn db () in
      let pn2 = Database.add_pn db () in
      let _ = Database.exec pn1 "CREATE TABLE t (id INT, v INT, PRIMARY KEY (id))" in
      let _ = Database.exec pn1 "INSERT INTO t VALUES (1, 1)" in
      (* Manually walk a transaction into the applied-but-uncommitted
         state, then crash its PN. *)
      let victim = Txn.begin_txn pn1 in
      let rid =
        match Txn.index_lookup victim ~index:"pk_t" ~key:(Codec.encode_key [ Value.Int 1 ]) with
        | [ rid ] -> rid
        | _ -> Alcotest.fail "pk lookup"
      in
      Txn.update victim ~table:"t" ~rid [| Value.Int 1; Value.Int 666 |];
      (* Simulate the crash mid-commit: log + apply, no commit flag.  We
         reproduce the first half of the commit path by hand. *)
      let entry =
        {
          Txlog.tid = Txn.tid victim;
          pn_id = Pn.id pn1;
          timestamp = 0;
          write_set = [ Keys.record ~table:"t" ~rid ];
          committed = false;
        }
      in
      Txlog.append (Pn.kv pn1) entry;
      let key = Keys.record ~table:"t" ~rid in
      (match Kv.Client.get (Pn.kv pn1) key with
      | Some (data, token) ->
          let record = Record.decode data in
          let record' =
            Record.add_version record ~version:(Txn.tid victim) (Record.Tuple [| Value.Int 1; Value.Int 666 |])
          in
          (match Kv.Client.put_if (Pn.kv pn1) key (Some token) (Record.encode record') with
          | `Ok _ -> ()
          | `Conflict -> Alcotest.fail "apply failed")
      | None -> Alcotest.fail "record missing");
      Database.crash_pn db pn1;
      let rolled_back = Database.recover_crashed_pns db in
      Alcotest.(check int) "one transaction rolled back" 1 rolled_back;
      (* The partially applied version is gone: pn2 reads the old value. *)
      match Database.exec pn2 "SELECT v FROM t WHERE id = 1" with
      | Sql_plan.Rows { rows = [ [| Value.Int 1 |] ]; _ } -> ()
      | _ -> Alcotest.fail "recovery must roll the partial update back")

let test_sn_failover () =
  run_sim (fun engine ->
      let config =
        { Kv.Cluster.default_config with n_storage_nodes = 3; replication_factor = 2 }
      in
      let db = make_db ~config engine in
      let pn = Database.add_pn db () in
      let _ = Database.exec pn "CREATE TABLE t (id INT, v INT, PRIMARY KEY (id))" in
      for i = 1 to 50 do
        ignore (Database.exec pn (Printf.sprintf "INSERT INTO t VALUES (%d, %d)" i (i * 10)))
      done;
      Database.crash_storage_node db 0;
      (* Give the failure detector time to promote replicas. *)
      Sim.Engine.sleep engine 2_000_000;
      (* All 50 rows must still be readable (RF2: no data loss). *)
      match Database.exec pn "SELECT COUNT(*) FROM t" with
      | Sql_plan.Rows { rows = [ [| Value.Int 50 |] ]; _ } -> ()
      | Sql_plan.Rows { rows = [ [| Value.Int n |] ]; _ } ->
          Alcotest.failf "lost rows: only %d of 50 visible" n
      | _ -> Alcotest.fail "count query failed")

let () =
  Alcotest.run "smoke"
    [
      ( "end-to-end",
        [
          Alcotest.test_case "kv basic + LL/SC" `Quick test_kv_basic;
          Alcotest.test_case "txn commit and read" `Quick test_txn_commit_and_read;
          Alcotest.test_case "snapshot isolation" `Quick test_snapshot_isolation;
          Alcotest.test_case "write-write conflict" `Quick test_write_write_conflict;
          Alcotest.test_case "sql join + aggregate" `Quick test_sql_join_and_aggregate;
          Alcotest.test_case "pn crash recovery" `Quick test_pn_crash_recovery;
          Alcotest.test_case "sn failover" `Quick test_sn_failover;
        ] );
    ]
