(* Baseline engines: each must run the TPC-C mixes and keep the data
   consistent (W_YTD = sum D_YTD) under concurrency — they are real
   engines with simplified cost models, not mock counters. *)

module Sim = Tell_sim
open Tell_core
module Tpcc = Tell_tpcc
module B = Tell_baselines

let tiny_scale =
  {
    Tpcc.Spec.warehouses = 4;
    districts_per_wh = 4;
    customers_per_district = 30;
    items = 100;
    stock_per_wh = 100;
    initial_orders_per_district = 30;
  }

let driver_config =
  { Tpcc.Driver.terminals = 12; warmup_ns = 50_000_000; measure_ns = 400_000_000; seed = 3 }

let f = Value.as_float

let ytd_of_store store ~scale =
  let w_sum = ref 0.0 and d_sum = ref 0.0 in
  for w = 1 to scale.Tpcc.Spec.warehouses do
    (match B.Row_store.get store ~table:"warehouse" ~key:[ w ] with
    | Some row -> w_sum := !w_sum +. f row.(7)
    | None -> ());
    for d = 1 to scale.districts_per_wh do
      match B.Row_store.get store ~table:"district" ~key:[ w; d ] with
      | Some row -> d_sum := !d_sum +. f row.(8)
      | None -> ()
    done
  done;
  (!w_sum, !d_sum)

let check_ytd ~what (w_sum, d_sum) =
  Alcotest.(check bool)
    (Printf.sprintf "%s: W_YTD %.2f = sum(D_YTD) %.2f" what w_sum d_sum)
    true
    (Float.abs (w_sum -. d_sum) < 0.01)

let merge_stores stores =
  (* Warehouse-partitioned stores: each warehouse/district row lives in
     exactly one store, so summing per store and adding up is exact. *)
  List.fold_left
    (fun (w_acc, d_acc) store ->
      let w, d = ytd_of_store store ~scale:tiny_scale in
      (w_acc +. w, d_acc +. d))
    (0.0, 0.0) stores

let test_voltdb () =
  let engine = Sim.Engine.create () in
  let volt =
    B.Voltdb_model.create engine
      ~config:{ B.Voltdb_model.default_config with n_nodes = 2 }
      ~scale:tiny_scale
  in
  let report =
    Tpcc.Driver.run
      (module B.Voltdb_model : Tpcc.Engine_intf.ENGINE
        with type t = B.Voltdb_model.t
         and type conn = B.Voltdb_model.conn)
      volt ~engine ~scale:tiny_scale ~mix:Tpcc.Spec.standard_mix ~config:driver_config ()
  in
  Alcotest.(check bool) "committed" true (report.committed > 50);
  let single, multi = B.Voltdb_model.stats volt in
  Alcotest.(check bool) "has single-partition txns" true (single > 0);
  Alcotest.(check bool) "has multi-partition txns" true (multi > 0);
  check_ytd ~what:"voltdb"
    (merge_stores (Array.to_list (Array.map (fun p -> p.B.Voltdb_model.store) volt.partitions)))

let test_voltdb_shardable_all_single () =
  let engine = Sim.Engine.create () in
  let volt =
    B.Voltdb_model.create engine ~config:B.Voltdb_model.default_config ~scale:tiny_scale
  in
  let report =
    Tpcc.Driver.run
      (module B.Voltdb_model : Tpcc.Engine_intf.ENGINE
        with type t = B.Voltdb_model.t
         and type conn = B.Voltdb_model.conn)
      volt ~engine ~scale:tiny_scale ~mix:Tpcc.Spec.shardable_mix ~config:driver_config ()
  in
  Alcotest.(check bool) "committed" true (report.committed > 50);
  let _, multi = B.Voltdb_model.stats volt in
  Alcotest.(check int) "no multi-partition txns under shardable mix" 0 multi

let test_ndb () =
  let engine = Sim.Engine.create () in
  let ndb = B.Ndb_model.create engine ~config:B.Ndb_model.default_config ~scale:tiny_scale in
  let report =
    Tpcc.Driver.run
      (module B.Ndb_model : Tpcc.Engine_intf.ENGINE
        with type t = B.Ndb_model.t
         and type conn = B.Ndb_model.conn)
      ndb ~engine ~scale:tiny_scale ~mix:Tpcc.Spec.standard_mix ~config:driver_config ()
  in
  Alcotest.(check bool) "committed" true (report.committed > 20);
  check_ytd ~what:"ndb"
    (merge_stores (Array.to_list (Array.map (fun dn -> dn.B.Ndb_model.store) ndb.data_nodes)))

let test_fdb () =
  let engine = Sim.Engine.create () in
  let fdb = B.Fdb_model.create engine ~config:B.Fdb_model.default_config ~scale:tiny_scale in
  let report =
    Tpcc.Driver.run
      (module B.Fdb_model : Tpcc.Engine_intf.ENGINE
        with type t = B.Fdb_model.t
         and type conn = B.Fdb_model.conn)
      fdb ~engine ~scale:tiny_scale ~mix:Tpcc.Spec.standard_mix ~config:driver_config ()
  in
  Alcotest.(check bool) "committed" true (report.committed > 10);
  check_ytd ~what:"fdb" (ytd_of_store fdb.store ~scale:tiny_scale)

let () =
  Alcotest.run "baselines"
    [
      ( "engines",
        [
          Alcotest.test_case "voltdb standard mix + consistency" `Quick test_voltdb;
          Alcotest.test_case "voltdb shardable is all single-partition" `Quick
            test_voltdb_shardable_all_single;
          Alcotest.test_case "mysql-cluster standard mix + consistency" `Quick test_ndb;
          Alcotest.test_case "foundationdb standard mix + consistency" `Quick test_fdb;
        ] );
    ]
