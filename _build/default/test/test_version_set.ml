(* Property tests for the snapshot-descriptor algebra (§4.2, §5.5). *)

open Tell_core

(* A version set built from a base and a few sparse members above it. *)
let vs_gen =
  QCheck.Gen.(
    let* base = int_range 0 50 in
    let* extras = list_size (int_range 0 10) (int_range 1 30) in
    return (List.fold_left (fun acc d -> Version_set.add acc (Version_set.base acc + d)) (Version_set.of_base base) extras))

let vs_arb = QCheck.make ~print:(Fmt.to_to_string Version_set.pp) vs_gen

let members vs =
  List.init (Version_set.max_elt vs + 2) (fun i -> i)
  |> List.filter (Version_set.mem vs)

let test_add_mem =
  QCheck.Test.make ~name:"add makes member" ~count:500
    QCheck.(pair vs_arb (int_range 0 100))
    (fun (vs, x) -> Version_set.mem (Version_set.add vs x) x)

let test_add_preserves =
  QCheck.Test.make ~name:"add preserves existing members" ~count:500
    QCheck.(pair vs_arb (int_range 0 100))
    (fun (vs, x) ->
      let vs' = Version_set.add vs x in
      List.for_all (Version_set.mem vs') (members vs))

let test_base_is_downward_closed =
  QCheck.Test.make ~name:"everything up to the base is a member" ~count:200 vs_arb (fun vs ->
      let b = Version_set.base vs in
      List.for_all (Version_set.mem vs) (List.init (b + 1) (fun i -> i)))

let test_normalization =
  QCheck.Test.make ~name:"contiguous members above base are folded into it" ~count:200
    QCheck.(int_range 0 20)
    (fun base ->
      let vs = Version_set.of_base base in
      let vs = Version_set.add vs (base + 1) in
      let vs = Version_set.add vs (base + 2) in
      Version_set.base vs = base + 2 && Version_set.cardinal_above vs = 0)

let test_union_is_lub =
  QCheck.Test.make ~name:"union contains both operands' members" ~count:300
    QCheck.(pair vs_arb vs_arb)
    (fun (a, b) ->
      let u = Version_set.union a b in
      List.for_all (Version_set.mem u) (members a)
      && List.for_all (Version_set.mem u) (members b)
      && Version_set.subset a u && Version_set.subset b u)

let test_subset_semantics =
  QCheck.Test.make ~name:"subset agrees with member-wise inclusion" ~count:500
    QCheck.(pair vs_arb vs_arb)
    (fun (a, b) ->
      Version_set.subset a b = List.for_all (Version_set.mem b) (members a))

let test_codec_roundtrip =
  QCheck.Test.make ~name:"encode/decode round trip" ~count:300 vs_arb (fun vs ->
      Version_set.equal vs (Version_set.decode (Version_set.encode vs)))

let test_equal_reflexive =
  QCheck.Test.make ~name:"equal is reflexive, subset both ways" ~count:200
    QCheck.(pair vs_arb vs_arb)
    (fun (a, b) ->
      Version_set.equal a b = (Version_set.subset a b && Version_set.subset b a))

let () =
  Alcotest.run "version_set"
    [
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            test_add_mem;
            test_add_preserves;
            test_base_is_downward_closed;
            test_normalization;
            test_union_is_lub;
            test_subset_semantics;
            test_codec_roundtrip;
            test_equal_reflexive;
          ] );
    ]
