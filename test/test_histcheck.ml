(* The Adya-style SI anomaly checker (lib/histcheck, DESIGN.md §7) on
   hand-built histories: one accepting and one rejecting case per anomaly
   class, witness minimality, version-0 bulk-load visibility, the
   tombstone-GC exemption, ghost-commit override, and the dump codec.

   Version numbers in hand-built histories need not equal tids — the
   checker orders versions by number, which is how G0 (a pure write
   cycle) becomes representable even though the engine's tid-ordered
   installs can never produce one. *)

module H = Tell_core.History
module V = Tell_core.Version_set
module C = Tell_histcheck.Checker
module D = Tell_histcheck.Dsg

let vs ?(above = []) base = List.fold_left V.add (V.of_base base) above
let b ?(above = []) tid base = H.Begin { tid; pn_id = 0; snapshot = vs ~above base }
let r tid key version = H.Read { tid; key; version; intermediate = false }
let ri tid key version = H.Read { tid; key; version; intermediate = true }
let w ?version ?(tombstone = false) tid key =
  H.Write { tid; key; version = Option.value ~default:tid version; tombstone }
let c tid = H.Commit { tid }
let a tid = H.Abort { tid }
let x tid = H.Rolled_back { tid }

let classes h =
  List.sort_uniq compare
    (List.map (fun (an : C.anomaly) -> C.cls_name an.C.a_class) (C.analyze h).C.r_anomalies)

let check_classes name expected h =
  Alcotest.(check (list string)) name (List.sort_uniq compare expected) (classes h)

(* --- per-class accept / reject --------------------------------------------------- *)

let test_clean_serial () =
  check_classes "serial history accepted" []
    [ b 1 0; r 1 "k" 0; w 1 "k"; c 1; b 2 1; r 2 "k" 1; w 2 "k"; c 2 ]

let test_g1a () =
  check_classes "committed read of aborted write" [ "G1a" ]
    [ b 1 0; w 1 "k"; a 1; b 2 1; r 2 "k" 1; c 2 ];
  check_classes "aborted reader of aborted write accepted" []
    [ b 1 0; w 1 "k"; a 1; b 2 1; r 2 "k" 1; a 2 ];
  (* A never-decided transaction counts as aborted. *)
  check_classes "committed read of undecided write" [ "G1a" ]
    [ b 1 0; w 1 "k"; b 2 1; r 2 "k" 1; c 2 ]

let test_g1b () =
  check_classes "intermediate read" [ "G1b" ]
    [ b 1 0; w 1 "k"; c 1; b 2 1; ri 2 "k" 1; c 2 ];
  check_classes "final read accepted" []
    [ b 1 0; w 1 "k"; c 1; b 2 1; r 2 "k" 1; c 2 ]

let test_g1c () =
  (* T1 observes T2's write of y yet installs the earlier version of x:
     ww(x) T1->T2 plus wr(y) T2->T1. *)
  check_classes "ww/wr dependency cycle" [ "G1c" ]
    [ b 2 0; w 2 "x"; w 2 "y"; c 2; b 1 2; r 1 "y" 2; w 1 "x"; c 1 ];
  check_classes "same shape without the cycle accepted" []
    [ b 2 0; w 2 "x"; w 2 "y"; c 2; b 1 0; r 1 "y" 0; c 1 ]

let test_g0 () =
  (* Opposed version orders on two keys, no reads at all. *)
  check_classes "write cycle" [ "G0" ]
    [ b 1 0; w ~version:1 1 "x"; w ~version:4 1 "y"; c 1;
      b 2 0; w ~version:2 2 "x"; w ~version:3 2 "y"; c 2 ];
  check_classes "aligned version orders accepted" []
    [ b 1 0; w ~version:1 1 "x"; w ~version:3 1 "y"; c 1;
      b 2 0; w ~version:2 2 "x"; w ~version:4 2 "y"; c 2 ]

let test_g_si () =
  (* T1 -ww(x)-> T2 -wr(y)-> T3 -rw(z)-> T1: one anti-dependency only, so
     SI must have prevented it. *)
  check_classes "single-rw cycle rejected" [ "G-SI" ]
    [ b 1 0; w ~version:1 1 "x"; w ~version:1 1 "z"; c 1;
      b 2 1; w ~version:2 2 "x"; w ~version:2 2 "y"; c 2;
      b 3 ~above:[ 2 ] 0; r 3 "y" 2; r 3 "z" 0; c 3 ]

let test_write_skew_accepted () =
  (* Two adjacent anti-dependencies: the one cycle shape SI admits. *)
  check_classes "write skew accepted" []
    [ b 1 0; r 1 "y" 0; w 1 "x"; c 1; b 2 0; r 2 "x" 0; w 2 "y"; c 2 ]

let test_lost_update () =
  check_classes "both concurrent writers committed" [ "lost-update" ]
    [ b 1 0; r 1 "k" 0; w 1 "k"; c 1; b 2 0; r 2 "k" 0; w 2 "k"; c 2 ];
  check_classes "first-committer-wins accepted" []
    [ b 1 0; r 1 "k" 0; w 1 "k"; c 1; b 2 0; r 2 "k" 0; w 2 "k"; a 2 ]

let test_future_read () =
  check_classes "read outside the snapshot" [ "future-read" ]
    [ b 2 0; w 2 "k"; c 2; b 1 0; r 1 "k" 2; c 1 ];
  check_classes "read inside the snapshot accepted" []
    [ b 2 0; w 2 "k"; c 2; b 1 2; r 1 "k" 2; c 1 ]

let test_stale_read () =
  check_classes "snapshot admits a newer version" [ "stale-read" ]
    [ b 2 0; w 2 "k"; c 2; b 1 2; r 1 "k" 0; c 1 ];
  (* Tombstone-GC exemption: a sole surviving tombstone is collected with
     its record, so version 0 is a legal observation again. *)
  check_classes "tombstone-GC read of version 0 accepted" []
    [ b 2 0; w ~tombstone:true 2 "k"; c 2; b 1 2; r 1 "k" 0; c 1 ]

let test_unwritten_read () =
  check_classes "version nobody wrote" [ "unwritten-read" ] [ b 1 1; r 1 "k" 1; c 1 ]

let test_version0_bulk_load () =
  (* Version 0 (bulk load / absent record) is visible to every snapshot,
     however far the base has advanced. *)
  check_classes "version 0 visible under any snapshot" []
    [ b 1 500; r 1 "k" 0; r 1 "fresh" 0; c 1 ]

let test_ghost_rollback () =
  (* Rolled_back overrides Commit: the ghost's write never happened... *)
  check_classes "ghost commit neutralised" []
    [ b 2 0; w 2 "k"; c 2; x 2; b 1 3; r 1 "k" 0; c 1 ];
  (* ...and observing it anyway is an aborted read. *)
  check_classes "read of a ghost's version" [ "G1a" ]
    [ b 2 0; w 2 "k"; c 2; x 2; b 1 ~above:[ 2 ] 0; r 1 "k" 2; c 1 ]

(* --- witness minimality ----------------------------------------------------------- *)

let cycle_of cls h =
  match
    List.find_opt (fun (an : C.anomaly) -> an.C.a_class = cls) (C.analyze h).C.r_anomalies
  with
  | Some an -> an.C.a_cycle
  | None -> Alcotest.failf "expected a %s anomaly" (C.cls_name cls)

let test_witness_minimality () =
  (* The lost-update pair embedded in a larger component must still be
     witnessed by its 2-cycle, not by some longer walk through T3. *)
  let h =
    [ b 1 0; r 1 "k" 0; w 1 "k"; w ~version:1 1 "z"; c 1;
      b 2 0; r 2 "k" 0; w 2 "k"; c 2;
      b 3 ~above:[ 2 ] 0; r 3 "z" 1; r 3 "k" 2; c 3 ]
  in
  let cyc = cycle_of C.Lost_update h in
  Alcotest.(check int) "lost-update witness is the 2-cycle" 2 (List.length cyc);
  List.iter (fun (e : D.edge) -> Alcotest.(check string) "on one key" "k" e.D.key) cyc;
  let g1c =
    cycle_of C.G1c [ b 2 0; w 2 "x"; w 2 "y"; c 2; b 1 2; r 1 "y" 2; w 1 "x"; c 1 ]
  in
  Alcotest.(check int) "G1c witness is the 2-cycle" 2 (List.length g1c)

(* --- deduplication / reporting ----------------------------------------------------- *)

let test_one_anomaly_per_scc () =
  (* Re-reading the same key many times must not multiply the report. *)
  let h =
    [ b 1 0; r 1 "k" 0; r 1 "k" 0; w 1 "k"; c 1;
      b 2 0; r 2 "k" 0; r 2 "k" 0; w 2 "k"; c 2 ]
  in
  let anomalies = (C.analyze h).C.r_anomalies in
  Alcotest.(check int) "single lost-update report" 1 (List.length anomalies)

let test_report_counts () =
  let rep = C.analyze [ b 1 0; r 1 "k" 0; c 1; b 2 1; w 2 "k"; a 2; b 3 1 ] in
  Alcotest.(check int) "txns" 3 rep.C.r_txns;
  Alcotest.(check int) "committed" 1 rep.C.r_committed

(* --- dump codec -------------------------------------------------------------------- *)

let test_codec_roundtrip () =
  let events =
    [ b 7 ~above:[ 9; 12 ] 3;
      r 7 "r/warehouse/000000000001" 9;
      ri 7 "key with spaces" 0;
      w 7 "r/stock/000000000042";
      w ~tombstone:true 7 "r/new_order/000000000005";
      c 7; a 8; x 9;
      H.Node_event { pn_id = 1; what = "crash" } ]
  in
  List.iter
    (fun e ->
      match H.decode_line (H.encode_line e) with
      | Some e' -> Alcotest.(check bool) (H.encode_line e) true (e = e')
      | None -> Alcotest.failf "decode dropped %s" (H.encode_line e))
    events;
  Alcotest.(check bool) "blank skipped" true (H.decode_line "   " = None);
  Alcotest.(check bool) "comment skipped" true (H.decode_line "# hi" = None);
  Alcotest.(check bool) "garbage raises" true
    (match H.decode_line "Q 1 2 3" with exception Failure _ -> true | _ -> false)

let () =
  Alcotest.run "histcheck"
    [
      ( "anomaly classes",
        [
          Alcotest.test_case "clean serial history" `Quick test_clean_serial;
          Alcotest.test_case "G0 write cycle" `Quick test_g0;
          Alcotest.test_case "G1a aborted read" `Quick test_g1a;
          Alcotest.test_case "G1b intermediate read" `Quick test_g1b;
          Alcotest.test_case "G1c dependency cycle" `Quick test_g1c;
          Alcotest.test_case "G-SI single-rw cycle" `Quick test_g_si;
          Alcotest.test_case "write skew admitted by SI" `Quick test_write_skew_accepted;
          Alcotest.test_case "lost update" `Quick test_lost_update;
          Alcotest.test_case "future read" `Quick test_future_read;
          Alcotest.test_case "stale read + tombstone GC" `Quick test_stale_read;
          Alcotest.test_case "unwritten read" `Quick test_unwritten_read;
          Alcotest.test_case "version-0 bulk load" `Quick test_version0_bulk_load;
          Alcotest.test_case "ghost rollback override" `Quick test_ghost_rollback;
        ] );
      ( "reporting",
        [
          Alcotest.test_case "witness minimality" `Quick test_witness_minimality;
          Alcotest.test_case "one anomaly per component" `Quick test_one_anomaly_per_scc;
          Alcotest.test_case "report counts" `Quick test_report_counts;
          Alcotest.test_case "dump codec round-trip" `Quick test_codec_roundtrip;
        ] );
    ]
