(* The commit manager: snapshot semantics, tid uniqueness under
   concurrency, multi-manager synchronisation through the store, lav
   safety, and fail-over recovery (§4.2, §4.4.3). *)

module Sim = Tell_sim
module Kv = Tell_kv
open Tell_core

let run ?(until = 60_000_000_000) f =
  let engine = Sim.Engine.create () in
  let cluster = Kv.Cluster.create engine { Kv.Cluster.default_config with n_storage_nodes = 3 } in
  let result = ref None in
  Sim.Engine.spawn engine (fun () -> result := Some (f engine cluster));
  Sim.Engine.run engine ~until ();
  match !result with Some r -> r | None -> Alcotest.fail "did not finish"

let group engine = Sim.Engine.root_group engine

let test_tid_uniqueness () =
  run (fun engine cluster ->
      let cm = Commit_manager.create cluster ~id:0 () in
      let seen = Hashtbl.create 256 in
      let finished = ref 0 in
      let workers = 10 and per_worker = 40 in
      for _ = 1 to workers do
        Sim.Engine.spawn engine (fun () ->
            for _ = 1 to per_worker do
              let reply = Commit_manager.start cm ~from_group:(group engine) () in
              Alcotest.(check bool) "tid unique" false (Hashtbl.mem seen reply.tid);
              Hashtbl.replace seen reply.tid ();
              Sim.Engine.sleep engine 1_000;
              Commit_manager.set_committed cm ~tid:reply.tid ()
            done;
            incr finished)
      done;
      while !finished < workers do
        Sim.Engine.sleep engine 1_000_000
      done;
      Alcotest.(check int) "all tids assigned" (workers * per_worker) (Hashtbl.length seen))

let test_snapshot_excludes_active () =
  run (fun engine cluster ->
      let cm = Commit_manager.create cluster ~id:0 () in
      let t1 = Commit_manager.start cm ~from_group:(group engine) () in
      let t2 = Commit_manager.start cm ~from_group:(group engine) () in
      (* Neither sees the other (both still active). *)
      Alcotest.(check bool) "t2 not in t1 snapshot" false (Version_set.mem t1.snapshot t2.tid);
      Alcotest.(check bool) "t1 not in t2 snapshot" false (Version_set.mem t2.snapshot t1.tid);
      Commit_manager.set_committed cm ~tid:t1.tid ();
      let t3 = Commit_manager.start cm ~from_group:(group engine) () in
      Alcotest.(check bool) "t3 sees committed t1" true (Version_set.mem t3.snapshot t1.tid);
      Alcotest.(check bool) "t3 does not see active t2" false (Version_set.mem t3.snapshot t2.tid);
      Commit_manager.set_aborted cm ~tid:t2.tid ();
      Commit_manager.set_committed cm ~tid:t3.tid ())

let test_lav_is_safe () =
  run (fun engine cluster ->
      let cm = Commit_manager.create cluster ~id:0 () in
      let long_runner = Commit_manager.start cm ~from_group:(group engine) () in
      (* Start and commit many transactions while one stays active. *)
      for _ = 1 to 50 do
        let t = Commit_manager.start cm ~from_group:(group engine) () in
        Commit_manager.set_committed cm ~tid:t.tid ()
      done;
      let newcomer = Commit_manager.start cm ~from_group:(group engine) () in
      (* The lav may never exceed the base of any active snapshot: a version
         at or below the lav must be visible to everyone still running. *)
      Alcotest.(check bool) "lav <= long runner's base" true
        (newcomer.lav <= Version_set.base long_runner.snapshot);
      Commit_manager.set_committed cm ~tid:long_runner.tid ();
      Commit_manager.set_committed cm ~tid:newcomer.tid ();
      (* Once the long-runner finishes, the lav catches up. *)
      let final = Commit_manager.start cm ~from_group:(group engine) () in
      Alcotest.(check bool) "lav advanced" true (final.lav > newcomer.lav))

let test_multi_cm_sync () =
  run (fun engine cluster ->
      let cm0 = Commit_manager.create cluster ~id:0 ~peers:[ 0; 1 ] ~sync_interval_ns:500_000 () in
      let cm1 = Commit_manager.create cluster ~id:1 ~peers:[ 0; 1 ] ~sync_interval_ns:500_000 () in
      (* Commit through cm0; after a couple of sync intervals, cm1's
         snapshots include it. *)
      let t = Commit_manager.start cm0 ~from_group:(group engine) () in
      Commit_manager.set_committed cm0 ~tid:t.tid ();
      Sim.Engine.sleep engine 2_000_000;
      let via_cm1 = Commit_manager.start cm1 ~from_group:(group engine) () in
      Alcotest.(check bool) "cm1 snapshot includes cm0's commit" true
        (Version_set.mem via_cm1.snapshot t.tid);
      Commit_manager.set_committed cm1 ~tid:via_cm1.tid ();
      (* Tids from the two managers never collide (shared counter). *)
      let a = Commit_manager.start cm0 ~from_group:(group engine) () in
      let b = Commit_manager.start cm1 ~from_group:(group engine) () in
      Alcotest.(check bool) "distinct tids across managers" true (a.tid <> b.tid))

let test_cm_failover_recovery () =
  run (fun engine cluster ->
      let cm0 = Commit_manager.create cluster ~id:0 ~sync_interval_ns:500_000 () in
      let committed = ref [] in
      for _ = 1 to 30 do
        let t = Commit_manager.start cm0 ~from_group:(group engine) () in
        Commit_manager.set_committed cm0 ~tid:t.tid ();
        committed := t.tid :: !committed
      done;
      (* Let it publish, then crash it and stand up a replacement. *)
      Sim.Engine.sleep engine 2_000_000;
      Commit_manager.crash cm0;
      let cm1 = Commit_manager.create cluster ~id:1 ~peers:[ 0; 1 ] () in
      Commit_manager.recover cm1;
      let t = Commit_manager.start cm1 ~from_group:(group engine) () in
      List.iter
        (fun tid ->
          Alcotest.(check bool)
            (Printf.sprintf "recovered snapshot includes tid %d" tid)
            true (Version_set.mem t.snapshot tid))
        !committed;
      (* And new tids continue above everything seen before. *)
      Alcotest.(check bool) "fresh tid above recovered history" true
        (List.for_all (fun old -> t.tid > old) !committed))

let test_dead_cm_unavailable () =
  run (fun engine cluster ->
      let cm = Commit_manager.create cluster ~id:0 () in
      Commit_manager.crash cm;
      match Commit_manager.start cm ~from_group:(group engine) () with
      | _ -> Alcotest.fail "dead manager must not answer"
      | exception Kv.Op.Unavailable _ -> ())

let () =
  Alcotest.run "commit_manager"
    [
      ( "protocol",
        [
          Alcotest.test_case "tid uniqueness under concurrency" `Quick test_tid_uniqueness;
          Alcotest.test_case "snapshots exclude active txns" `Quick test_snapshot_excludes_active;
          Alcotest.test_case "lav safety" `Quick test_lav_is_safe;
        ] );
      ( "distribution",
        [
          Alcotest.test_case "multi-CM store synchronisation" `Quick test_multi_cm_sync;
          Alcotest.test_case "fail-over recovery from store" `Quick test_cm_failover_recovery;
          Alcotest.test_case "dead CM raises Unavailable" `Quick test_dead_cm_unavailable;
        ] );
    ]
