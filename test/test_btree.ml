(* The latch-free B+tree: model-based random testing against a reference
   map, bulk construction, concurrent insertions from several processing
   nodes, and structural invariants (§5.3). *)

module Sim = Tell_sim
module Kv = Tell_kv
open Tell_core

module Entry_set = Set.Make (struct
  type t = string * int

  let compare = compare
end)

let with_cluster f =
  let engine = Sim.Engine.create () in
  let cluster =
    Kv.Cluster.create engine { Kv.Cluster.default_config with n_storage_nodes = 3 }
  in
  let result = ref None in
  Sim.Engine.spawn engine (fun () -> result := Some (f engine cluster));
  Sim.Engine.run engine ~until:120_000_000_000 ();
  match !result with Some r -> r | None -> Alcotest.fail "simulation did not finish"

let client cluster = Kv.Client.create cluster ~group:(Sim.Engine.root_group (Kv.Cluster.engine cluster))

(* Random operation sequence checked against a set model. *)
let test_model_random () =
  with_cluster (fun _engine cluster ->
      let kv = client cluster in
      Btree.create kv ~name:"model";
      let tree = Btree.attach kv ~name:"model" in
      let rng = Random.State.make [| 1234 |] in
      let model = ref Entry_set.empty in
      for _step = 1 to 1_500 do
        let key = Printf.sprintf "k%03d" (Random.State.int rng 200) in
        let rid = Random.State.int rng 5 in
        match Random.State.int rng 10 with
        | 0 | 1 | 2 | 3 | 4 | 5 ->
            Btree.insert tree ~key ~rid;
            model := Entry_set.add (key, rid) !model
        | 6 | 7 ->
            Btree.remove tree ~key ~rid;
            model := Entry_set.remove (key, rid) !model
        | 8 ->
            let expected =
              Entry_set.elements (Entry_set.filter (fun (k, _) -> k = key) !model)
              |> List.map snd
            in
            Alcotest.(check (list int)) ("lookup " ^ key) expected (Btree.lookup tree ~key)
        | _ ->
            let lo = Printf.sprintf "k%03d" (Random.State.int rng 200) in
            let hi = Printf.sprintf "k%03d" (Random.State.int rng 200) in
            let lo, hi = if lo <= hi then (lo, hi) else (hi, lo) in
            let expected =
              Entry_set.elements (Entry_set.filter (fun (k, _) -> lo <= k && k < hi) !model)
            in
            Alcotest.(check (list (pair string int)))
              (Printf.sprintf "range [%s,%s)" lo hi)
              expected (Btree.range tree ~lo ~hi)
      done;
      Btree.check_invariants tree;
      (* Final full-range sweep. *)
      let all = Btree.range tree ~lo:"" ~hi:"\xff" in
      Alcotest.(check (list (pair string int))) "final contents" (Entry_set.elements !model) all)

(* Enough sequential insertions to force leaf, inner, and root splits. *)
let test_many_inserts_split () =
  with_cluster (fun _engine cluster ->
      let kv = client cluster in
      Btree.create kv ~name:"big";
      let tree = Btree.attach kv ~name:"big" in
      let n = 5_000 in
      for i = 1 to n do
        Btree.insert tree ~key:(Printf.sprintf "key%06d" i) ~rid:i
      done;
      Btree.check_invariants tree;
      Alcotest.(check int) "all entries present" n
        (List.length (Btree.range tree ~lo:"" ~hi:"\xff"));
      (* Point lookups across the range. *)
      for i = 1 to n do
        if i mod 137 = 0 then
          Alcotest.(check (list int))
            (Printf.sprintf "lookup %d" i)
            [ i ]
            (Btree.lookup tree ~key:(Printf.sprintf "key%06d" i))
      done)

(* Concurrent inserters on separate clients (PNs): all entries must end up
   present, without latches, through LL/SC retries alone. *)
let test_concurrent_inserts () =
  with_cluster (fun engine cluster ->
      let kv0 = client cluster in
      Btree.create kv0 ~name:"conc";
      let n_workers = 6 in
      let per_worker = 300 in
      let done_count = ref 0 in
      for w = 0 to n_workers - 1 do
        Sim.Engine.spawn engine (fun () ->
            let kv = client cluster in
            let tree = Btree.attach kv ~name:"conc" in
            for i = 0 to per_worker - 1 do
              let key = Printf.sprintf "k%05d" ((i * n_workers) + w) in
              Btree.insert tree ~key ~rid:w;
              (* Interleave aggressively. *)
              if i mod 7 = 0 then Sim.Engine.sleep engine 1_000
            done;
            incr done_count)
      done;
      (* Wait for every worker. *)
      while !done_count < n_workers do
        Sim.Engine.sleep engine 1_000_000
      done;
      let tree = Btree.attach kv0 ~name:"conc" in
      Btree.check_invariants tree;
      let all = Btree.range tree ~lo:"" ~hi:"\xff" in
      Alcotest.(check int) "all concurrent inserts present" (n_workers * per_worker)
        (List.length all))

(* Bulk construction must agree with incremental construction. *)
let test_bulk_matches_incremental () =
  with_cluster (fun _engine cluster ->
      let entries =
        List.init 2_000 (fun i -> (Printf.sprintf "key%05d" (i * 7 mod 2000), i mod 3))
      in
      let kv = client cluster in
      List.iter
        (fun (key, data) -> Kv.Client.put kv key data)
        (List.map (fun (k, v) -> (k, v)) []);
      ignore kv;
      (* Install bulk cells directly. *)
      List.iter
        (fun (key, data) -> Kv.Cluster.poke cluster ~key ~data)
        (Btree.bulk_cells ~name:"bulk" ~entries);
      let tree = Btree.attach kv ~name:"bulk" in
      Btree.check_invariants tree;
      let expected = List.sort_uniq compare entries in
      Alcotest.(check (list (pair string int)))
        "bulk-built tree contains exactly the entries" expected
        (Btree.range tree ~lo:"" ~hi:"\xff");
      (* And it must remain fully updatable. *)
      Btree.insert tree ~key:"key99999" ~rid:1;
      Btree.remove tree ~key:"key00000" ~rid:0;
      Btree.check_invariants tree;
      Alcotest.(check (list int)) "insert after bulk" [ 1 ] (Btree.lookup tree ~key:"key99999"))

let test_range_limit () =
  with_cluster (fun _engine cluster ->
      let kv = client cluster in
      Btree.create kv ~name:"lim";
      let tree = Btree.attach kv ~name:"lim" in
      for i = 1 to 500 do
        Btree.insert tree ~key:(Printf.sprintf "k%04d" i) ~rid:i
      done;
      let first_10 = Btree.range_limit tree ~lo:"" ~hi:"\xff" ~limit:10 in
      Alcotest.(check int) "limit honoured" 10 (List.length first_10);
      Alcotest.(check (pair string int)) "first entry" ("k0001", 1)
        (match first_10 with e :: _ -> e | [] -> Alcotest.fail "empty"))

let test_lookup_many () =
  with_cluster (fun _engine cluster ->
      let kv = client cluster in
      Btree.create kv ~name:"many";
      let tree = Btree.attach kv ~name:"many" in
      for i = 1 to 2_000 do
        Btree.insert tree ~key:(Printf.sprintf "k%05d" i) ~rid:i
      done;
      let keys =
        List.map (fun i -> Printf.sprintf "k%05d" i) [ 1; 57; 58; 1999; 1500; 12345; 3 ]
      in
      let results = Btree.lookup_many tree ~keys in
      Alcotest.(check int) "one result per key" (List.length keys) (List.length results);
      List.iter2
        (fun key (rkey, rids) ->
          Alcotest.(check string) "input order preserved" key rkey;
          Alcotest.(check (list int)) ("rids for " ^ key) (Btree.lookup tree ~key) rids)
        keys results;
      (* And the batched path agrees after mutations invalidate caches. *)
      Btree.remove tree ~key:"k00057" ~rid:57;
      Btree.insert tree ~key:"k00057" ~rid:5757;
      match Btree.lookup_many tree ~keys:[ "k00057" ] with
      | [ (_, rids) ] -> Alcotest.(check (list int)) "fresh value" [ 5757 ] rids
      | _ -> Alcotest.fail "single result expected")

(* Property: insert_many/remove_many are equivalent to the sequential
   per-entry operations, including while concurrent committers on other
   clients mutate the trees.  Two trees receive the same operations — one
   per entry, one batched — and must end up with identical [range]
   results. *)
let test_batched_matches_sequential () =
  with_cluster (fun engine cluster ->
      let kv0 = client cluster in
      Btree.create kv0 ~name:"p_seq";
      Btree.create kv0 ~name:"p_bat";
      (* Concurrent committers: each worker applies its own (disjoint)
         entries to both trees, batched on one and per-entry on the other,
         forcing CAS conflicts and splits under the main fiber's feet. *)
      let n_churn = 3 in
      let churn_done = ref 0 in
      for w = 0 to n_churn - 1 do
        Sim.Engine.spawn engine (fun () ->
            let kv = client cluster in
            let seq = Btree.attach kv ~name:"p_seq" in
            let bat = Btree.attach kv ~name:"p_bat" in
            let entries = List.init 120 (fun i -> (Printf.sprintf "c%d_%04d" w i, i)) in
            let rec chunks = function
              | [] -> []
              | l ->
                  let rec take n = function
                    | x :: rest when n > 0 ->
                        let got, rem = take (n - 1) rest in
                        (x :: got, rem)
                    | rest -> ([], rest)
                  in
                  let got, rem = take 20 l in
                  got :: chunks rem
            in
            List.iter
              (fun chunk ->
                List.iter (fun (key, rid) -> Btree.insert seq ~key ~rid) chunk;
                Btree.insert_many bat ~entries:chunk;
                Sim.Engine.sleep engine 2_000)
              (chunks entries);
            let dels = List.filteri (fun i _ -> i mod 3 = 0) entries in
            List.iter (fun (key, rid) -> Btree.remove seq ~key ~rid) dels;
            Btree.remove_many bat ~entries:dels;
            incr churn_done)
      done;
      (* Main fiber: random mixed rounds over a hot shared keyspace. *)
      let kv = client cluster in
      let seq = Btree.attach kv ~name:"p_seq" in
      let bat = Btree.attach kv ~name:"p_bat" in
      let rng = Random.State.make [| 99 |] in
      let model = ref Entry_set.empty in
      for _round = 1 to 40 do
        let adds = ref [] and dels = ref [] in
        for _op = 1 to 25 do
          let key = Printf.sprintf "m%03d" (Random.State.int rng 150) in
          let rid = Random.State.int rng 4 in
          if Random.State.int rng 10 < 7 then begin
            if not (List.mem (key, rid) !adds) then adds := (key, rid) :: !adds
          end
          else if not (List.mem (key, rid) !dels) then dels := (key, rid) :: !dels
        done;
        let adds = List.rev !adds and dels = List.rev !dels in
        List.iter (fun (key, rid) -> Btree.insert seq ~key ~rid) adds;
        Btree.insert_many bat ~entries:adds;
        List.iter (fun (key, rid) -> Btree.remove seq ~key ~rid) dels;
        Btree.remove_many bat ~entries:dels;
        List.iter (fun e -> model := Entry_set.add e !model) adds;
        List.iter (fun e -> model := Entry_set.remove e !model) dels;
        Sim.Engine.sleep engine 1_000
      done;
      while !churn_done < n_churn do
        Sim.Engine.sleep engine 1_000_000
      done;
      Btree.check_invariants seq;
      Btree.check_invariants bat;
      let all_seq = Btree.range seq ~lo:"" ~hi:"\xff" in
      let all_bat = Btree.range bat ~lo:"" ~hi:"\xff" in
      Alcotest.(check (list (pair string int))) "batched tree = sequential tree" all_seq all_bat;
      (* The shared keyspace also matches the reference model exactly. *)
      Alcotest.(check (list (pair string int)))
        "batched tree = model" (Entry_set.elements !model)
        (Btree.range bat ~lo:"m" ~hi:"n"))

(* Property: random batched maintenance against a sorted-assoc model,
   under seeded schedule shuffles.  The key pool is tiny (8 keys) while
   rids span 0..500, so runs of duplicates cross leaf boundaries and
   every descent must compare separators as full (key, rid) entries —
   comparing by key alone would lose or duplicate entries inside a run
   (CLAUDE.md "things that bite"). *)
let test_property_batched_separators () =
  let shuffle rng l =
    let a = Array.of_list l in
    for i = Array.length a - 1 downto 1 do
      let j = Random.State.int rng (i + 1) in
      let t = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- t
    done;
    Array.to_list a
  in
  List.iter
    (fun seed ->
      with_cluster (fun _engine cluster ->
          let kv = client cluster in
          let name = Printf.sprintf "prop%d" seed in
          Btree.create kv ~name;
          let tree = Btree.attach kv ~name in
          let rng = Random.State.make [| seed |] in
          (* The model is a sorted assoc of (key, rid) without duplicates —
             exactly the tree's advertised contents. *)
          let model = ref [] in
          let add e l = if List.mem e l then l else List.sort compare (e :: l) in
          let keys = [| "dA"; "dB"; "dC"; "dD"; "dE"; "dF"; "dG"; "dH" |] in
          let gen_entry () =
            (keys.(Random.State.int rng (Array.length keys)), Random.State.int rng 500)
          in
          for _round = 1 to 20 do
            let batch =
              List.sort_uniq compare (List.init (10 + Random.State.int rng 40) (fun _ -> gen_entry ()))
            in
            (* The shuffle is the property under test: batched maintenance
               must not depend on the submission order of a batch. *)
            let batch = shuffle rng batch in
            if Random.State.int rng 10 < 7 then begin
              Btree.insert_many tree ~entries:batch;
              List.iter (fun e -> model := add e !model) batch
            end
            else begin
              Btree.remove_many tree ~entries:batch;
              List.iter (fun e -> model := List.filter (( <> ) e) !model) batch
            end;
            (* A point lookup through the duplicate run each round: a
               key-only separator comparison would misroute exactly here. *)
            let k = keys.(Random.State.int rng (Array.length keys)) in
            Alcotest.(check (list int))
              (Printf.sprintf "seed %d lookup %s" seed k)
              (List.filter_map (fun (k', r) -> if k' = k then Some r else None) !model)
              (Btree.lookup tree ~key:k)
          done;
          Btree.check_invariants tree;
          Alcotest.(check (list (pair string int)))
            (Printf.sprintf "seed %d tree = sorted-assoc model" seed)
            !model
            (Btree.range tree ~lo:"" ~hi:"\xff")))
    [ 7; 21; 42 ]

let test_duplicate_keys () =
  with_cluster (fun _engine cluster ->
      let kv = client cluster in
      Btree.create kv ~name:"dup";
      let tree = Btree.attach kv ~name:"dup" in
      (* Many rids under the same attribute key (non-unique index). *)
      for rid = 1 to 200 do
        Btree.insert tree ~key:"same" ~rid
      done;
      Alcotest.(check int) "all duplicates" 200 (List.length (Btree.lookup tree ~key:"same"));
      Btree.remove tree ~key:"same" ~rid:77;
      let rids = Btree.lookup tree ~key:"same" in
      Alcotest.(check int) "one removed" 199 (List.length rids);
      Alcotest.(check bool) "right one removed" false (List.mem 77 rids))

let () =
  Alcotest.run "btree"
    [
      ( "btree",
        [
          Alcotest.test_case "model-based random ops" `Quick test_model_random;
          Alcotest.test_case "splits under sequential load" `Quick test_many_inserts_split;
          Alcotest.test_case "concurrent inserts (latch-free)" `Quick test_concurrent_inserts;
          Alcotest.test_case "bulk build = incremental" `Quick test_bulk_matches_incremental;
          Alcotest.test_case "range limit" `Quick test_range_limit;
          Alcotest.test_case "duplicate keys" `Quick test_duplicate_keys;
          Alcotest.test_case "lookup_many batched" `Quick test_lookup_many;
          Alcotest.test_case "batched maintenance = sequential" `Quick
            test_batched_matches_sequential;
          Alcotest.test_case "property: shuffled batches vs sorted-assoc model" `Quick
            test_property_batched_separators;
        ] );
    ]
