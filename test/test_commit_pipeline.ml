(* The pipelined group-commit tail: [Txn.commit] returns once the updates
   and index entries are applied, while flagging the log entry and telling
   the commit manager happen in the PN's notifier fiber.  These tests pin
   the two crash windows that creates (§4.4.1):

   - PN dies with the outcome still queued -> the log entry is unflagged
     and recovery rolls the transaction back;
   - PN dies after the flag but before the manager heard -> recovery
     re-delivers [set_committed] so the tid leaves the active set. *)

module Sim = Tell_sim
module Kv = Tell_kv
open Tell_core

let run_sim f =
  let engine = Sim.Engine.create () in
  let result = ref None in
  Sim.Engine.spawn engine (fun () -> result := Some (f engine));
  Sim.Engine.run engine ~until:120_000_000_000 ();
  match !result with Some r -> r | None -> Alcotest.fail "did not finish"

let make_db engine =
  let kv_config =
    { Kv.Cluster.default_config with n_storage_nodes = 3; replication_factor = 1 }
  in
  Database.create engine ~kv_config ()

let setup_rows pn n =
  ignore (Database.exec pn "CREATE TABLE t (id INT, v INT, PRIMARY KEY (id))");
  for i = 1 to n do
    ignore (Database.exec pn (Printf.sprintf "INSERT INTO t VALUES (%d, %d)" i i))
  done

let rid_of pn ~id =
  Database.with_txn pn (fun txn ->
      match Txn.index_lookup txn ~index:"pk_t" ~key:(Codec.encode_key [ Value.Int id ]) with
      | [ rid ] -> rid
      | _ -> Alcotest.fail "pk lookup")

(* Crash in the first window: the raw [Txn.commit] returns with the flag
   and the notification still queued; the queue dies with the PN and
   recovery must roll the (unflagged) transaction back. *)
let test_crash_before_flag_rolls_back () =
  run_sim (fun engine ->
      let db = make_db engine in
      let pn1 = Database.add_pn db () in
      let pn2 = Database.add_pn db () in
      setup_rows pn1 5;
      let rid = rid_of pn1 ~id:3 in
      let txn = Txn.begin_txn pn1 in
      Txn.update txn ~table:"t" ~rid [| Value.Int 3; Value.Int 999 |];
      Txn.commit txn;
      Alcotest.(check bool) "commit returned" true (Txn.status txn = Txn.Committed);
      (* No suspension point between [commit] and the crash, so the
         notifier cannot have flushed yet. *)
      Alcotest.(check bool) "outcome still queued" true
        (Notifier.pending (Pn.notifier pn1) > 0);
      Database.crash_pn db pn1;
      Alcotest.(check int) "one transaction rolled back" 1 (Database.recover_crashed_pns db);
      match Database.exec pn2 "SELECT v FROM t WHERE id = 3" with
      | Sql_plan.Rows { rows = [ [| Value.Int 3 |] ]; _ } -> ()
      | _ -> Alcotest.fail "unflagged commit was not rolled back")

(* Crash in the second window: the log entry is flagged but the manager
   never heard [set_committed].  Recovery must not roll back, must drain
   the tid from the active set (else the lav wedges), and the update must
   stay visible. *)
let test_crash_after_flag_keeps_commit () =
  run_sim (fun engine ->
      let db = make_db engine in
      let pn1 = Database.add_pn db () in
      let pn2 = Database.add_pn db () in
      setup_rows pn1 5;
      let rid = rid_of pn1 ~id:4 in
      let cm = List.hd (Database.commit_managers db) in
      let txn = Txn.begin_txn pn1 in
      let tid = Txn.tid txn in
      let entry =
        {
          Txlog.tid;
          pn_id = Pn.id pn1;
          timestamp = 0;
          write_set = [ Keys.record ~table:"t" ~rid ];
          committed = false;
        }
      in
      Txlog.append (Pn.kv pn1) entry;
      let key = Keys.record ~table:"t" ~rid in
      (match Kv.Client.get (Pn.kv pn1) key with
      | Some (data, token) ->
          let record =
            Record.add_version (Record.decode data) ~version:tid
              (Record.Tuple [| Value.Int 4; Value.Int 777 |])
          in
          (match Kv.Client.put_if (Pn.kv pn1) key (Some token) (Record.encode record) with
          | `Ok _ -> ()
          | `Conflict -> Alcotest.fail "apply failed")
      | None -> Alcotest.fail "record missing");
      Txlog.mark_committed (Pn.kv pn1) entry;
      Database.crash_pn db pn1;
      Alcotest.(check int) "tid wedged in the active set" 1 (Commit_manager.active_count cm);
      Alcotest.(check int) "nothing rolled back" 0 (Database.recover_crashed_pns db);
      Alcotest.(check int) "active set drained" 0 (Commit_manager.active_count cm);
      match Database.exec pn2 "SELECT v FROM t WHERE id = 4" with
      | Sql_plan.Rows { rows = [ [| Value.Int 777 |] ]; _ } -> ()
      | _ -> Alcotest.fail "flagged commit lost its set_committed")

(* [Database.with_txn] (and [exec]) drain the notifier before returning:
   a crash right after must find the entry flagged. *)
let test_with_txn_is_durable_on_return () =
  run_sim (fun engine ->
      let db = make_db engine in
      let pn1 = Database.add_pn db () in
      setup_rows pn1 3;
      ignore (Database.exec pn1 "UPDATE t SET v = 42 WHERE id = 1");
      Alcotest.(check int) "nothing queued after exec" 0
        (Notifier.pending (Pn.notifier pn1));
      let entries = Txlog.scan (Pn.kv pn1) ~min_tid:0 in
      let unflagged = List.filter (fun (e : Txlog.entry) -> not e.committed) entries in
      Alcotest.(check int) "every logged entry flagged" 0 (List.length unflagged))

let () =
  Alcotest.run "commit_pipeline"
    [
      ( "crash windows",
        [
          Alcotest.test_case "unflagged outcome rolls back" `Quick
            test_crash_before_flag_rolls_back;
          Alcotest.test_case "flagged outcome keeps set_committed" `Quick
            test_crash_after_flag_keeps_commit;
          Alcotest.test_case "with_txn durable on return" `Quick
            test_with_txn_is_durable_on_return;
        ] );
    ]
