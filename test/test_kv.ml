(* The record store: LL/SC semantics, batching, replication, capacity
   accounting, and fail-over behaviour. *)

module Sim = Tell_sim
module Kv = Tell_kv

let run_cluster ?(config = { Kv.Cluster.default_config with n_storage_nodes = 3 }) f =
  let engine = Sim.Engine.create () in
  let cluster = Kv.Cluster.create engine config in
  Kv.Cluster.start_failure_detector cluster;
  let result = ref None in
  Sim.Engine.spawn engine (fun () ->
      let client = Kv.Client.create cluster ~group:(Sim.Engine.root_group engine) in
      result := Some (f engine cluster client));
  Sim.Engine.run engine ~until:60_000_000_000 ();
  match !result with Some r -> r | None -> Alcotest.fail "did not finish"

let test_llsc_aba () =
  run_cluster (fun _ _ client ->
      (* The ABA scenario: value returns to its original content, yet the
         conditional write must still fail (tokens count writes). *)
      Kv.Client.put client "x" "a";
      let token0 =
        match Kv.Client.get client "x" with Some (_, tok) -> tok | None -> assert false
      in
      Kv.Client.put client "x" "b";
      Kv.Client.put client "x" "a";
      (match Kv.Client.put_if client "x" (Some token0) "c" with
      | `Conflict -> ()
      | `Ok _ -> Alcotest.fail "ABA must be detected");
      Alcotest.(check string) "value unchanged" "a"
        (match Kv.Client.get client "x" with Some (v, _) -> v | None -> "?"))

let test_conditional_insert_delete () =
  run_cluster (fun _ _ client ->
      (match Kv.Client.put_if client "fresh" None "v1" with
      | `Ok _ -> ()
      | `Conflict -> Alcotest.fail "insert of absent key must succeed");
      (match Kv.Client.put_if client "fresh" None "v2" with
      | `Conflict -> ()
      | `Ok _ -> Alcotest.fail "second insert must conflict");
      let token =
        match Kv.Client.get client "fresh" with Some (_, t) -> t | None -> assert false
      in
      (match Kv.Client.remove_if client "fresh" (Some (token + 1)) with
      | `Conflict -> ()
      | `Ok -> Alcotest.fail "stale-token delete must conflict");
      (match Kv.Client.remove_if client "fresh" (Some token) with
      | `Ok -> ()
      | `Conflict -> Alcotest.fail "fresh-token delete must succeed");
      Alcotest.(check (option (pair string int))) "gone" None (Kv.Client.get client "fresh"))

let test_batching_counts () =
  run_cluster (fun _ _ client ->
      let keys = List.init 64 (fun i -> Printf.sprintf "key%03d" i) in
      List.iter (fun k -> Kv.Client.put client k k) keys;
      let before = Kv.Client.requests_sent client in
      let values = Kv.Client.multi_get client keys in
      let requests = Kv.Client.requests_sent client - before in
      Alcotest.(check int) "all values returned" 64
        (List.length (List.filter Option.is_some values));
      (* 64 gets over 3 storage nodes: far fewer requests than operations. *)
      Alcotest.(check bool)
        (Printf.sprintf "batched (%d requests for 64 ops)" requests)
        true (requests <= 12))

let test_replication_preserves_data () =
  let config =
    { Kv.Cluster.default_config with n_storage_nodes = 4; replication_factor = 3 }
  in
  run_cluster ~config (fun engine cluster client ->
      for i = 1 to 200 do
        Kv.Client.put client (Printf.sprintf "k%d" i) (Printf.sprintf "v%d" i)
      done;
      (* Kill two of four nodes: RF3 must survive any two failures. *)
      Kv.Cluster.crash_node cluster 0;
      Sim.Engine.sleep engine 2_000_000;
      Kv.Cluster.crash_node cluster 2;
      Sim.Engine.sleep engine 2_000_000;
      let alive = ref 0 in
      for i = 1 to 200 do
        match Kv.Client.get client (Printf.sprintf "k%d" i) with
        | Some (v, _) when v = Printf.sprintf "v%d" i -> incr alive
        | Some _ | None -> ()
      done;
      Alcotest.(check int) "no data lost after two failures" 200 !alive)

let test_writes_after_failover () =
  let config =
    { Kv.Cluster.default_config with n_storage_nodes = 3; replication_factor = 2 }
  in
  run_cluster ~config (fun engine cluster client ->
      Kv.Client.put client "stable" "before";
      Kv.Cluster.crash_node cluster 1;
      Sim.Engine.sleep engine 2_000_000;
      (* The store stays writable through fail-over. *)
      Kv.Client.put client "stable" "after";
      for i = 1 to 50 do
        Kv.Client.put client (Printf.sprintf "new%d" i) "x"
      done;
      Alcotest.(check string) "updated value" "after"
        (match Kv.Client.get client "stable" with Some (v, _) -> v | None -> "?");
      Alcotest.(check int) "replication factor restored" 2
        (List.length
           (Kv.Directory.replicas (Kv.Cluster.directory cluster)
              (Kv.Directory.partition_of_key (Kv.Cluster.directory cluster) "stable"))))

let test_capacity_limit () =
  let config =
    {
      Kv.Cluster.default_config with
      n_storage_nodes = 2;
      sn_capacity_bytes = 64 * 1024;
    }
  in
  run_cluster ~config (fun _ _ client ->
      match
        for i = 1 to 10_000 do
          Kv.Client.put client (Printf.sprintf "big%05d" i) (String.make 64 'x')
        done
      with
      | () -> Alcotest.fail "expected Capacity_exceeded"
      | exception Kv.Op.Capacity_exceeded _ -> ())

let test_increment_is_atomic () =
  run_cluster (fun engine _ client ->
      (* Concurrent incrementers must produce a dense, unique range. *)
      let seen = Hashtbl.create 64 in
      let finished = ref 0 in
      let workers = 8 and per_worker = 25 in
      for _ = 1 to workers do
        Sim.Engine.spawn engine (fun () ->
            for _ = 1 to per_worker do
              let v = Kv.Client.increment client "ctr" 1 in
              Alcotest.(check bool) "unique" false (Hashtbl.mem seen v);
              Hashtbl.replace seen v ()
            done;
            incr finished)
      done;
      while !finished < workers do
        Sim.Engine.sleep engine 1_000_000
      done;
      Alcotest.(check int) "final counter value" (workers * per_worker)
        (Kv.Client.increment client "ctr" 0))

(* The replay cache is a bounded FIFO ([Storage_node.replay_cap]): filling
   it to the bound must not evict an in-flight retry's verdict — that is
   the exactly-once contract — while the entry past the bound evicts the
   oldest, which is the (documented) hazard the cap is sized to keep out
   of any real retry window. *)
let test_replay_cache_bound () =
  run_cluster (fun _ cluster _client ->
      let node = Kv.Cluster.node cluster 0 in
      (* The client-side protocol, inlined at the node level: consult the
         cache first, apply + record on a miss. *)
      let send ~client ~op_id op =
        match Kv.Storage_node.find_replay node ~client ~op_id with
        | Some r -> r
        | None ->
            let r = Kv.Storage_node.apply node op in
            Kv.Storage_node.record_replay node ~client ~op_id r;
            r
      in
      let op = Kv.Op.Put_if ("rk", None, "v1") in
      (* First attempt applies; pretend its reply was lost. *)
      let first = send ~client:1 ~op_id:0 op in
      let token =
        match first with
        | Kv.Op.Token t -> t
        | _ -> Alcotest.fail "first attempt must apply"
      in
      (* The retry replays the original verdict instead of conflicting
         with its own write... *)
      Alcotest.(check bool) "retry replays the verdict" true (send ~client:1 ~op_id:0 op = first);
      (* ...and did not double-apply: the cell still carries the first
         attempt's token. *)
      Alcotest.(check (option (pair string int))) "no double apply"
        (Some ("v1", token))
        (Kv.Storage_node.find node "rk");
      (* Fill the FIFO to its bound with other clients' verdicts: the
         in-flight entry is the oldest but must survive at the cap. *)
      for i = 1 to Kv.Storage_node.replay_cap - 1 do
        Kv.Storage_node.record_replay node ~client:2 ~op_id:i Kv.Op.Conflict
      done;
      Alcotest.(check bool) "still replayed at the bound" true (send ~client:1 ~op_id:0 op = first);
      Alcotest.(check (option (pair string int))) "still exactly once"
        (Some ("v1", token))
        (Kv.Storage_node.find node "rk");
      (* One entry past the bound evicts it; the retry now re-executes
         and self-conflicts.  This is the failure mode [replay_cap] keeps
         outside every real retry window — pin it so a cache rewrite that
         silently drops entries *early* fails the assertions above. *)
      Kv.Storage_node.record_replay node ~client:2 ~op_id:Kv.Storage_node.replay_cap
        Kv.Op.Conflict;
      Alcotest.(check bool) "evicted past the bound" true
        (Kv.Storage_node.find_replay node ~client:1 ~op_id:0 = None);
      (match send ~client:1 ~op_id:0 op with
      | Kv.Op.Conflict -> ()
      | _ -> Alcotest.fail "post-eviction retry re-executes");
      (* Even then the stored value is untouched — eviction can cost a
         spurious abort, never a lost or doubled write. *)
      Alcotest.(check (option (pair string int))) "value untouched"
        (Some ("v1", token))
        (Kv.Storage_node.find node "rk"))

let test_scan_prefix () =
  run_cluster (fun _ _ client ->
      List.iter (fun k -> Kv.Client.put client k k)
        [ "a/1"; "a/2"; "a/3"; "b/1"; "ab"; "a" ];
      let hits = Kv.Client.scan_all client ~prefix:"a/" in
      Alcotest.(check (list string)) "prefix scan" [ "a/1"; "a/2"; "a/3" ]
        (List.map (fun (k, _, _) -> k) hits))

let () =
  Alcotest.run "kv"
    [
      ( "llsc",
        [
          Alcotest.test_case "ABA detection" `Quick test_llsc_aba;
          Alcotest.test_case "conditional insert/delete" `Quick test_conditional_insert_delete;
          Alcotest.test_case "atomic increment" `Quick test_increment_is_atomic;
          Alcotest.test_case "replay cache bound" `Quick test_replay_cache_bound;
        ] );
      ( "distribution",
        [
          Alcotest.test_case "request batching" `Quick test_batching_counts;
          Alcotest.test_case "RF3 survives two failures" `Quick test_replication_preserves_data;
          Alcotest.test_case "writes during failover + RF restore" `Quick test_writes_after_failover;
          Alcotest.test_case "capacity limit" `Quick test_capacity_limit;
          Alcotest.test_case "prefix scan" `Quick test_scan_prefix;
        ] );
    ]
