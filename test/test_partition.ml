(* Partition tolerance and zombie fencing (§4.4, DESIGN.md §6): the
   link-level fault plan of the network model, the epoch fence that stops
   a falsely-declared-dead PN from writing after the partition heals, the
   commit-manager replacement failure path when the store is unreachable,
   retry-backoff jitter bounds, and a smoke pass over the harness's
   partition scenarios. *)

module Sim = Tell_sim
module Kv = Tell_kv
open Tell_core
module Check = Tell_harness.Check

let run_sim ?(until = 60_000_000_000) f =
  let engine = Sim.Engine.create () in
  let result = ref None in
  Sim.Engine.spawn engine (fun () -> result := Some (f engine));
  Sim.Engine.run engine ~until ();
  match !result with Some r -> r | None -> Alcotest.fail "did not finish"

(* --- link-level fault plan -------------------------------------------------------- *)

let test_net_cuts () =
  run_sim ~until:1_000_000_000 (fun engine ->
      let net = Sim.Net.create engine (Sim.Rng.make 5) Sim.Net.infiniband in
      let send src dst = Sim.Net.send net ~src ~dst ~bytes:64 in
      Alcotest.(check bool) "clean link delivers" true (send "a" "b" = `Delivered);
      Sim.Net.cut net ~name:"oneway" ~from_:[ "a" ] ~to_:[ "b" ] ~symmetric:false;
      Alcotest.(check bool) "one-way cut drops a->b" true (send "a" "b" = `Dropped);
      Alcotest.(check bool) "one-way cut spares b->a" true (send "b" "a" = `Delivered);
      Sim.Net.cut net ~name:"full" ~from_:[ "c" ] ~to_:[ "d"; "e" ] ~symmetric:true;
      Alcotest.(check bool) "symmetric cut drops c->d" true (send "c" "d" = `Dropped);
      Alcotest.(check bool) "symmetric cut drops e->c" true (send "e" "c" = `Dropped);
      Alcotest.(check bool) "cut is per-link" true (send "d" "e" = `Delivered);
      Alcotest.(check (list string))
        "active cuts listed" [ "full"; "oneway" ]
        (List.sort String.compare (Sim.Net.active_cuts net));
      Sim.Net.heal net ~name:"oneway";
      Alcotest.(check bool) "healed link delivers" true (send "a" "b" = `Delivered);
      Sim.Net.heal net ~name:"full";
      Alcotest.(check (list string)) "all cuts healed" [] (Sim.Net.active_cuts net);
      let sent, dropped, _ = Sim.Net.link_counts net ~src:"a" ~dst:"b" in
      Alcotest.(check int) "a->b sent counter" 3 sent;
      Alcotest.(check int) "a->b dropped counter" 1 dropped)

let test_net_loss () =
  run_sim ~until:1_000_000_000 (fun engine ->
      let net = Sim.Net.create engine (Sim.Rng.make 6) Sim.Net.infiniband in
      let send () = Sim.Net.send net ~src:"a" ~dst:"b" ~bytes:64 in
      Sim.Net.set_loss net ~src:"a" ~dst:"b" ~drop:1.0 ();
      Alcotest.(check bool) "drop=1 loses everything" true (send () = `Dropped);
      Sim.Net.set_loss net ~src:"a" ~dst:"b" ~dup:1.0 ();
      Alcotest.(check bool) "dup=1 still delivers" true (send () = `Delivered);
      Alcotest.(check bool) "duplication counted" true (Sim.Net.messages_duplicated net > 0);
      Sim.Net.clear_loss net ~src:"a" ~dst:"b";
      let before = Sim.Net.messages_dropped net in
      Sim.Net.set_loss net ~src:"a" ~dst:"b" ~drop:0.3 ();
      let lost = ref 0 in
      for _ = 1 to 200 do
        if send () = `Dropped then incr lost
      done;
      Alcotest.(check bool) "probabilistic loss drops some" true (!lost > 0);
      Alcotest.(check bool) "probabilistic loss delivers some" true (!lost < 200);
      Alcotest.(check int) "drop counter tracks" (before + !lost) (Sim.Net.messages_dropped net);
      Sim.Net.clear_loss net ~src:"a" ~dst:"b";
      Alcotest.(check bool) "cleared link delivers" true (send () = `Delivered))

(* --- zombie fencing --------------------------------------------------------------- *)

let setup pn rows =
  ignore (Database.exec pn "CREATE TABLE t (id INT, v INT, PRIMARY KEY (id))");
  List.iter
    (fun (id, v) ->
      ignore (Database.exec pn (Printf.sprintf "INSERT INTO t VALUES (%d, %d)" id v)))
    rows

let rid_of pn id =
  Database.with_txn pn (fun txn ->
      match Txn.index_lookup txn ~index:"pk_t" ~key:(Codec.encode_key [ Value.Int id ]) with
      | [ rid ] -> rid
      | _ -> Alcotest.fail "pk lookup")

let value_of pn id =
  match Database.exec pn (Printf.sprintf "SELECT v FROM t WHERE id = %d" id) with
  | Sql_plan.Rows { rows = [ [| Value.Int v |] ]; _ } -> v
  | _ -> Alcotest.fail "read failed"

(* A PN is fully partitioned with a commit in flight, falsely declared
   dead behind the cut, and the partition heals: the stuck commit's next
   retry must bounce off the epoch fence ([Fenced]), the node must poison
   itself, and none of its writes may survive. *)
let test_zombie_fence () =
  let engine = Sim.Engine.create () in
  let kv_config =
    { Kv.Cluster.default_config with n_storage_nodes = 3; replication_factor = 2 }
  in
  let db = Database.create engine ~kv_config () in
  let pn = Database.add_pn db () in
  let pn2 = Database.add_pn db () in
  let cluster = Database.cluster db in
  let net = Kv.Cluster.net cluster in
  let outcome = ref `Pending in
  let epoch_before = ref (-1) and rolled = ref (-1) and survivor_view = ref (-1) in
  Sim.Engine.spawn engine ~group:(Pn.group pn) (fun () ->
      setup pn [ (1, 100) ];
      let rid = rid_of pn 1 in
      Sim.Engine.sleep engine 1_000_000;
      match
        Database.with_txn pn (fun txn ->
            (match Txn.read txn ~table:"t" ~rid with
            | Some row -> Txn.update txn ~table:"t" ~rid [| row.(0); Value.Int 999 |]
            | None -> Alcotest.fail "row missing");
            (* Hold the transaction open across the cut installed at
               t=2ms: the commit fires at t=3ms into the partition and
               spends its retry budget against silence. *)
            Sim.Engine.sleep engine 2_000_000)
      with
      | () -> outcome := `Committed
      | exception Kv.Op.Fenced _ -> outcome := `Fenced
      | exception _ -> outcome := `Other);
  Sim.Engine.spawn engine ~group:(Kv.Cluster.mgmt_group cluster) (fun () ->
      Sim.Engine.sleep engine 2_000_000;
      epoch_before := Kv.Cluster.current_epoch cluster;
      let fabric =
        List.init 3 Kv.Cluster.sn_endpoint
        @ List.map Commit_manager.endpoint (Database.commit_managers db)
        @ [ Kv.Cluster.mgmt_endpoint ]
      in
      Sim.Net.cut net ~name:"zombie" ~from_:[ Pn.endpoint pn ] ~to_:fabric ~symmetric:true;
      Sim.Engine.sleep engine 2_000_000;
      (* Declared dead behind the cut: the epoch fence lands on every
         storage node while the victim cannot see any of it. *)
      rolled := Database.declare_pn_dead db pn;
      Sim.Engine.sleep engine 1_000_000;
      Sim.Net.heal net ~name:"zombie";
      (* Well after the zombie's retries have bounced: read through the
         surviving PN. *)
      Sim.Engine.sleep engine 20_000_000;
      survivor_view := value_of pn2 1);
  Sim.Engine.run engine ~until:1_000_000_000 ();
  Alcotest.(check bool) "commit bounced with Fenced" true (!outcome = `Fenced);
  Alcotest.(check bool) "zombie poisoned itself" true (Pn.was_fenced pn);
  Alcotest.(check bool) "zombie no longer serves" false (Pn.alive pn);
  Alcotest.(check bool) "declaration bumped the epoch" true
    (Kv.Cluster.current_epoch cluster > !epoch_before);
  Alcotest.(check bool) "storage nodes bounced fenced writes" true
    (Array.fold_left
       (fun acc sn -> acc + Kv.Storage_node.fenced_rejects sn)
       0
       (Kv.Cluster.nodes cluster)
    > 0);
  Alcotest.(check int) "no committed work was rolled back" 0 !rolled;
  Alcotest.(check int) "the zombie's write never became visible" 100 !survivor_view

(* --- commit-manager replacement failure path -------------------------------------- *)

(* Standing up a replacement while the dead manager's identity cannot
   reach the store must fail cleanly: [replace_commit_manager] raises
   [Unavailable], registers nothing, and a retry after the heal
   succeeds.  [fence_senders] must return even though its fence
   installation messages race the same conditions. *)
let test_replace_cm_unreachable () =
  run_sim (fun engine ->
      let kv_config =
        { Kv.Cluster.default_config with n_storage_nodes = 3; replication_factor = 2 }
      in
      let db = Database.create engine ~kv_config ~n_commit_managers:2 () in
      let pn = Database.add_pn db () in
      setup pn [ (1, 100) ];
      let cluster = Database.cluster db in
      let net = Kv.Cluster.net cluster in
      let dead = List.nth (Database.commit_managers db) 1 in
      Commit_manager.crash dead;
      (* The replacement inherits the dead instance's identity ("cm1"),
         so this cut starves its log-recovery reads. *)
      Sim.Net.cut net ~name:"cm-isolated"
        ~from_:[ Commit_manager.endpoint dead ]
        ~to_:(List.init 3 Kv.Cluster.sn_endpoint)
        ~symmetric:true;
      (match Database.replace_commit_manager db ~dead with
      | _ -> Alcotest.fail "replacement recovered through a cut"
      | exception Kv.Op.Unavailable _ -> ());
      Alcotest.(check bool) "failed replacement registers nothing" true
        (List.memq dead (Database.commit_managers db));
      (* The fence landed regardless (it is installed node-locally even
         when its notification messages are lost) and returned promptly
         despite the turbulence. *)
      let epoch = Kv.Cluster.fence_senders cluster ~senders:[ "nobody" ] in
      Alcotest.(check bool) "fence_senders returns under partition" true (epoch > 0);
      Sim.Net.heal net ~name:"cm-isolated";
      let fresh = Database.replace_commit_manager db ~dead in
      Alcotest.(check bool) "post-heal replacement is live" true (Commit_manager.alive fresh);
      Alcotest.(check bool) "replacement took the dead slot" true
        (List.memq fresh (Database.commit_managers db)
        && not (List.memq dead (Database.commit_managers db)));
      (* The deployment still commits transactions through the fresh manager. *)
      let rid = rid_of pn 1 in
      Database.with_txn pn (fun txn ->
          match Txn.read txn ~table:"t" ~rid with
          | Some row -> Txn.update txn ~table:"t" ~rid [| row.(0); Value.Int 101 |]
          | None -> Alcotest.fail "row missing");
      Alcotest.(check int) "writes commit after the repair" 101 (value_of pn 1))

(* --- retry-backoff jitter ---------------------------------------------------------- *)

let test_backoff_jitter () =
  run_sim (fun engine ->
      let kv_config =
        { Kv.Cluster.default_config with n_storage_nodes = 2; replication_factor = 1 }
      in
      let db = Database.create engine ~kv_config () in
      let pn = Database.add_pn db () in
      let client = Pn.kv pn in
      let mean samples = List.fold_left ( + ) 0 samples / List.length samples in
      let sample attempts =
        List.init 200 (fun _ -> Kv.Client.backoff_ns client ~attempts)
      in
      let late = sample 1 and early = sample Kv.Client.max_retries in
      List.iter
        (fun samples ->
          let lo = List.fold_left min max_int samples
          and hi = List.fold_left max 0 samples in
          Alcotest.(check bool) "jitter stays within [base/2, 3*base/2)" true (hi < 3 * lo);
          Alcotest.(check bool) "pauses are jittered, not constant" true (hi > lo))
        [ early; late ];
      (* Exponential shape: each burned retry doubles the base pause. *)
      let ratio = float_of_int (mean late) /. float_of_int (mean early) in
      let expected = float_of_int (1 lsl (Kv.Client.max_retries - 1)) in
      Alcotest.(check bool) "backoff doubles per burned retry" true
        (ratio > 0.8 *. expected && ratio < 1.2 *. expected))

(* --- harness partition scenarios --------------------------------------------------- *)

let run_scenario seed scenario =
  let o = Check.run_one ~seed ~scenario () in
  Alcotest.(check (list string))
    (Printf.sprintf "seed %d %s: no violations" seed (Check.scenario_name scenario))
    [] o.Check.o_violations;
  Alcotest.(check bool)
    (Printf.sprintf "seed %d %s: made progress" seed (Check.scenario_name scenario))
    true
    (o.Check.o_committed > 0)

let test_partition_scenarios () =
  run_scenario 201 Check.Pn_cut;
  run_scenario 202 Check.Pn_cm_asym;
  run_scenario 203 Check.Flaky;
  run_scenario 204 Check.Recovery_partition;
  run_scenario 205 Check.Zombie

(* Regression pin (DESIGN.md §6, bug 11): seed 15 under pn-cut is the
   schedule where a partition delayed the notifier's log flush long
   enough for the tid-reclamation sweep to read an acknowledged commit's
   unflagged entry as an abort and roll its versions back.  The exact
   harness repro is `tell_check --seed 15 --scenario pn-cut`; keep this
   seed green. *)
let test_pn_cut_seed15_pin () = run_scenario 15 Check.Pn_cut

let () =
  Alcotest.run "partition"
    [
      ( "partitions",
        [
          Alcotest.test_case "link cuts: one-way, symmetric, heal" `Quick test_net_cuts;
          Alcotest.test_case "link loss and duplication" `Quick test_net_loss;
          Alcotest.test_case "zombie bounces off the epoch fence" `Quick test_zombie_fence;
          Alcotest.test_case "cm replacement fails cleanly when unreachable" `Quick
            test_replace_cm_unreachable;
          Alcotest.test_case "retry backoff is jittered exponential" `Quick
            test_backoff_jitter;
          Alcotest.test_case "harness partition scenarios" `Slow test_partition_scenarios;
          Alcotest.test_case "pin: pn-cut seed 15 (bug 11)" `Slow test_pn_cut_seed15_pin;
        ] );
    ]
