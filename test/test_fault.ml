(* Fault tolerance under load (§4.4) and the tell_check harness itself:
   storage-node crash + detector repair with concurrent TPC-C terminals,
   the fault-scenario matrix, the seed-determinism contract, network
   fault-window injection, and schedule perturbation. *)

module Sim = Tell_sim
module Kv = Tell_kv
open Tell_core
module Tpcc = Tell_tpcc
module Check = Tell_harness.Check

(* --- storage-node crash + repair under concurrent TPC-C load --------------------- *)

let test_sn_crash_under_load () =
  let engine = Sim.Engine.create () in
  let kv_config =
    { Kv.Cluster.default_config with n_storage_nodes = 4; replication_factor = 2 }
  in
  let db = Database.create engine ~kv_config () in
  let pn1 = Database.add_pn db () in
  let pn2 = Database.add_pn db () in
  let scale = Tpcc.Spec.sim_scale ~warehouses:2 in
  let _ = Tpcc.Loader.load (Database.cluster db) ~scale ~seed:1 in
  let tell = Tpcc.Tell_engine.create db ~pns:[ pn1; pn2 ] ~scale in
  let committed = ref 0 and stop = ref false in
  let rng = Sim.Rng.make 11 in
  for terminal_id = 0 to 7 do
    let term_rng = Sim.Rng.split rng in
    let pn = if terminal_id mod 2 = 0 then pn1 else pn2 in
    Sim.Engine.spawn engine ~group:(Pn.group pn) (fun () ->
        let conn = Tpcc.Tell_engine.connect tell ~terminal_id in
        let home_w = (terminal_id mod scale.warehouses) + 1 in
        while not !stop do
          let input =
            Tpcc.Spec.gen_txn term_rng ~scale ~mix:Tpcc.Spec.standard_mix ~home_w
          in
          match Tpcc.Tell_engine.execute conn input with
          | Tpcc.Engine_intf.Committed -> incr committed
          | Tpcc.Engine_intf.Aborted _ | Tpcc.Engine_intf.User_abort -> ()
          | exception Kv.Op.Unavailable _ -> Sim.Engine.sleep engine 50_000
        done)
  done;
  let committed_after_crash = ref 0 in
  let redundancy_restored = ref false in
  let violations = ref [ "audit did not run" ] in
  Sim.Engine.spawn engine (fun () ->
      Sim.Engine.sleep engine 10_000_000;
      let before = !committed in
      Database.crash_storage_node db 0;
      (* The failure detector notices the dead node and re-replicates its
         partitions onto the survivors. *)
      Sim.Engine.sleep engine 20_000_000;
      committed_after_crash := !committed - before;
      redundancy_restored :=
        Kv.Cluster.min_live_replication (Database.cluster db) = kv_config.replication_factor;
      stop := true;
      Sim.Engine.sleep engine 5_000_000;
      violations := Tpcc.Consistency.check_all pn1 ~scale);
  Sim.Engine.run engine ~until:10_000_000_000 ();
  Alcotest.(check bool) "progress after the crash" true (!committed_after_crash > 0);
  Alcotest.(check bool) "detector restored full redundancy" true !redundancy_restored;
  Alcotest.(check (list string)) "TPC-C consistency" [] !violations

(* --- harness scenario matrix ----------------------------------------------------- *)

let run_scenario seed scenario =
  let o = Check.run_one ~seed ~scenario () in
  Alcotest.(check (list string))
    (Printf.sprintf "seed %d %s: no violations" seed (Check.scenario_name scenario))
    [] o.Check.o_violations;
  Alcotest.(check bool)
    (Printf.sprintf "seed %d %s: made progress" seed (Check.scenario_name scenario))
    true
    (o.Check.o_committed > 0)

let test_scenarios () =
  run_scenario 101 Check.Sn_crash;
  run_scenario 102 Check.Pn_crash;
  run_scenario 103 Check.Cm_failover;
  run_scenario 104 Check.Chaos

(* --- regression pin: the tid-order lost update (DESIGN.md §6, bug 5) -------------- *)

(* Tids come from per-manager ranges, so a transaction served by one
   manager can hold a tid {e below} a version a faster transaction
   (served by the other manager's range) already committed to the same
   record.  Its update would sort under that version and be shadowed for
   every future reader — a silent lost update, found by the harness and
   fixed by the tid-order discipline in [Txn.assert_no_invisible_version].
   This pin reconstructs the race deterministically with two PNs routed
   to two commit managers, and asserts both halves of the discipline:
   (a) the version is invisible to a concurrent low-tid writer, and
   (b) it is visible-but-higher for a low-tid writer that begins after
   the commit.  Either way the writer must abort, never shadow. *)
let test_tid_order_lost_update_pin () =
  let engine = Sim.Engine.create () in
  let result = ref false in
  Sim.Engine.spawn engine (fun () ->
      let kv_config =
        { Kv.Cluster.default_config with n_storage_nodes = 3; replication_factor = 1 }
      in
      let db = Database.create engine ~kv_config ~n_commit_managers:2 () in
      let pn0 = Database.add_pn db () in
      let pn1 = Database.add_pn db () in
      ignore (Database.exec pn0 "CREATE TABLE t (id INT, v INT, PRIMARY KEY (id))");
      ignore (Database.exec pn0 "INSERT INTO t VALUES (1, 100)");
      let rid =
        Database.with_txn pn0 (fun txn ->
            match
              Txn.index_lookup txn ~index:"pk_t" ~key:(Codec.encode_key [ Value.Int 1 ])
            with
            | [ rid ] -> rid
            | _ -> Alcotest.fail "pk lookup")
      in
      (* Let the managers sync so pn1's snapshots admit the setup commits
         (they were decided by pn0's manager). *)
      Notifier.drain (Pn.notifier pn0);
      Sim.Engine.sleep engine 1_500_000;
      (* t_low claims a tid from cm0's low range before the racing writer
         even begins; t_high, on the other PN, is served from cm1's range. *)
      let t_low = Txn.begin_txn pn0 in
      let t_high = Txn.begin_txn pn1 in
      Alcotest.(check bool) "ranges invert tid order" true
        (Txn.tid t_high > Txn.tid t_low + 32);
      Txn.update t_high ~table:"t" ~rid [| Value.Int 1; Value.Int 200 |];
      Txn.commit t_high;
      (* (a) The concurrent low-tid writer: version 200's tid is invisible
         to its snapshot, so the update must conflict. *)
      (match Txn.update t_low ~table:"t" ~rid [| Value.Int 1; Value.Int 111 |] with
      | () -> (
          try
            Txn.commit t_low;
            Alcotest.fail "concurrent low-tid writer must not commit"
          with Txn.Conflict _ -> ())
      | exception Txn.Conflict _ -> ());
      (* Let the commit notification land and the managers sync, so a
         fresh transaction's snapshot admits the winner's version.  Keep
         the sleeps short: after [retire_after_ns] of inactivity cm0
         would retire its low range and variant (b) would vanish. *)
      Notifier.drain (Pn.notifier pn1);
      Sim.Engine.sleep engine 1_500_000;
      (* (b) A fresh writer on pn0 still holds a lower tid than the
         committed version: visible, but committing would shadow it. *)
      let t_low2 = Txn.begin_txn pn0 in
      Alcotest.(check bool) "fresh tid still below the winner" true
        (Txn.tid t_low2 < Txn.tid t_high);
      (match Txn.update t_low2 ~table:"t" ~rid [| Value.Int 1; Value.Int 112 |] with
      | () -> (
          try
            Txn.commit t_low2;
            Alcotest.fail "shadowed low-tid writer must not commit"
          with Txn.Conflict _ -> ())
      | exception Txn.Conflict _ -> ());
      (match Database.exec pn0 "SELECT v FROM t WHERE id = 1" with
      | Sql_plan.Rows { rows = [ [| Value.Int v |] ]; _ } ->
          Alcotest.(check int) "winner's write survives" 200 v
      | _ -> Alcotest.fail "read failed");
      result := true);
  Sim.Engine.run engine ~until:60_000_000_000 ();
  Alcotest.(check bool) "finished" true !result

(* --- seed determinism ------------------------------------------------------------ *)

let test_determinism_audit () =
  let outcome, divergences = Check.determinism_audit ~seed:7 ~scenario:Check.Chaos () in
  Alcotest.(check (list string)) "replay diverged" [] divergences;
  Alcotest.(check (list string)) "no violations" [] outcome.Check.o_violations

(* The ready-queue tie-break shuffle must change the schedule (otherwise
   the sweep explores one interleaving per scenario), while both
   schedules keep every invariant. *)
let test_tie_break_perturbation () =
  let base = Check.run_one ~seed:9 ~scenario:Check.Sn_crash ~perturb:false () in
  let shuffled = Check.run_one ~seed:9 ~scenario:Check.Sn_crash ~perturb:true () in
  Alcotest.(check (list string)) "unperturbed passes" [] base.Check.o_violations;
  Alcotest.(check (list string)) "perturbed passes" [] shuffled.Check.o_violations;
  Alcotest.(check bool)
    "perturbation changed the schedule" true
    (base.Check.o_counters <> shuffled.Check.o_counters)

(* --- network fault windows ------------------------------------------------------- *)

let test_net_fault_window () =
  let engine = Sim.Engine.create () in
  let net = Sim.Net.create engine (Sim.Rng.make 3) Sim.Net.infiniband in
  let checked = ref false in
  Sim.Engine.spawn engine (fun () ->
      let sample () =
        let acc = ref 0 in
        for _ = 1 to 50 do
          acc := !acc + Sim.Net.delay net ~bytes:1024
        done;
        !acc / 50
      in
      let before = sample () in
      Sim.Net.inject_fault net ~from_ns:1_000_000 ~until_ns:2_000_000 ~factor:5.0
        ~extra_ns:10_000 ();
      Sim.Engine.sleep engine 1_500_000;
      let inside = sample () in
      Sim.Engine.sleep engine 1_000_000;
      let after = sample () in
      Alcotest.(check bool) "window degrades latency" true (inside > 3 * before);
      Alcotest.(check bool) "window expires" true (after < 2 * before);
      checked := true);
  Sim.Engine.run engine ~until:10_000_000 ();
  Alcotest.(check bool) "ran" true !checked

let () =
  Alcotest.run "fault"
    [
      ( "faults",
        [
          Alcotest.test_case "sn crash + repair under TPC-C load" `Quick
            test_sn_crash_under_load;
          Alcotest.test_case "harness scenario matrix" `Slow test_scenarios;
          Alcotest.test_case "pin: tid-order lost update aborts (bug 5)" `Quick
            test_tid_order_lost_update_pin;
          Alcotest.test_case "determinism audit" `Slow test_determinism_audit;
          Alcotest.test_case "tie-break perturbation" `Slow test_tie_break_perturbation;
          Alcotest.test_case "net fault window" `Quick test_net_fault_window;
        ] );
    ]
