(* The pipelined read path: fused index→record batched reads must be
   observably equivalent to their sequential counterparts (same rows,
   same conflicts, same serializable read tokens, same recorded history),
   the B+tree multi-lookup must survive stale cached separators under a
   concurrent split, and the begin-window coalescer must hand out unique
   tids over one start RPC and fail every waiter cleanly — with no leaked
   tid claims — when the commit manager dies mid-window. *)

module Sim = Tell_sim
module Kv = Tell_kv
open Tell_core
module Hist = Tell_histcheck

let run_sim f =
  let engine = Sim.Engine.create () in
  let result = ref None in
  Sim.Engine.spawn engine (fun () -> result := Some (f engine));
  Sim.Engine.run engine ~until:60_000_000_000 ();
  match !result with Some r -> r | None -> Alcotest.fail "did not finish"

let make_db ?begin_window_ns engine =
  let kv_config =
    { Kv.Cluster.default_config with n_storage_nodes = 3; replication_factor = 1 }
  in
  let db = Database.create engine ~kv_config () in
  (db, Database.add_pn db ?begin_window_ns ())

let setup pn rows =
  ignore (Database.exec pn "CREATE TABLE t (id INT, v INT, PRIMARY KEY (id))");
  List.iter
    (fun (id, v) -> ignore (Database.exec pn (Printf.sprintf "INSERT INTO t VALUES (%d, %d)" id v)))
    rows

let pk id = Codec.encode_key [ Value.Int id ]

let value_of pn id =
  match Database.exec pn (Printf.sprintf "SELECT v FROM t WHERE id = %d" id) with
  | Sql_plan.Rows { rows = [ [| Value.Int v |] ]; _ } -> v
  | _ -> Alcotest.fail "read failed"

(* Sequential reference: one index traversal plus one record read. *)
let sequential_read txn id =
  match Txn.index_lookup txn ~index:"pk_t" ~key:(pk id) with
  | [] -> None
  | rid :: _ -> (
      match Txn.read txn ~table:"t" ~rid with Some row -> Some (rid, row) | None -> None)

let value_testable =
  Alcotest.testable (fun fmt v -> Format.fprintf fmt "%s" (Value.to_string v)) ( = )

let check_opt_row = Alcotest.(check (option (pair int (array value_testable))))

let test_batched_equals_sequential () =
  run_sim (fun engine ->
      let _, pn = make_db engine in
      setup pn (List.init 8 (fun i -> (i + 1, 10 * (i + 1))));
      ignore (Database.exec pn "DELETE FROM t WHERE id = 6");
      Database.with_txn pn (fun txn ->
          let ids = [ 3; 1; 42; 6; 8; 1 ] in
          (* 42 was never inserted; 6 is deleted; 1 repeats. *)
          let batched = Txn.read_by_pk_many txn ~table:"t" ~index:"pk_t" ~keys:(List.map pk ids) in
          let sequential = List.map (sequential_read txn) ids in
          List.iteri
            (fun i (b, s) -> check_opt_row (Printf.sprintf "row %d" i) s b)
            (List.combine batched sequential);
          (* Batched exact-key index lookups agree with one-at-a-time. *)
          let keys = List.map pk [ 2; 42; 7 ] in
          let many = Txn.index_read_many txn ~index:"pk_t" ~keys in
          List.iter2
            (fun key (key', rids) ->
              Alcotest.(check string) "key echoed" key key';
              Alcotest.(check (list int)) "rids" (Txn.index_lookup txn ~index:"pk_t" ~key) rids)
            keys many))

let test_batched_sees_own_writes () =
  run_sim (fun engine ->
      let _, pn = make_db engine in
      setup pn [ (1, 10); (2, 20) ];
      Database.with_txn pn (fun txn ->
          (* Buffered update, buffered insert, buffered delete: the fused
             path must merge all three exactly like the sequential path. *)
          ignore (Database.exec_in txn "UPDATE t SET v = 11 WHERE id = 1");
          ignore (Database.exec_in txn "INSERT INTO t VALUES (9, 90)");
          ignore (Database.exec_in txn "DELETE FROM t WHERE id = 2");
          let ids = [ 1; 9; 2 ] in
          let batched = Txn.read_by_pk_many txn ~table:"t" ~index:"pk_t" ~keys:(List.map pk ids) in
          let sequential = List.map (sequential_read txn) ids in
          List.iteri
            (fun i (b, s) -> check_opt_row (Printf.sprintf "own write %d" i) s b)
            (List.combine batched sequential);
          (match batched with
          | [ Some (_, row1); Some (_, row9); None ] ->
              Alcotest.(check int) "own update visible" 11 (Value.as_int row1.(1));
              Alcotest.(check int) "own insert visible" 90 (Value.as_int row9.(1))
          | _ -> Alcotest.fail "unexpected batched shape")))

let test_async_reads_equal_sync () =
  run_sim (fun engine ->
      let _, pn = make_db engine in
      setup pn [ (1, 10); (2, 20); (3, 30) ];
      Database.with_txn pn (fun txn ->
          let rid_of id =
            match Txn.index_lookup txn ~index:"pk_t" ~key:(pk id) with
            | rid :: _ -> rid
            | [] -> Alcotest.fail "pk lookup"
          in
          let r1 = rid_of 1 and r2 = rid_of 2 and r3 = rid_of 3 in
          let f1 = Txn.read_async txn ~table:"t" ~rid:r1 in
          let f2 = Txn.read_async txn ~table:"t" ~rid:r2 in
          let f3 = Txn.read_async txn ~table:"t" ~rid:r3 in
          (* Awaiting any future flushes the whole registration set. *)
          List.iter2
            (fun fut rid ->
              check_opt_row "async = sync"
                (Option.map (fun row -> (rid, row)) (Txn.read txn ~table:"t" ~rid))
                (Option.map (fun row -> (rid, row)) (Txn.await txn fut)))
            [ f2; f1; f3 ] [ r2; r1; r3 ]))

let test_batched_conflict_parity () =
  run_sim (fun engine ->
      let _, pn = make_db engine in
      setup pn [ (1, 100); (2, 200) ];
      (* Lost-update race through the fused read path: both read id 1
         batched, both write it; SI must still abort exactly one. *)
      let attempt () =
        let txn = Txn.begin_txn pn in
        match Txn.read_by_pk_many txn ~table:"t" ~index:"pk_t" ~keys:[ pk 1; pk 2 ] with
        | [ Some (rid, row); Some _ ] ->
            Txn.update txn ~table:"t" ~rid [| row.(0); Value.Int (Value.as_int row.(1) + 1) |];
            txn
        | _ -> Alcotest.fail "batched read failed"
      in
      let t1 = attempt () in
      let t2 = attempt () in
      let commits = ref 0 in
      (try Txn.commit t1; incr commits with Txn.Conflict _ -> ());
      (try Txn.commit t2; incr commits with Txn.Conflict _ -> ());
      Alcotest.(check int) "exactly one increment survived" 1 !commits;
      Alcotest.(check int) "value" 101 (value_of pn 1);
      (* And no false conflicts: batch-reading a row a concurrent writer
         updated is fine under SI as long as the write sets are disjoint. *)
      let reader = Txn.begin_txn pn in
      (match Txn.read_by_pk_many reader ~table:"t" ~index:"pk_t" ~keys:[ pk 1; pk 2 ] with
      | [ Some _; Some (rid2, row2) ] ->
          ignore (Database.exec pn "UPDATE t SET v = 999 WHERE id = 1");
          Txn.update reader ~table:"t" ~rid:rid2 [| row2.(0); Value.Int 7 |]
      | _ -> Alcotest.fail "batched read failed");
      (match Txn.commit reader with
      | () -> ()
      | exception Txn.Conflict _ -> Alcotest.fail "disjoint write sets must not conflict");
      Alcotest.(check int) "disjoint update applied" 7 (value_of pn 2))

let test_batched_serializable_tokens () =
  run_sim (fun engine ->
      let _, pn = make_db engine in
      setup pn [ (1, 10); (2, 20) ];
      (* A serializable transaction whose only read of id 2 went through
         the fused path must still fail validation when id 2 changes
         under it — i.e. the batch recorded the read token. *)
      let t = Txn.begin_txn ~isolation:Txn.Serializable pn in
      (match Txn.read_by_pk_many t ~table:"t" ~index:"pk_t" ~keys:[ pk 1; pk 2 ] with
      | [ Some (rid1, row1); Some _ ] ->
          Txn.update t ~table:"t" ~rid:rid1 [| row1.(0); Value.Int 111 |]
      | _ -> Alcotest.fail "batched read failed");
      ignore (Database.exec pn "UPDATE t SET v = 999 WHERE id = 2");
      (match Txn.commit t with
      | () -> Alcotest.fail "stale batched read must fail serializable validation"
      | exception Txn.Conflict _ -> ());
      Alcotest.(check int) "write rolled back" 10 (value_of pn 1);
      (* Control: with no interference the same shape commits. *)
      let t2 = Txn.begin_txn ~isolation:Txn.Serializable pn in
      (match Txn.read_by_pk_many t2 ~table:"t" ~index:"pk_t" ~keys:[ pk 1; pk 2 ] with
      | [ Some (rid1, row1); Some _ ] ->
          Txn.update t2 ~table:"t" ~rid:rid1 [| row1.(0); Value.Int 5 |]
      | _ -> Alcotest.fail "batched read failed");
      Txn.commit t2;
      Alcotest.(check int) "quiet serializable commit applied" 5 (value_of pn 1))

let test_batched_history_is_clean () =
  run_sim (fun engine ->
      let _, pn = make_db engine in
      (* Record from before the setup writes so every later read resolves
         to a version the history knows about. *)
      History.start ();
      setup pn [ (1, 10); (2, 20); (3, 30) ];
      let workers = 4 and finished = ref 0 in
      for w = 1 to workers do
        Sim.Engine.spawn engine (fun () ->
            for round = 1 to 5 do
              (try
                 Database.with_txn pn (fun txn ->
                     match
                       Txn.read_by_pk_many txn ~table:"t" ~index:"pk_t"
                         ~keys:[ pk 1; pk 2; pk 3 ]
                     with
                     | [ Some (r1, row1); Some _; Some _ ] ->
                         if (w + round) mod 2 = 0 then
                           Txn.update txn ~table:"t" ~rid:r1
                             [| row1.(0); Value.Int (Value.as_int row1.(1) + 1) |]
                     | _ -> Alcotest.fail "batched read failed")
               with Txn.Conflict _ -> ());
              Sim.Engine.sleep engine 20_000
            done;
            incr finished)
      done;
      while !finished < workers do
        Sim.Engine.sleep engine 1_000_000
      done;
      let events = History.stop () in
      Alcotest.(check bool) "history captured" true (List.length events > 0);
      Alcotest.(check (list string)) "no SI anomalies" [] (Hist.Checker.check events))

(* --- B+tree multi-lookup under a concurrent split ------------------------------- *)

let test_lookup_many_stale_leaf_fallback () =
  run_sim (fun engine ->
      let cluster =
        Kv.Cluster.create engine { Kv.Cluster.default_config with n_storage_nodes = 3 }
      in
      let client () =
        Kv.Client.create cluster ~group:(Sim.Engine.root_group engine)
      in
      let kv1 = client () and kv2 = client () in
      Btree.create kv1 ~name:"idx";
      let t1 = Btree.attach kv1 ~name:"idx" in
      let t2 = Btree.attach kv2 ~name:"idx" in
      let key i = Printf.sprintf "key%05d" i in
      for i = 1 to 40 do
        Btree.insert t2 ~key:(key i) ~rid:i
      done;
      (* Warm t1's inner-node cache so it memoises today's separators. *)
      List.iter (fun i -> Alcotest.(check (list int)) "warm" [ i ] (Btree.lookup t1 ~key:(key i)))
        [ 1; 20; 40 ];
      (* Split the leaves out from under the cache through the other
         handle: enough inserts to force leaf (and inner) splits. *)
      for i = 41 to 2_000 do
        Btree.insert t2 ~key:(key i) ~rid:i
      done;
      (* t1's multi-lookup must still be correct everywhere: keys whose
         cached leaf is still authoritative take the fast path, moved keys
         fall back to the full traversal. *)
      let ids = List.init 200 (fun i -> (i * 10) + 1) in
      let results = Btree.lookup_many t1 ~keys:(List.map key ids) in
      List.iter2
        (fun i (k, rids) ->
          Alcotest.(check string) "key echoed" (key i) k;
          Alcotest.(check (list int)) (Printf.sprintf "rids for %d" i) [ i ] rids)
        ids results;
      Btree.check_invariants t2)

(* --- Begin-window coalescing ---------------------------------------------------- *)

let test_begin_coalescing_shares_one_rpc () =
  run_sim (fun engine ->
      let _, pn = make_db ~begin_window_ns:100_000 engine in
      setup pn [ (1, 10) ];
      let begins0, rpcs0 = Pn.begin_stats pn in
      let n = 6 in
      let txns = ref [] and finished = ref 0 in
      for _ = 1 to n do
        Sim.Engine.spawn engine (fun () ->
            let txn = Txn.begin_txn pn in
            txns := txn :: !txns;
            incr finished)
      done;
      while !finished < n do
        Sim.Engine.sleep engine 100_000
      done;
      let txns = !txns in
      (* Unique tids, all claimed, all sharing the window's snapshot. *)
      let tids = List.sort_uniq compare (List.map Txn.tid txns) in
      Alcotest.(check int) "distinct tids" n (List.length tids);
      List.iter
        (fun tid -> Alcotest.(check bool) "tid claimed" true (Pn.claims pn ~tid))
        tids;
      (match txns with
      | first :: rest ->
          List.iter
            (fun txn ->
              Alcotest.(check bool) "shared window snapshot" true
                (Version_set.equal (Txn.snapshot first) (Txn.snapshot txn)))
            rest
      | [] -> Alcotest.fail "no transactions");
      let begins1, rpcs1 = Pn.begin_stats pn in
      Alcotest.(check int) "begins counted" n (begins1 - begins0);
      Alcotest.(check int) "one coalesced start RPC" 1 (rpcs1 - rpcs0);
      List.iter Txn.commit txns;
      (* Sequential begins coalesce nothing: each pays its own RPC. *)
      let _, rpcs2 = Pn.begin_stats pn in
      Database.with_txn pn (fun _ -> ());
      Database.with_txn pn (fun _ -> ());
      let _, rpcs3 = Pn.begin_stats pn in
      Alcotest.(check int) "sequential begins pay per-RPC" 2 (rpcs3 - rpcs2))

let test_begin_window_cm_crash () =
  run_sim (fun engine ->
      let db, pn = make_db ~begin_window_ns:100_000 engine in
      setup pn [ (1, 10) ];
      let cm = List.hd (Database.commit_managers db) in
      let begins0, rpcs0 = Pn.begin_stats pn in
      let n = 4 in
      let unavailable = ref 0 and started = ref 0 and finished = ref 0 in
      for _ = 1 to n do
        Sim.Engine.spawn engine (fun () ->
            (match Txn.begin_txn pn with
            | _ -> incr started
            | exception Kv.Op.Unavailable _ -> incr unavailable);
            incr finished)
      done;
      (* Kill the manager while the window is still open (10 µs into the
         100 µs window): the leader's batched start bounces and every
         waiter must see the failure. *)
      Sim.Engine.spawn engine (fun () ->
          Sim.Engine.sleep engine 10_000;
          Commit_manager.crash cm);
      while !finished < n do
        Sim.Engine.sleep engine 100_000
      done;
      Alcotest.(check int) "no transaction started" 0 !started;
      Alcotest.(check int) "every waiter saw Unavailable" n !unavailable;
      let begins1, rpcs1 = Pn.begin_stats pn in
      Alcotest.(check int) "begins counted" n (begins1 - begins0);
      Alcotest.(check int) "single failed RPC" 1 (rpcs1 - rpcs0);
      (* No leaked tid claims for the reclamation sweep to trip over: the
         failed window claimed nothing. *)
      for tid = 0 to 5_000 do
        if Pn.claims pn ~tid then
          Alcotest.failf "leaked claim for tid %d after failed begin window" tid
      done)

let () =
  Alcotest.run "read_pipeline"
    [
      ( "batched reads",
        [
          Alcotest.test_case "batched = sequential" `Quick test_batched_equals_sequential;
          Alcotest.test_case "batched sees own writes" `Quick test_batched_sees_own_writes;
          Alcotest.test_case "async reads = sync reads" `Quick test_async_reads_equal_sync;
          Alcotest.test_case "conflict parity" `Quick test_batched_conflict_parity;
          Alcotest.test_case "serializable read tokens" `Quick test_batched_serializable_tokens;
          Alcotest.test_case "history is anomaly-free" `Quick test_batched_history_is_clean;
        ] );
      ( "btree",
        [
          Alcotest.test_case "lookup_many stale-leaf fallback" `Quick
            test_lookup_many_stale_leaf_fallback;
        ] );
      ( "begin coalescing",
        [
          Alcotest.test_case "one RPC per window" `Quick test_begin_coalescing_shares_one_rpc;
          Alcotest.test_case "cm crash mid-window" `Quick test_begin_window_cm_crash;
        ] );
    ]
