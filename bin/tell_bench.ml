(* Command-line interface to the benchmark harness:

     tell_bench experiment fig8 --quick
     tell_bench tell --pns 4 --sns 7 --rf 3 --mix read --net ethernet
     tell_bench voltdb --nodes 5 --k 2 --mix shardable                  *)

open Cmdliner
module Tpcc = Tell_tpcc
open Tell_harness

let mix_of_string = function
  | "standard" | "write" -> Tpcc.Spec.standard_mix
  | "read" | "read-intensive" -> Tpcc.Spec.read_intensive_mix
  | "shardable" -> Tpcc.Spec.shardable_mix
  | other -> invalid_arg ("unknown mix: " ^ other ^ " (standard|read|shardable)")

let print_outcome label cores = function
  | Scenarios.Report r ->
      Printf.printf
        "%s cores=%d\n  TpmC      %10.0f\n  Tps       %10.0f\n  aborts    %9.2f%%\n\
        \  latency   %8.2f ms (σ %.2f, TP99 %.2f, TP999 %.2f)\n  committed %10d (user rollbacks %d)\n"
        label cores (Tpcc.Driver.tpmc r) (Tpcc.Driver.tps r) (Tpcc.Driver.abort_rate r)
        (Tpcc.Driver.mean_latency_ms r) (Tpcc.Driver.stddev_latency_ms r)
        (Tpcc.Driver.percentile_latency_ms r 99.0)
        (Tpcc.Driver.percentile_latency_ms r 99.9)
        r.committed r.user_aborts
  | Scenarios.Out_of_memory -> Printf.printf "%s: storage out of memory\n" label

(* Commit-pipeline instrumentation: per-phase latency breakdown, client
   batching ratio, and store requests per committed new-order. *)
let requests_per_new_order (detail : Scenarios.tell_detail) = function
  | Scenarios.Report r when r.Tpcc.Driver.new_order_commits > 0 ->
      Some (float_of_int detail.d_requests /. float_of_int r.Tpcc.Driver.new_order_commits)
  | _ -> None

let print_detail (detail : Scenarios.tell_detail) outcome =
  Printf.printf "  commit pipeline (per txn phase):\n";
  List.iter
    (fun (name, hist, ops) ->
      Printf.printf "    %-7s n=%-8d mean=%8.1f us  TP99=%8.1f us  ops=%d\n" name
        (Tell_sim.Stats.Histogram.count hist)
        (Tell_sim.Stats.Histogram.mean hist /. 1e3)
        (float_of_int (Tell_sim.Stats.Histogram.percentile hist 99.0) /. 1e3)
        ops)
    detail.d_phases;
  Printf.printf "  store traffic: %d requests, %d ops (batching %.2f ops/request)\n"
    detail.d_requests detail.d_ops
    (if detail.d_requests = 0 then 0.0
     else float_of_int detail.d_ops /. float_of_int detail.d_requests);
  Printf.printf "  begin coalescing: %d begins over %d start RPCs (%.2f begins/RPC)\n"
    detail.d_begins detail.d_begin_rpcs
    (if detail.d_begin_rpcs = 0 then 0.0
     else float_of_int detail.d_begins /. float_of_int detail.d_begin_rpcs);
  match requests_per_new_order detail outcome with
  | Some per_no -> Printf.printf "  store requests per new-order: %.1f\n" per_no
  | None -> ()

let json_of_run c (detail : Scenarios.tell_detail) outcome =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Printf.bprintf buf "  \"config\": {\"pns\": %d, \"sns\": %d, \"cms\": %d, \"rf\": %d, \"warehouses\": %d, \"seed\": %d},\n"
    c.Scenarios.n_pns c.n_sns c.n_cms c.rf c.warehouses c.seed;
  (match outcome with
  | Scenarios.Report r ->
      Printf.bprintf buf
        "  \"tpmc\": %.1f,\n  \"tps\": %.1f,\n  \"abort_rate_pct\": %.3f,\n  \"committed\": %d,\n  \"new_order_commits\": %d,\n"
        (Tpcc.Driver.tpmc r) (Tpcc.Driver.tps r) (Tpcc.Driver.abort_rate r) r.committed
        r.new_order_commits
  | Scenarios.Out_of_memory -> Buffer.add_string buf "  \"oom\": true,\n");
  Printf.bprintf buf "  \"requests_sent\": %d,\n  \"ops_sent\": %d,\n" detail.d_requests detail.d_ops;
  Printf.bprintf buf "  \"batching_ratio\": %.3f,\n"
    (if detail.d_requests = 0 then 0.0
     else float_of_int detail.d_ops /. float_of_int detail.d_requests);
  Printf.bprintf buf "  \"begins\": %d,\n  \"begin_rpcs\": %d,\n" detail.d_begins
    detail.d_begin_rpcs;
  (match requests_per_new_order detail outcome with
  | Some per_no -> Printf.bprintf buf "  \"requests_per_new_order\": %.2f,\n" per_no
  | None -> ());
  Buffer.add_string buf "  \"commit_phases\": {\n";
  let n_phases = List.length detail.d_phases in
  List.iteri
    (fun i (name, hist, ops) ->
      Printf.bprintf buf
        "    \"%s\": {\"count\": %d, \"mean_us\": %.2f, \"p99_us\": %.2f, \"ops\": %d}%s\n" name
        (Tell_sim.Stats.Histogram.count hist)
        (Tell_sim.Stats.Histogram.mean hist /. 1e3)
        (float_of_int (Tell_sim.Stats.Histogram.percentile hist 99.0) /. 1e3)
        ops
        (if i < n_phases - 1 then "," else ""))
    detail.d_phases;
  Buffer.add_string buf "  }\n}\n";
  Buffer.contents buf

(* Shared options *)
let mix_arg =
  Arg.(value & opt string "standard" & info [ "mix" ] ~doc:"Workload mix: standard|read|shardable")

let warehouses_arg = Arg.(value & opt int 32 & info [ "warehouses"; "w" ] ~doc:"TPC-C warehouses")
let measure_arg = Arg.(value & opt int 600 & info [ "measure-ms" ] ~doc:"Measurement window (virtual ms)")
let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Deterministic simulation seed")

(* tell subcommand *)
let tell_cmd =
  let run pns sns cms rf threads net buffer mix warehouses measure seed json =
    let net =
      match Tell_sim.Net.profile_of_string net with
      | Some p -> p
      | None -> invalid_arg ("unknown network: " ^ net)
    in
    let buffer =
      match String.lowercase_ascii buffer with
      | "tb" -> Tell_core.Buffer_pool.Transaction_buffer
      | "sb" -> Tell_core.Buffer_pool.Shared_record_buffer { capacity = 100_000 }
      | "sbvs10" -> Tell_core.Buffer_pool.Shared_vs_buffer { capacity = 100_000; unit_size = 10 }
      | "sbvs1000" -> Tell_core.Buffer_pool.Shared_vs_buffer { capacity = 100_000; unit_size = 1000 }
      | other -> invalid_arg ("unknown buffer strategy: " ^ other)
    in
    let c =
      {
        Scenarios.default_tell with
        n_pns = pns;
        n_sns = sns;
        n_cms = cms;
        rf;
        threads_per_pn = threads;
        net;
        buffer;
        mix = mix_of_string mix;
        warehouses;
        measure_ns = measure * 1_000_000;
        seed;
      }
    in
    let outcome, detail = Scenarios.run_tell_detailed c in
    print_outcome "tell" (Scenarios.tell_cores c) outcome;
    print_detail detail outcome;
    Option.iter
      (fun path ->
        let oc = open_out path in
        output_string oc (json_of_run c detail outcome);
        close_out oc;
        Printf.printf "  wrote %s\n" path)
      json
  in
  let pns = Arg.(value & opt int 4 & info [ "pns" ] ~doc:"Processing nodes") in
  let sns = Arg.(value & opt int 7 & info [ "sns" ] ~doc:"Storage nodes") in
  let cms = Arg.(value & opt int 1 & info [ "cms" ] ~doc:"Commit managers") in
  let rf = Arg.(value & opt int 1 & info [ "rf" ] ~doc:"Replication factor") in
  let threads = Arg.(value & opt int 8 & info [ "threads" ] ~doc:"Worker threads per PN") in
  let net = Arg.(value & opt string "infiniband" & info [ "net" ] ~doc:"infiniband|ethernet") in
  let buffer = Arg.(value & opt string "tb" & info [ "buffer" ] ~doc:"TB|SB|SBVS10|SBVS1000") in
  let json =
    Arg.(value & opt (some string) None & info [ "json" ] ~doc:"Write a machine-readable run summary to $(docv)" ~docv:"FILE")
  in
  Cmd.v (Cmd.info "tell" ~doc:"Run TPC-C on the Tell shared-data database")
    Term.(
      const run $ pns $ sns $ cms $ rf $ threads $ net $ buffer $ mix_arg $ warehouses_arg
      $ measure_arg $ seed_arg $ json)

(* voltdb subcommand *)
let voltdb_cmd =
  let run nodes k mix warehouses measure seed =
    let c =
      {
        Scenarios.default_voltdb with
        v_nodes = nodes;
        v_k_factor = k;
        v_mix = mix_of_string mix;
        v_warehouses = warehouses;
        v_measure_ns = measure * 1_000_000;
        v_seed = seed;
      }
    in
    print_outcome "voltdb" (Scenarios.voltdb_cores c) (Scenarios.run_voltdb c)
  in
  let nodes = Arg.(value & opt int 3 & info [ "nodes" ] ~doc:"Cluster nodes") in
  let k = Arg.(value & opt int 0 & info [ "k" ] ~doc:"K-factor (extra replicas)") in
  Cmd.v (Cmd.info "voltdb" ~doc:"Run TPC-C on the VoltDB baseline model")
    Term.(const run $ nodes $ k $ mix_arg $ warehouses_arg $ measure_arg $ seed_arg)

(* mysql subcommand *)
let ndb_cmd =
  let run dn sql replicas mix warehouses measure seed =
    let c =
      {
        Scenarios.default_ndb with
        m_data_nodes = dn;
        m_sql_nodes = sql;
        m_replicas = replicas;
        m_mix = mix_of_string mix;
        m_warehouses = warehouses;
        m_measure_ns = measure * 1_000_000;
        m_seed = seed;
      }
    in
    print_outcome "mysql-cluster" (Scenarios.ndb_cores c) (Scenarios.run_ndb c)
  in
  let dn = Arg.(value & opt int 3 & info [ "data-nodes" ] ~doc:"NDB data nodes") in
  let sql = Arg.(value & opt int 2 & info [ "sql-nodes" ] ~doc:"SQL nodes") in
  let replicas = Arg.(value & opt int 1 & info [ "replicas" ] ~doc:"Fragment replicas") in
  Cmd.v (Cmd.info "mysql" ~doc:"Run TPC-C on the MySQL Cluster baseline model")
    Term.(const run $ dn $ sql $ replicas $ mix_arg $ warehouses_arg $ measure_arg $ seed_arg)

(* fdb subcommand *)
let fdb_cmd =
  let run nodes replicas mix warehouses measure seed =
    let c =
      {
        Scenarios.default_fdb with
        f_nodes = nodes;
        f_replicas = replicas;
        f_mix = mix_of_string mix;
        f_warehouses = warehouses;
        f_measure_ns = measure * 1_000_000;
        f_seed = seed;
      }
    in
    print_outcome "foundationdb" (Scenarios.fdb_cores c) (Scenarios.run_fdb c)
  in
  let nodes = Arg.(value & opt int 3 & info [ "nodes" ] ~doc:"Nodes per layer") in
  let replicas = Arg.(value & opt int 3 & info [ "replicas" ] ~doc:"Redundancy mode") in
  Cmd.v (Cmd.info "fdb" ~doc:"Run TPC-C on the FoundationDB baseline model")
    Term.(const run $ nodes $ replicas $ mix_arg $ warehouses_arg $ measure_arg $ seed_arg)

(* experiment subcommand *)
let experiment_cmd =
  let run name quick =
    let intensity = if quick then Experiments.Quick else Experiments.Full in
    Experiments.by_name name intensity
  in
  let exp_name =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"NAME"
          ~doc:
            (Printf.sprintf "One of: %s, all" (String.concat ", " Experiments.names)))
  in
  let quick = Arg.(value & flag & info [ "quick" ] ~doc:"Reduced sweep for fast runs") in
  Cmd.v (Cmd.info "experiment" ~doc:"Regenerate a table/figure of the paper")
    Term.(const run $ exp_name $ quick)

let () =
  let doc = "TPC-C benchmarks for the Tell shared-data database reproduction" in
  let info = Cmd.info "tell_bench" ~version:"1.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ tell_cmd; voltdb_cmd; ndb_cmd; fdb_cmd; experiment_cmd ]))
