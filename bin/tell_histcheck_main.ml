(* tell_histcheck: offline SI anomaly checker for recorded transaction
   histories (Elle-lite; DESIGN.md §7).

   Re-checks a history dumped by `tell_check --history-dump FILE`:
   rebuilds the direct serialization graph and reports Adya-style
   anomalies (G0/G1a/G1b/G1c, lost update, G-SI cycles) plus
   snapshot-read violations, each with a minimal witness.

     tell_check --seed 15 --scenario pn-cut --history-dump run.hist
     tell_histcheck run.hist *)

module History = Tell_core.History
module Checker = Tell_histcheck.Checker

let read_history path =
  let ic = open_in path in
  let events = ref [] in
  let line_no = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr line_no;
       match History.decode_line line with
       | Some e -> events := e :: !events
       | None -> ()
       | exception Failure msg ->
           close_in ic;
           failwith (Printf.sprintf "%s:%d: %s" path !line_no msg)
     done
   with End_of_file -> close_in ic);
  List.rev !events

let run path quiet =
  match read_history path with
  | exception Sys_error msg ->
      prerr_endline ("tell_histcheck: " ^ msg);
      2
  | exception Failure msg ->
      prerr_endline ("tell_histcheck: " ^ msg);
      2
  | events ->
      let report = Checker.analyze events in
      if not quiet then
        Printf.printf "%s: %d events, %d transactions (%d committed)\n" path
          (List.length events) report.Checker.r_txns report.Checker.r_committed;
      (match report.Checker.r_anomalies with
      | [] ->
          Printf.printf "tell_histcheck: history is snapshot-isolated\n";
          0
      | anomalies ->
          List.iter
            (fun a -> Printf.printf "anomaly: %s\n" (Checker.describe a))
            anomalies;
          Printf.printf "tell_histcheck: %d anomalies\n" (List.length anomalies);
          1)

open Cmdliner

let file =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"FILE" ~doc:"History dump produced by tell_check --history-dump.")

let quiet = Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Only print anomalies.")

let cmd =
  let doc = "offline Adya-style SI anomaly checker for recorded histories" in
  Cmd.v (Cmd.info "tell_histcheck" ~doc) Term.(const run $ file $ quiet)

let () = exit (Cmd.eval' cmd)
