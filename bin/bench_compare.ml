(* bench_compare: regression gate over tell_bench --json summaries.

     bench_compare BASELINE.json CURRENT.json
       [--tpmc-tolerance PCT] [--rpno-tolerance PCT] [--abort-tolerance PP]

   Fails (exit 1) when the current run's TpmC drops by more than the TpmC
   tolerance (default 15%), its requests-per-new-order rises by more than
   the rpno tolerance (default 10%), or its abort rate rises by more than
   the abort tolerance (default 0.5 percentage points — the snapshot-
   sharing budget of the begin coalescer) versus the baseline.  The files
   are the flat JSON summaries tell_bench writes; fields are scraped
   textually so the tool has no dependencies beyond the stdlib. *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Extract the number following ["field": ] in a flat JSON object. *)
let field contents name =
  let needle = Printf.sprintf "\"%s\":" name in
  let rec find from =
    if from + String.length needle > String.length contents then None
    else if String.sub contents from (String.length needle) = needle then Some from
    else find (from + 1)
  in
  match find 0 with
  | None -> None
  | Some at ->
      let start = at + String.length needle in
      let stop = ref start in
      while
        !stop < String.length contents
        && (match contents.[!stop] with
           | '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' | ' ' -> true
           | _ -> false)
      do
        incr stop
      done;
      float_of_string_opt (String.trim (String.sub contents start (!stop - start)))

let require path contents name =
  match field contents name with
  | Some v -> v
  | None ->
      Printf.eprintf "bench_compare: field %S not found in %s\n" name path;
      exit 2

let () =
  let baseline_path = ref None in
  let current_path = ref None in
  let tpmc_tolerance = ref 15.0 in
  let rpno_tolerance = ref 10.0 in
  let abort_tolerance = ref 0.5 in
  let args = Array.to_list Sys.argv in
  let rec parse = function
    | [] -> ()
    | "--tpmc-tolerance" :: v :: rest ->
        tpmc_tolerance := float_of_string v;
        parse rest
    | "--rpno-tolerance" :: v :: rest ->
        rpno_tolerance := float_of_string v;
        parse rest
    | "--abort-tolerance" :: v :: rest ->
        abort_tolerance := float_of_string v;
        parse rest
    | path :: rest ->
        (match (!baseline_path, !current_path) with
        | None, _ -> baseline_path := Some path
        | Some _, None -> current_path := Some path
        | Some _, Some _ ->
            prerr_endline "bench_compare: too many arguments";
            exit 2);
        parse rest
  in
  parse (List.tl args);
  match (!baseline_path, !current_path) with
  | Some baseline_path, Some current_path ->
      let baseline = read_file baseline_path in
      let current = read_file current_path in
      let b_tpmc = require baseline_path baseline "tpmc" in
      let c_tpmc = require current_path current "tpmc" in
      let b_rpno = require baseline_path baseline "requests_per_new_order" in
      let c_rpno = require current_path current "requests_per_new_order" in
      let b_abort = require baseline_path baseline "abort_rate_pct" in
      let c_abort = require current_path current "abort_rate_pct" in
      let tpmc_drop_pct = 100.0 *. (b_tpmc -. c_tpmc) /. b_tpmc in
      let rpno_rise_pct = 100.0 *. (c_rpno -. b_rpno) /. b_rpno in
      let abort_rise_pp = c_abort -. b_abort in
      Printf.printf "TpmC                  %10.1f -> %10.1f  (%+.1f%%, tolerance -%.0f%%)\n"
        b_tpmc c_tpmc (-.tpmc_drop_pct) !tpmc_tolerance;
      Printf.printf "requests/new-order    %10.2f -> %10.2f  (%+.1f%%, tolerance +%.0f%%)\n"
        b_rpno c_rpno rpno_rise_pct !rpno_tolerance;
      Printf.printf "abort rate            %9.3f%% -> %9.3f%%  (%+.3f pp, tolerance +%.2f pp)\n"
        b_abort c_abort abort_rise_pp !abort_tolerance;
      let failed = ref false in
      if tpmc_drop_pct > !tpmc_tolerance then begin
        Printf.printf "FAIL: TpmC regressed %.1f%% (> %.0f%%)\n" tpmc_drop_pct !tpmc_tolerance;
        failed := true
      end;
      if rpno_rise_pct > !rpno_tolerance then begin
        Printf.printf "FAIL: requests/new-order regressed %.1f%% (> %.0f%%)\n" rpno_rise_pct
          !rpno_tolerance;
        failed := true
      end;
      if abort_rise_pp > !abort_tolerance then begin
        Printf.printf "FAIL: abort rate rose %.3f pp (> %.2f pp)\n" abort_rise_pp
          !abort_tolerance;
        failed := true
      end;
      if !failed then exit 1 else print_endline "bench_compare: within tolerance"
  | _ ->
      prerr_endline
        "usage: bench_compare BASELINE.json CURRENT.json [--tpmc-tolerance PCT] \
         [--rpno-tolerance PCT] [--abort-tolerance PP]";
      exit 2
