(* Calibration scratchpad: run key corner configurations and print the
   shape-determining quantities. *)

module Tpcc = Tell_tpcc
open Tell_harness

let show label outcome seconds =
  (match outcome with
  | Scenarios.Report r ->
      Printf.printf "%-34s TpmC=%8.0f Tps=%7.0f abort=%5.2f%% lat=%6.2f±%.2fms [%0.1fs wall]\n%!"
        label (Tpcc.Driver.tpmc r) (Tpcc.Driver.tps r) (Tpcc.Driver.abort_rate r)
        (Tpcc.Driver.mean_latency_ms r) (Tpcc.Driver.stddev_latency_ms r) seconds
  | Scenarios.Out_of_memory -> Printf.printf "%-34s OOM\n%!" label);
  outcome

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let tell label c =
  let r, dt = timed (fun () -> Scenarios.run_tell c) in
  ignore (show ("tell " ^ label) r dt)

let volt label c =
  let r, dt = timed (fun () -> Scenarios.run_voltdb c) in
  ignore (show ("voltdb " ^ label) r dt)

let ndb label c =
  let r, dt = timed (fun () -> Scenarios.run_ndb c) in
  ignore (show ("ndb " ^ label) r dt)

let fdb label c =
  let r, dt = timed (fun () -> Scenarios.run_fdb c) in
  ignore (show ("fdb " ^ label) r dt)

let () =
  let which = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  let base = { Scenarios.default_tell with warehouses = 16; measure_ns = 300_000_000 } in
  let vbase = { Scenarios.default_voltdb with v_warehouses = 16; v_measure_ns = 300_000_000 } in
  let mbase = { Scenarios.default_ndb with m_warehouses = 16; m_measure_ns = 300_000_000 } in
  let fbase = { Scenarios.default_fdb with f_warehouses = 16; f_measure_ns = 300_000_000 } in
  let shard = Tpcc.Spec.shardable_mix in
  if which = "all" || which = "tell" then begin
    tell "1pn rf1 ib" { base with n_pns = 1 };
    tell "8pn rf1 ib" { base with n_pns = 8 };
    tell "8pn rf3 ib" { base with n_pns = 8; rf = 3 };
    tell "8pn rf1 eth" { base with n_pns = 8; net = Tell_sim.Net.ethernet_10g };
    tell "8pn rf3 read-mix" { base with n_pns = 8; rf = 3; mix = Tpcc.Spec.read_intensive_mix };
    tell "8pn rf1 read-mix" { base with n_pns = 8; mix = Tpcc.Spec.read_intensive_mix }
  end;
  if which = "all" || which = "cmp" then begin
    tell "8pn7sn rf3 std" { base with n_pns = 8; rf = 3; n_cms = 2 };
    tell "8pn7sn rf1 shard" { base with n_pns = 8; mix = shard; n_cms = 2 };
    tell "8pn7sn rf3 shard" { base with n_pns = 8; rf = 3; mix = shard; n_cms = 2 };
    volt "3n k2 std" { vbase with v_k_factor = 2 };
    volt "11n k2 std" { vbase with v_nodes = 11; v_k_factor = 2 };
    volt "3n k0 shard" { vbase with v_mix = shard };
    volt "11n k0 shard" { vbase with v_nodes = 11; v_mix = shard };
    volt "11n k2 shard" { vbase with v_nodes = 11; v_k_factor = 2; v_mix = shard };
    ndb "3dn r2 std" { mbase with m_replicas = 2 };
    ndb "9dn r2 std" { mbase with m_data_nodes = 9; m_sql_nodes = 4; m_replicas = 2 };
    ndb "9dn r2 shard" { mbase with m_data_nodes = 9; m_sql_nodes = 4; m_replicas = 2; m_mix = shard };
    fdb "3n std" fbase;
    fdb "9n std" { fbase with f_nodes = 9 }
  end

(* Notifier flush-window sweep (DESIGN.md §3b): the window must be short
   enough that the delayed decided-set does not move the abort rate, and
   long enough to coalesce concurrent committers' outcomes. *)
let () =
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "notify" then begin
    let base =
      { Scenarios.default_tell with warehouses = 16; measure_ns = 300_000_000; n_pns = 4; rf = 3 }
    in
    List.iter
      (fun window ->
        tell
          (Printf.sprintf "4pn rf3 window=%dus" (window / 1_000))
          { base with notify_flush_window_ns = window })
      [ 25_000; 50_000; 100_000; 200_000; 400_000; 1_000_000 ]
  end

(* Begin-window sweep (DESIGN.md §3b): the window trades a bounded added
   begin latency and a snapshot up to one window stale (§4.2 tolerates
   that — at worst the abort rate rises) for one commit-manager start RPC
   per window instead of per transaction.  Pick the knee where TpmC stops
   improving while the abort rate is still flat; window=0 is the
   uncoalesced control. *)
let () =
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "begin" then begin
    let base =
      { Scenarios.default_tell with warehouses = 16; measure_ns = 300_000_000; n_pns = 4; rf = 3 }
    in
    List.iter
      (fun window ->
        tell
          (Printf.sprintf "4pn rf3 begin=%dus" (window / 1_000))
          { base with begin_window_ns = window })
      [ 0; 25_000; 50_000; 100_000; 200_000; 400_000; 1_000_000 ]
  end

let () =
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "cmp128" then begin
    let base = { Scenarios.default_tell with warehouses = 128; measure_ns = 300_000_000; n_cms = 2 } in
    let vbase = { Scenarios.default_voltdb with v_warehouses = 128; v_measure_ns = 300_000_000 } in
    let shard = Tpcc.Spec.shardable_mix in
    tell "8pn rf1 shard 128w" { base with n_pns = 8; mix = shard };
    tell "8pn rf3 std 128w" { base with n_pns = 8; rf = 3 };
    volt "3n k2 std 128w" { vbase with v_k_factor = 2 };
    volt "11n k2 std 128w" { vbase with v_nodes = 11; v_k_factor = 2 };
    volt "11n k0 shard 128w" { vbase with v_nodes = 11; v_mix = shard };
    volt "3n k0 shard 128w" { vbase with v_mix = shard }
  end
