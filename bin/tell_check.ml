(* tell_check: deterministic fault-injection & schedule-exploration
   harness (FoundationDB-style simulation testing for the Tell
   reproduction).

   Runs short TPC-C workloads across a matrix of (RNG seed x fault
   scenario), with seed-derived crash/latency faults and a seeded shuffle
   of same-instant event ordering, then checks consistency, SI-safety,
   B+tree and notification invariants on the final state.  Every run is a
   pure function of (seed, scenario): failures print the exact repro
   command.

     tell_check --quick                  # the CI matrix (20 seeds x 8 scenarios)
     tell_check --seed 7 --scenario chaos   # reproduce one run
     tell_check --deterministic-audit    # same seed twice, compare counters *)

module Check = Tell_harness.Check

let scenario_names = List.map Check.scenario_name Check.all_scenarios

let run_matrix ~seeds ~scenarios ~perturb ~verbose =
  let failures = ref [] in
  let total = ref 0 in
  List.iter
    (fun seed ->
      List.iter
        (fun scenario ->
          incr total;
          let o = Check.run_one ~seed ~scenario ~perturb () in
          let ok = o.Check.o_violations = [] in
          if (not ok) || verbose then
            Printf.printf "%-12s seed %-4d %6d committed %6d aborted  %s\n%!"
              (Check.scenario_name scenario) seed o.Check.o_committed o.Check.o_aborted
              (if ok then "ok" else "FAIL");
          if not ok then begin
            List.iter (fun v -> Printf.printf "    violation: %s\n%!" v) o.Check.o_violations;
            failures := (seed, scenario) :: !failures
          end)
        scenarios)
    seeds;
  match List.rev !failures with
  | [] ->
      Printf.printf "tell_check: %d/%d runs passed\n" !total !total;
      0
  | failures ->
      Printf.printf "tell_check: %d/%d runs FAILED\n" (List.length failures) !total;
      List.iter
        (fun (seed, scenario) ->
          Printf.printf "  reproduce with: tell_check --seed %d --scenario %s\n" seed
            (Check.scenario_name scenario))
        failures;
      1

let run_audit ~seeds ~scenarios ~perturb =
  let failed = ref false in
  List.iter
    (fun seed ->
      List.iter
        (fun scenario ->
          let o, divergences = Check.determinism_audit ~seed ~scenario ~perturb () in
          match divergences with
          | [] ->
              Printf.printf "deterministic-audit %-12s seed %-4d ok (%d committed)\n%!"
                (Check.scenario_name scenario) seed o.Check.o_committed
          | ds ->
              failed := true;
              Printf.printf "deterministic-audit %-12s seed %-4d DIVERGED:\n%!"
                (Check.scenario_name scenario) seed;
              List.iter (fun d -> Printf.printf "    %s\n%!" d) ds)
        scenarios)
    seeds;
  if !failed then 1 else 0

open Cmdliner

let quick =
  Arg.(value & flag & info [ "quick" ] ~doc:"The CI matrix: seeds 1..20 over the crash scenarios (sn-crash, pn-crash, chaos) and the partition scenarios (pn-cut, pn-cm-asym, flaky, recovery-partition, zombie) — 160 runs.")

let full =
  Arg.(value & flag & info [ "full" ] ~doc:"The exhaustive sweep: seeds 1..50 over all scenarios.")

let seed =
  Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"N" ~doc:"Run a single seed (repro mode).")

let seeds =
  Arg.(value & opt int 20 & info [ "seeds" ] ~docv:"K" ~doc:"Number of seeds (1..K) when --seed is not given.")

let scenario =
  Arg.(
    value
    & opt (some string) None
    & info [ "scenario" ] ~docv:"S"
        ~doc:
          (Printf.sprintf "Fault scenario: one of %s, or 'all'."
             (String.concat ", " scenario_names)))

let audit =
  Arg.(
    value & flag
    & info [ "deterministic-audit" ]
        ~doc:
          "Run each selected (seed, scenario) twice and fail on any divergence in the run's \
           counters — guards against wall-clock or global Random leakage into the simulation.")

let no_perturb =
  Arg.(value & flag & info [ "no-perturb" ] ~doc:"Disable the seeded same-instant schedule shuffle.")

let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print every run, not only failures.")

let main quick full seed seeds scenario audit no_perturb verbose =
  let scenarios =
    match scenario with
    | Some "all" -> Ok Check.all_scenarios
    | Some s -> (
        match Check.scenario_of_string s with
        | Some sc -> Ok [ sc ]
        | None ->
            Error (Printf.sprintf "unknown scenario %S (expected %s or 'all')" s
                     (String.concat ", " scenario_names)))
    | None ->
        Ok
          (if full then Check.all_scenarios
           else if quick then Check.quick_scenarios
           else if seed <> None then Check.all_scenarios
           else Check.quick_scenarios)
  in
  match scenarios with
  | Error msg ->
      prerr_endline ("tell_check: " ^ msg);
      2
  | Ok scenarios ->
      let seeds =
        match seed with
        | Some s -> [ s ]
        | None ->
            let k = if full then 50 else if quick then 20 else seeds in
            List.init k (fun i -> i + 1)
      in
      let perturb = not no_perturb in
      if audit then run_audit ~seeds ~scenarios ~perturb
      else run_matrix ~seeds ~scenarios ~perturb ~verbose

let cmd =
  let doc = "deterministic fault-injection and schedule-exploration harness" in
  Cmd.v
    (Cmd.info "tell_check" ~doc)
    Term.(
      const main $ quick $ full $ seed $ seeds $ scenario $ audit $ no_perturb $ verbose)

let () = exit (Cmd.eval' cmd)
