(* tell_check: deterministic fault-injection & schedule-exploration
   harness (FoundationDB-style simulation testing for the Tell
   reproduction).

   Runs short TPC-C workloads across a matrix of (RNG seed x fault
   scenario), with seed-derived crash/latency faults and a seeded shuffle
   of same-instant event ordering, then checks consistency, SI-safety,
   B+tree and notification invariants on the final state.  Every run is a
   pure function of (seed, scenario): failures print the exact repro
   command.

     tell_check --quick                  # the CI matrix (20 seeds x 8 scenarios)
     tell_check --seed 7 --scenario chaos   # reproduce one run
     tell_check --deterministic-audit    # same seed twice, compare counters
     tell_check --mutation               # prove the SI checker catches broken engines
     tell_check --seed 7 --scenario chaos --history-dump run.hist  # for tell_histcheck *)

module Check = Tell_harness.Check
module History = Tell_core.History

let scenario_names = List.map Check.scenario_name Check.all_scenarios

let dump_history path history =
  let oc = open_out path in
  output_string oc "# tell_check history dump; re-check offline with: tell_histcheck ";
  output_string oc path;
  output_char oc '\n';
  List.iter
    (fun e ->
      output_string oc (History.encode_line e);
      output_char oc '\n')
    history;
  close_out oc;
  Printf.printf "history (%d events) dumped to %s\n%!" (List.length history) path

let run_matrix ~seeds ~scenarios ~perturb ~verbose ~history_dump =
  let failures = ref [] in
  let total = ref 0 in
  let dumped = ref false in
  let last_history = ref [] in
  List.iter
    (fun seed ->
      List.iter
        (fun scenario ->
          incr total;
          let o = Check.run_one ~seed ~scenario ~perturb () in
          last_history := o.Check.o_history;
          let ok = o.Check.o_violations = [] in
          if (not ok) || verbose then
            Printf.printf "%-12s seed %-4d %6d committed %6d aborted  %s\n%!"
              (Check.scenario_name scenario) seed o.Check.o_committed o.Check.o_aborted
              (if ok then "ok" else "FAIL");
          if not ok then begin
            List.iter (fun v -> Printf.printf "    violation: %s\n%!" v) o.Check.o_violations;
            failures := (seed, scenario) :: !failures;
            (* Dump the first failing run's history for offline analysis. *)
            match history_dump with
            | Some path when not !dumped ->
                dumped := true;
                dump_history path o.Check.o_history
            | _ -> ()
          end)
        scenarios)
    seeds;
  (* Nothing failed: a requested dump still gets the last run's history
     (the single-run repro workflow). *)
  (match history_dump with
  | Some path when not !dumped -> dump_history path !last_history
  | _ -> ());
  match List.rev !failures with
  | [] ->
      Printf.printf "tell_check: %d/%d runs passed\n" !total !total;
      0
  | failures ->
      Printf.printf "tell_check: %d/%d runs FAILED\n" (List.length failures) !total;
      List.iter
        (fun (seed, scenario) ->
          Printf.printf "  reproduce with: tell_check --seed %d --scenario %s\n" seed
            (Check.scenario_name scenario))
        failures;
      1

let run_audit ~seeds ~scenarios ~perturb =
  let failed = ref false in
  List.iter
    (fun seed ->
      List.iter
        (fun scenario ->
          let o, divergences = Check.determinism_audit ~seed ~scenario ~perturb () in
          match divergences with
          | [] ->
              Printf.printf "deterministic-audit %-12s seed %-4d ok (%d committed)\n%!"
                (Check.scenario_name scenario) seed o.Check.o_committed
          | ds ->
              failed := true;
              Printf.printf "deterministic-audit %-12s seed %-4d DIVERGED:\n%!"
                (Check.scenario_name scenario) seed;
              List.iter (fun d -> Printf.printf "    %s\n%!" d) ds)
        scenarios)
    seeds;
  if !failed then 1 else 0

(* Mutation battery: the anomaly checker is only evidence of SI if it
   rejects an engine that is actually broken.  Run the no-fault workload
   with the test-only weakened-conflict-detection knob on — lost updates
   then commit on purpose — and require the histcheck invariant to flag a
   lost-update or G-SI cycle with a witness; then re-run unmodified and
   require a clean bill. *)
let run_mutation ~perturb =
  let seeds = [ 1; 2; 3 ] in
  let is_histcheck v = String.length v >= 10 && String.sub v 0 10 = "histcheck:" in
  let has_cycle_witness v =
    let contains sub =
      let n = String.length v and m = String.length sub in
      let rec go i = i + m <= n && (String.sub v i m = sub || go (i + 1)) in
      go 0
    in
    contains "lost-update" || contains "G-SI" || contains "G1c"
  in
  let failed = ref false in
  List.iter
    (fun seed ->
      let o = Check.run_one ~seed ~scenario:Check.No_fault ~perturb ~weaken:true () in
      let flagged = List.filter is_histcheck o.Check.o_violations in
      (match List.filter has_cycle_witness flagged with
      | w :: _ ->
          Printf.printf "mutation    seed %-4d weakened engine rejected (%d anomalies)\n    %s\n%!"
            seed (List.length flagged) w
      | [] ->
          failed := true;
          Printf.printf
            "mutation    seed %-4d FAIL: weakened conflict detection not flagged as \
             lost-update/G-SI (%d histcheck violations)\n%!"
            seed (List.length flagged));
      let c = Check.run_one ~seed ~scenario:Check.No_fault ~perturb () in
      match List.filter is_histcheck c.Check.o_violations with
      | [] -> Printf.printf "mutation    seed %-4d unmodified engine accepted\n%!" seed
      | vs ->
          failed := true;
          Printf.printf "mutation    seed %-4d FAIL: unmodified engine rejected:\n%!" seed;
          List.iter (fun v -> Printf.printf "    %s\n%!" v) vs)
    seeds;
  if !failed then begin
    Printf.printf "tell_check --mutation: FAILED\n";
    1
  end
  else begin
    Printf.printf "tell_check --mutation: checker rejects broken engine, accepts real one\n";
    0
  end

open Cmdliner

let quick =
  Arg.(value & flag & info [ "quick" ] ~doc:"The CI matrix: seeds 1..20 over the crash scenarios (sn-crash, pn-crash, chaos) and the partition scenarios (pn-cut, pn-cm-asym, flaky, recovery-partition, zombie) — 160 runs.")

let full =
  Arg.(value & flag & info [ "full" ] ~doc:"The exhaustive sweep: seeds 1..50 over all scenarios.")

let seed =
  Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"N" ~doc:"Run a single seed (repro mode).")

let seeds =
  Arg.(value & opt int 20 & info [ "seeds" ] ~docv:"K" ~doc:"Number of seeds (1..K) when --seed is not given.")

let scenario =
  Arg.(
    value
    & opt (some string) None
    & info [ "scenario" ] ~docv:"S"
        ~doc:
          (Printf.sprintf "Fault scenario: one of %s, or 'all'."
             (String.concat ", " scenario_names)))

let audit =
  Arg.(
    value & flag
    & info [ "deterministic-audit" ]
        ~doc:
          "Run each selected (seed, scenario) twice and fail on any divergence in the run's \
           counters — guards against wall-clock or global Random leakage into the simulation.")

let no_perturb =
  Arg.(value & flag & info [ "no-perturb" ] ~doc:"Disable the seeded same-instant schedule shuffle.")

let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print every run, not only failures.")

let mutation =
  Arg.(
    value & flag
    & info [ "mutation" ]
        ~doc:
          "Mutation-testing battery for the SI anomaly checker: run the no-fault workload with \
           conflict detection deliberately weakened and require a lost-update/G-SI rejection \
           with a printed witness cycle, then re-run unmodified and require acceptance.")

let history_dump =
  Arg.(
    value
    & opt (some string) None
    & info [ "history-dump" ] ~docv:"FILE"
        ~doc:
          "Write the recorded transaction history of the first failing run (or, if every run \
           passes, the last run) to $(docv) — one event per line, re-checkable offline with \
           tell_histcheck.")

let main quick full seed seeds scenario audit no_perturb verbose mutation history_dump =
  let scenarios =
    match scenario with
    | Some "all" -> Ok Check.all_scenarios
    | Some s -> (
        match Check.scenario_of_string s with
        | Some sc -> Ok [ sc ]
        | None ->
            Error (Printf.sprintf "unknown scenario %S (expected %s or 'all')" s
                     (String.concat ", " scenario_names)))
    | None ->
        Ok
          (if full then Check.all_scenarios
           else if quick then Check.quick_scenarios
           else if seed <> None then Check.all_scenarios
           else Check.quick_scenarios)
  in
  match scenarios with
  | Error msg ->
      prerr_endline ("tell_check: " ^ msg);
      2
  | Ok scenarios ->
      let seeds =
        match seed with
        | Some s -> [ s ]
        | None ->
            let k = if full then 50 else if quick then 20 else seeds in
            List.init k (fun i -> i + 1)
      in
      let perturb = not no_perturb in
      if mutation then run_mutation ~perturb
      else if audit then run_audit ~seeds ~scenarios ~perturb
      else run_matrix ~seeds ~scenarios ~perturb ~verbose ~history_dump

let cmd =
  let doc = "deterministic fault-injection and schedule-exploration harness" in
  Cmd.v
    (Cmd.info "tell_check" ~doc)
    Term.(
      const main $ quick $ full $ seed $ seeds $ scenario $ audit $ no_perturb $ verbose
      $ mutation $ history_dump)

let () = exit (Cmd.eval' cmd)
